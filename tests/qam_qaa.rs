//! Integration tests for the paper's walk-through interfaces
//! (Figure 3): Qam (amazon.com) and Qaa (aa.com), end to end through
//! the full pipeline.

use metaform::{DomainKind, FormExtractor, TokenKind};
use metaform_datasets::fixtures::{figure5_fragment, qaa, qam};

#[test]
fn qam_full_semantic_model() {
    let source = qam();
    let extraction = FormExtractor::new().extract(&source.html);
    let conditions = &extraction.report.conditions;

    assert_eq!(conditions.len(), 5, "{conditions:#?}");
    let attrs: Vec<&str> = conditions.iter().map(|c| c.attribute.as_str()).collect();
    assert_eq!(
        attrs,
        vec!["Author", "Title", "Subject", "ISBN", "Publisher"]
    );

    // The three operator rows carry their radio captions as operators.
    for (i, ops) in [
        &[
            "first name/initials and last name",
            "start of last name",
            "exact name",
        ][..],
        &[
            "title word(s)",
            "start(s) of title word(s)",
            "exact start of title",
        ][..],
        &[
            "subject word(s)",
            "start(s) of subject word(s)",
            "exact subject",
        ][..],
    ]
    .iter()
    .enumerate()
    {
        assert_eq!(conditions[i].operators, ops.to_vec(), "row {i}");
        assert_eq!(conditions[i].domain.kind, DomainKind::Text);
    }
    // ISBN/Publisher are plain keyword conditions.
    assert!(conditions[3].operators.is_empty());
    assert!(conditions[4].operators.is_empty());

    assert!(extraction.report.is_clean());
}

#[test]
fn qam_grouping_is_hierarchical() {
    // The paper stresses c_author groups 8 elements: one caption, one
    // textbox, three radio buttons, three radio captions.
    let source = qam();
    let extraction = FormExtractor::new().extract(&source.html);
    let author = &extraction.report.conditions[0];
    assert_eq!(author.tokens.len(), 8, "{:?}", author.tokens);
}

#[test]
fn figure5_fragment_tokenizes_to_sixteen() {
    let html = figure5_fragment();
    let doc = metaform_html::parse(&html);
    let layout = metaform_layout::layout(&doc);
    let tokens = metaform_tokenizer::tokenize(&doc, &layout).tokens;
    assert_eq!(tokens.len(), 16, "paper Figure 5 lists 16 tokens");
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Radiobutton)
            .count(),
        6
    );
    assert_eq!(
        tokens.iter().filter(|t| t.kind == TokenKind::Text).count(),
        8
    );
}

#[test]
fn qaa_full_semantic_model() {
    let source = qaa();
    let extraction = FormExtractor::new().extract(&source.html);
    let conditions = &extraction.report.conditions;

    let find = |attr: &str| {
        conditions
            .iter()
            .find(|c| c.attribute == attr)
            .unwrap_or_else(|| panic!("{attr} missing from {conditions:#?}"))
    };
    assert_eq!(find("From").domain.kind, DomainKind::Text);
    assert_eq!(find("To").domain.kind, DomainKind::Text);
    assert_eq!(find("Departing").domain.kind, DomainKind::Date);
    assert_eq!(find("Returning").domain.kind, DomainKind::Date);
    assert_eq!(find("Adults").domain.kind, DomainKind::Numeric);
    assert_eq!(find("Children").domain.kind, DomainKind::Numeric);

    // The bare trip-type radios come out as an unlabeled enumeration.
    let trip = conditions
        .iter()
        .find(|c| c.domain.values == vec!["Round trip".to_string(), "One way".to_string()])
        .expect("trip-type enumeration");
    assert_eq!(trip.domain.kind, DomainKind::Enumerated);
}

#[test]
fn both_fixtures_score_perfectly() {
    let extractor = FormExtractor::new();
    for source in [qam(), qaa()] {
        let score = metaform_eval::score_source(&extractor, &source);
        assert_eq!(
            (score.matched, score.extracted, score.truth),
            (score.truth, score.truth, score.truth),
            "{}: {score:?}",
            source.name
        );
    }
}
