//! End-to-end pipeline tests across crates: HTML → layout → tokens →
//! parse → merge, exercising each condition-pattern family.

use metaform::{DomainKind, FormExtractor};

fn extract(html: &str) -> metaform::Extraction {
    FormExtractor::new().extract(html)
}

fn attrs(e: &metaform::Extraction) -> Vec<String> {
    e.report
        .conditions
        .iter()
        .map(|c| c.attribute.clone())
        .collect()
}

#[test]
fn every_pattern_family_in_one_form() {
    let html = r#"
    <form>
      Title <input type="text" name="title" size="25"><br>
      Genre <select name="genre"><option>Action<option>Comedy<option>Drama</select><br>
      Price <input type="text" name="plo" size="6"> to <input type="text" name="phi" size="6"><br>
      Released <select name="m"><option>January<option>February<option>March<option>April<option>May<option>June<option>July<option>August<option>September<option>October<option>November<option>December</select>
      <select name="d"><option>1<option>2<option>3<option>4<option>5<option>6<option>7<option>8<option>9<option>10<option>11<option>12<option>13<option>14<option>15<option>16<option>17<option>18<option>19<option>20<option>21<option>22<option>23<option>24<option>25<option>26<option>27<option>28<option>29<option>30<option>31</select><br>
      Copies <select name="n"><option>1<option>2<option>3<option>4</select><br>
      Format <input type="radio" name="f" checked> DVD <input type="radio" name="f"> VHS<br>
      <input type="checkbox" name="instock"> In stock only<br>
      <input type="submit" value="Search"> <input type="reset" value="Clear">
    </form>"#;
    let e = extract(html);
    let got = attrs(&e);
    for want in [
        "Title",
        "Genre",
        "Price",
        "Released",
        "Copies",
        "Format",
        "In stock only",
    ] {
        assert!(got.contains(&want.to_string()), "{want} missing: {got:?}");
    }
    let by = |a: &str| {
        e.report
            .conditions
            .iter()
            .find(|c| c.attribute == a)
            .unwrap()
    };
    assert_eq!(by("Title").domain.kind, DomainKind::Text);
    assert_eq!(by("Genre").domain.kind, DomainKind::Enumerated);
    assert_eq!(by("Price").domain.kind, DomainKind::Range);
    assert_eq!(by("Released").domain.kind, DomainKind::Date);
    assert_eq!(by("Copies").domain.kind, DomainKind::Numeric);
    assert_eq!(by("Format").domain.values, vec!["DVD", "VHS"]);
    assert_eq!(by("In stock only").domain.kind, DomainKind::Boolean);
    assert!(e.report.conflicts.is_empty(), "{:#?}", e.report.conflicts);
    assert!(e.report.missing.is_empty(), "{:?}", e.report.missing);
}

#[test]
fn operator_select_is_an_operator_not_a_condition() {
    let html = r#"
    <form>
      Keywords <select name="op"><option>contains<option>begins with<option>exact match</select>
      <input type="text" name="kw" size="22"><br>
      <input type="submit" value="Go">
    </form>"#;
    let e = extract(html);
    assert_eq!(e.report.conditions.len(), 1, "{:#?}", e.report.conditions);
    let c = &e.report.conditions[0];
    assert_eq!(c.attribute, "Keywords");
    assert_eq!(c.operators, vec!["contains", "begins with", "exact match"]);
    assert_eq!(c.domain.kind, DomainKind::Text);
}

#[test]
fn table_and_flow_render_the_same_model() {
    let flow = r#"<form>
      City <input type="text" name="c" size="20"><br>
      State <select name="s"><option>IL<option>CA</select><br>
      <input type="submit" value="Go"></form>"#;
    let table = r#"<form><table>
      <tr><td>City</td><td><input type="text" name="c" size="20"></td></tr>
      <tr><td>State</td><td><select name="s"><option>IL<option>CA</select></td></tr>
      </table><input type="submit" value="Go"></form>"#;
    let (a, b) = (extract(flow), extract(table));
    assert_eq!(attrs(&a), attrs(&b));
    assert_eq!(a.report.conditions.len(), 2);
    for (x, y) in a.report.conditions.iter().zip(&b.report.conditions) {
        assert!(x.equivalent(y), "{x} vs {y}");
    }
}

#[test]
fn unlabeled_widgets_fall_back_to_control_names() {
    let html = r#"<form>
      <input type="text" name="author" size="30"><br>
      <select name="dept"><option>Select a Department<option>Books<option>Music</select><br>
      <input type="submit" value="Go"></form>"#;
    let e = extract(html);
    let got = attrs(&e);
    assert!(got.contains(&"author".to_string()), "{got:?}");
    assert!(got.contains(&"department".to_string()), "{got:?}");
}

#[test]
fn decorated_messy_html_still_parses() {
    let html = r##"
    <!DOCTYPE html><html><head><title>MegaSearch</title>
    <style>td { color: red }</style>
    <script>var x = "<form>"; if (x < 3) alert(1);</script></head>
    <body bgcolor="#ffffff">
    <h1>Welcome &amp; enjoy!</h1>
    <form action="/q" method="GET">
      <input type="hidden" name="session" value="abc">
      <b>Author</b>&nbsp;<input type="text" name="a">
      <br>
      <input type="submit" value="Search &raquo;">
    </form>
    <p>&copy; 2004 MegaSearch Inc.</p></body></html>"##;
    let e = extract(html);
    assert_eq!(e.report.conditions.len(), 1);
    assert_eq!(e.report.conditions[0].attribute, "Author");
}

#[test]
fn pipeline_is_deterministic() {
    let html = metaform_datasets::fixtures::qaa().html;
    let a = extract(&html);
    let b = extract(&html);
    assert_eq!(a.report, b.report);
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn brute_force_and_pruned_agree_on_clean_forms() {
    // On an unambiguous form both parser modes must produce the same
    // semantic model — pruning only removes wrong interpretations.
    let html = r#"<form>
      Author <input type="text" name="a" size="20"><br>
      Title <input type="text" name="t" size="20"><br>
      <input type="submit" value="Go"></form>"#;
    let pruned = extract(html);
    let brute = FormExtractor::new()
        .parser_options(metaform::ParserOptions::brute_force())
        .extract(html);
    let pa: Vec<_> = pruned
        .report
        .conditions
        .iter()
        .map(|c| c.attribute.clone())
        .collect();
    let ba: Vec<_> = brute
        .report
        .conditions
        .iter()
        .map(|c| c.attribute.clone())
        .collect();
    for a in &pa {
        assert!(ba.contains(a), "brute force lost {a}");
    }
    assert!(brute.stats.created >= pruned.stats.created);
}
