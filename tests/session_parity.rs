//! Parity between the compiled fast path and the legacy one-shot
//! wrappers: parsing Qam and Qaa through a `ParseSession` over a
//! `CompiledGrammar` must yield exactly the trees and stats of
//! `parse`/`parse_with` (timing and the schedules-built marker aside —
//! those are the only things the split is allowed to change).

use metaform::{global_compiled, global_grammar, paper_example_grammar};
use metaform_datasets::fixtures::{figure5_fragment, qaa, qam};
use metaform_parser::{parse_with, ParseResult, ParseSession, ParserOptions};
use std::sync::Arc;

fn tokens_of(html: &str) -> Vec<metaform::Token> {
    let doc = metaform_html::parse(html);
    let lay = metaform_layout::layout(&doc);
    metaform_tokenizer::tokenize(&doc, &lay).tokens
}

fn assert_same_parse(a: &ParseResult, b: &ParseResult, label: &str) {
    assert_eq!(a.trees, b.trees, "{label}: maximal trees diverged");
    assert_eq!(a.chart.len(), b.chart.len(), "{label}: chart size diverged");
    let (sa, sb) = (&a.stats, &b.stats);
    assert_eq!(sa.tokens, sb.tokens, "{label}: tokens");
    assert_eq!(sa.created, sb.created, "{label}: created");
    assert_eq!(sa.invalidated, sb.invalidated, "{label}: invalidated");
    assert_eq!(sa.rolled_back, sb.rolled_back, "{label}: rolled_back");
    assert_eq!(sa.trees, sb.trees, "{label}: tree count");
    assert_eq!(
        sa.complete_parses, sb.complete_parses,
        "{label}: complete_parses"
    );
    assert_eq!(sa.temporary, sb.temporary, "{label}: temporary");
    assert_eq!(sa.complete, sb.complete, "{label}: complete");
    assert_eq!(sa.budget, sb.budget, "{label}: budget outcome");
}

#[test]
fn session_matches_wrapper_on_qam_and_qaa() {
    let grammar = global_grammar();
    let compiled = global_compiled();
    let mut session = ParseSession::new(compiled);
    for fixture in [qam(), qaa()] {
        let tokens = tokens_of(&fixture.html);
        let wrapper = parse_with(&grammar, &tokens, &ParserOptions::default());
        let fast = session.parse(&tokens);
        assert_same_parse(&fast, &wrapper, &fixture.name);
        // The split's two permitted differences:
        assert_eq!(wrapper.stats.schedules_built, 1);
        assert_eq!(fast.stats.schedules_built, 0);
        session.recycle(fast);
    }
}

#[test]
fn session_matches_wrapper_under_brute_force() {
    // Brute force blows up combinatorially, so parity is checked on
    // the paper's 16-token Figure 5 fragment (the §4.2.1 fixture).
    let grammar = paper_example_grammar();
    let compiled = Arc::new(grammar.clone().compile().expect("paper grammar compiles"));
    let opts = ParserOptions::brute_force();
    let mut session = ParseSession::with_options(compiled, opts.clone());
    let tokens = tokens_of(&figure5_fragment());
    let wrapper = parse_with(&grammar, &tokens, &opts);
    let fast = session.parse(&tokens);
    assert_same_parse(&fast, &wrapper, "figure5/brute");
}
