//! Edge-behavior tests for `metaformd`'s connection handling, over
//! real sockets: keep-alive sequencing, slowloris vs the read timeout,
//! accept-loop isolation from slow clients, and the Unix-socket daemon
//! listener. The wire *semantics* (results byte-identical to
//! in-process runs) live in `tests/service_http.rs`; this file is
//! about the connection lifecycle around them.

use metaform_service::{JsonValue, Server, ServerHandle, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Spawns a server on an ephemeral port with a short read timeout so
/// the timeout scenarios run in milliseconds.
fn spawn(read_timeout_ms: u64) -> ServerHandle {
    Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        read_timeout: Duration::from_millis(read_timeout_ms),
        ..ServiceConfig::default()
    })
    .expect("binds")
    .spawn()
    .expect("spawns")
}

/// Reads exactly one framed HTTP response off a keep-alive connection:
/// head until `\r\n\r\n`, then `Content-Length` bytes or chunks until
/// the terminal chunk. Returns `(status, head, body)`.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        let n = stream.read(&mut chunk).expect("reads a response head");
        assert!(n > 0, "connection closed mid-head: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("head is UTF-8");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("has a status");
    let mut rest = buf[head_end + 4..].to_vec();
    let mut read_more = |rest: &mut Vec<u8>, want: usize| {
        while rest.len() < want {
            let n = stream.read(&mut chunk).expect("reads a response body");
            assert!(n > 0, "connection closed mid-body");
            rest.extend_from_slice(&chunk[..n]);
        }
    };
    let body = if head.contains("Transfer-Encoding: chunked") {
        let mut body = Vec::new();
        loop {
            let line_end = loop {
                if let Some(at) = rest.windows(2).position(|w| w == b"\r\n") {
                    break at;
                }
                let want = rest.len() + 1;
                read_more(&mut rest, want);
            };
            let size_line = String::from_utf8(rest[..line_end].to_vec()).expect("size line");
            let size = usize::from_str_radix(&size_line, 16).expect("hex size");
            read_more(&mut rest, line_end + 2 + size + 2);
            body.extend_from_slice(&rest[line_end + 2..line_end + 2 + size]);
            rest.drain(..line_end + 2 + size + 2);
            if size == 0 {
                break;
            }
        }
        body
    } else {
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.parse().ok())
            .expect("has a Content-Length");
        read_more(&mut rest, length);
        rest.truncate(length);
        rest
    };
    (
        status,
        head,
        String::from_utf8(body).expect("body is UTF-8"),
    )
}

#[test]
fn one_connection_serves_many_requests_with_keep_alive() {
    let handle = spawn(2_000);
    let mut stream = TcpStream::connect(handle.addr).expect("connects");

    // Ten sequential request/response cycles on the same socket,
    // mixing bodies in: this is the tentpole's core conformance.
    for round in 0..10 {
        if round % 3 == 2 {
            let body = r#"{"pages": []}"#;
            let head = format!(
                "POST /v1/batches HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(head.as_bytes()).expect("writes");
            let (status, head, body) = read_response(&mut stream);
            assert_eq!(status, 202, "{body}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
        } else {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("writes");
            let (status, head, body) = read_response(&mut stream);
            assert_eq!((status, body.as_str()), (200, "ok\n"));
            assert!(head.contains("Connection: keep-alive"), "{head}");
        }
    }

    // All ten rounds rode one accepted connection.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("writes");
    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert!(body.contains("metaformd_connections_total 1\n"), "{body}");
    // The /metrics request itself is counted after it renders, so the
    // snapshot shows the ten rounds before it.
    assert!(body.contains("metaformd_requests_total 10\n"), "{body}");

    // After Connection: close the server hangs up: next read is EOF.
    let mut probe = [0u8; 16];
    assert_eq!(stream.read(&mut probe).expect("reads EOF"), 0);
    handle.shutdown();
}

#[test]
fn a_slowloris_client_gets_408_and_the_socket_closed() {
    let handle = spawn(150);
    let mut stream = TcpStream::connect(handle.addr).expect("connects");
    // Start a request head and stall: the read timeout must cut the
    // conversation with a 408, not hold the thread hostage.
    stream
        .write_all(b"GET /healthz HT")
        .expect("writes a prefix");
    let started = Instant::now();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("reads until server close");
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "stalled mid-request expects 408: {response}"
    );
    assert!(response.contains("Connection: close"), "{response}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout must be the configured 150ms, not a hang"
    );

    // Same for a stalled body.
    let mut stream = TcpStream::connect(handle.addr).expect("connects");
    stream
        .write_all(b"POST /v1/batches HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"pages\"")
        .expect("writes a partial body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    handle.shutdown();
}

#[test]
fn an_idle_keep_alive_connection_expires_quietly() {
    let handle = spawn(150);
    let mut stream = TcpStream::connect(handle.addr).expect("connects");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("writes");
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    // Go idle between requests: the server closes without a 408 — an
    // expired idle connection is normal, not a client error.
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("reads until close");
    assert_eq!(rest, "", "idle expiry is silent, got: {rest}");
    handle.shutdown();
}

#[test]
fn a_stalled_client_does_not_block_other_connections() {
    let handle = spawn(2_000);
    // Open stalled connections that never complete a request...
    let mut stalled = Vec::new();
    for _ in 0..4 {
        let mut s = TcpStream::connect(handle.addr).expect("connects");
        s.write_all(b"GET /heal").expect("writes a prefix");
        stalled.push(s);
    }
    // ...and the service still answers others immediately.
    let started = Instant::now();
    let mut stream = TcpStream::connect(handle.addr).expect("connects");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("writes");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    assert!(
        started.elapsed() < Duration::from_millis(1_500),
        "a healthy client waited {:?} behind stalled ones",
        started.elapsed()
    );
    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn the_daemon_socket_speaks_line_json_end_to_end() {
    use std::os::unix::net::UnixStream;

    let sock = std::env::temp_dir().join(format!("metaformd-edge-{}.sock", std::process::id()));
    let sock_path = sock.to_str().expect("socket path is UTF-8").to_string();
    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        uds_path: Some(sock_path.clone()),
        ..ServiceConfig::default()
    })
    .expect("binds")
    .spawn()
    .expect("spawns");

    // The listener binds on the serve thread; wait for the file.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon socket never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut stream = UnixStream::connect(&sock).expect("connects to the daemon socket");
    let mut lines = LineClient::new(&mut stream);
    let (status, body) = lines.roundtrip(r#"{"op": "ping"}"#);
    assert_eq!((status, body.as_str()), (200, "pong"));

    let (status, body) = lines.roundtrip(
        r#"{"op": "submit", "pages": ["<form>Author <input type=text name=q><input type=submit value=S></form>"]}"#,
    );
    assert_eq!(status, 202, "{body}");
    let job = JsonValue::parse(body.as_bytes())
        .expect("submit body is JSON")
        .field("job")
        .and_then(JsonValue::as_num)
        .expect("has a job id");

    // Poll over the same connection until done, then fetch results.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = lines.roundtrip(&format!("{{\"op\": \"status\", \"job\": {job}}}"));
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\": \"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job stuck: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) = lines.roundtrip(&format!("{{\"op\": \"results\", \"job\": {job}}}"));
    assert_eq!(status, 200);
    assert!(body.contains("\"via\": \"grammar\""), "{body}");
    assert!(body.contains("Author"), "{body}");

    // Both listeners share one state: HTTP sees the daemon's job.
    let mut tcp = TcpStream::connect(handle.addr).expect("connects");
    tcp.write_all(b"GET /v1/jobs HTTP/1.1\r\n\r\n")
        .expect("writes");
    let (status, _, body) = read_response(&mut tcp);
    assert_eq!(status, 200);
    assert!(body.contains("\"count\": 1"), "{body}");

    handle.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while sock.exists() {
        assert!(
            Instant::now() < deadline,
            "daemon socket file not removed on shutdown"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Line-delimited JSON client over any stream: one request line out,
/// one `{"status": ..., "body": ...}` line back.
struct LineClient<'a, S: Read + Write> {
    stream: &'a mut S,
    carry: Vec<u8>,
}

impl<'a, S: Read + Write> LineClient<'a, S> {
    fn new(stream: &'a mut S) -> Self {
        LineClient {
            stream,
            carry: Vec::new(),
        }
    }

    fn roundtrip(&mut self, line: &str) -> (u64, String) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes the newline");
        let mut chunk = [0u8; 1024];
        let at = loop {
            if let Some(at) = self.carry.iter().position(|&b| b == b'\n') {
                break at;
            }
            let n = self.stream.read(&mut chunk).expect("reads a response line");
            assert!(n > 0, "daemon closed mid-line");
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let line: Vec<u8> = self.carry.drain(..=at).collect();
        let value = JsonValue::parse(String::from_utf8(line).expect("UTF-8").trim().as_bytes())
            .expect("response line is JSON");
        (
            value
                .field("status")
                .and_then(JsonValue::as_num)
                .expect("status"),
            value
                .field("body")
                .and_then(|v| v.as_str().map(str::to_string))
                .expect("body"),
        )
    }
}

#[test]
fn requests_during_drain_are_answered_with_close() {
    let handle = spawn(2_000);
    let mut stream = TcpStream::connect(handle.addr).expect("connects");
    stream
        .write_all(b"POST /v1/shutdown HTTP/1.1\r\n\r\n")
        .expect("writes");
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 202);
    assert!(
        head.contains("Connection: close"),
        "draining answers close even on keep-alive requests: {head}"
    );
    handle.shutdown();
}
