//! Process-wide compile-once guarantees. This test binary deliberately
//! never touches the one-shot `parse`/`parse_with` path, so the global
//! counters must show exactly one grammar compilation and one schedule
//! build for the whole process, no matter how much parsing happens.

use metaform::{global_compiled, FormExtractor};
use metaform_grammar::{compile_count, schedule_build_count};

#[test]
fn the_global_grammar_compiles_exactly_once() {
    let a = global_compiled();
    let b = global_compiled();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "global_compiled must hand out the same artifact"
    );

    // Parse a lot, across threads, through every public surface that
    // rides on the compiled grammar.
    let pages: Vec<String> = (0..16)
        .map(|i| {
            format!(
                "<form>Field{i} <input type=text name=f{i}>\
                 <input type=submit value=Go></form>"
            )
        })
        .collect();
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    let extractor = FormExtractor::new().worker_threads(4);
    let (extractions, stats) = extractor.extract_batch_stats(&refs);
    assert_eq!(extractions.len(), refs.len());
    assert_eq!(
        stats.schedules_built, 0,
        "batch parses must not rebuild schedules"
    );

    let mut session = extractor.session();
    for page in &refs {
        let extraction = extractor.extract(page);
        assert_eq!(extraction.stats.schedules_built, 0);
        let tokens = extraction.tokens;
        let result = session.parse(&tokens);
        assert_eq!(result.stats.schedules_built, 0);
        session.recycle(result);
    }

    assert_eq!(
        compile_count(),
        1,
        "one CompiledGrammar for the whole process"
    );
    assert_eq!(
        schedule_build_count(),
        1,
        "one schedule build for the whole process"
    );
}
