//! Integration tests of the merger's error reporting (paper §3.4):
//! conflicts and missing elements across the full pipeline.

use metaform::{global_grammar, FormExtractor};
use metaform_datasets::fixtures::qaa_column_variant;
use metaform_parser::{merge, parse};

fn tokens_of(html: &str) -> Vec<metaform::Token> {
    let doc = metaform_html::parse(html);
    let layout = metaform_layout::layout(&doc);
    metaform_tokenizer::tokenize(&doc, &layout).tokens
}

#[test]
fn figure14_conflict_is_reported_and_union_covers() {
    let html = qaa_column_variant();
    let grammar = global_grammar();
    let tokens = tokens_of(&html);
    let result = parse(&grammar, &tokens);

    assert!(result.trees.len() >= 2, "partial parses expected");
    assert!(!result.stats.complete);

    let report = merge(&result.chart, &result.trees);
    // Both claims stay in the model, the conflict is surfaced.
    let attrs: Vec<&str> = report
        .conditions
        .iter()
        .map(|c| c.attribute.as_str())
        .collect();
    assert!(attrs.contains(&"Adults"), "{attrs:?}");
    assert!(attrs.contains(&"Number of passengers"), "{attrs:?}");
    assert_eq!(report.conflicts.len(), 1, "{:#?}", report.conflicts);
    let conflict = &report.conflicts[0];
    let kept = &report.conditions[conflict.kept];
    let dropped = &report.conditions[conflict.dropped];
    assert_ne!(kept.attribute, dropped.attribute);
    // The contested token belongs to both conditions.
    assert!(kept.tokens.contains(&conflict.token));
    assert!(dropped.tokens.contains(&conflict.token));
    // Union of the trees still covers everything.
    assert!(report.missing.is_empty(), "{:?}", report.missing);
}

#[test]
fn uncaptured_widgets_become_missing_elements() {
    // A file-upload input participates in no condition pattern; only
    // the ActionRow covers it, and a stray password box with no label
    // gets a keyword fallback. A lone radio button is truly missing.
    let html = r#"<form>
      Author <input type="text" name="a" size="20"><br>
      <input type="radio" name="solo"><br>
      <input type="submit" value="Go"></form>"#;
    let extraction = FormExtractor::new().extract(html);
    assert_eq!(extraction.report.conditions.len(), 1);
    assert_eq!(
        extraction.report.missing.len(),
        1,
        "{:?}",
        extraction.report.missing
    );
}

#[test]
fn decorative_banner_is_missing_not_misparsed() {
    let html = r#"<form>
      This engine searches over four million listings updated daily for your convenience<br>
      Author <input type="text" name="a" size="20"><br>
      <input type="submit" value="Go"></form>"#;
    let extraction = FormExtractor::new().extract(html);
    assert_eq!(extraction.report.conditions.len(), 1);
    assert_eq!(extraction.report.conditions[0].attribute, "Author");
    assert_eq!(extraction.report.missing.len(), 1, "the banner text");
}

#[test]
fn overlapping_trees_do_not_duplicate_equivalent_conditions() {
    let html = qaa_column_variant();
    let extraction = FormExtractor::new().extract(&html);
    let mut attrs: Vec<String> = extraction
        .report
        .conditions
        .iter()
        .map(|c| format!("{}/{}", c.normalized_attribute(), c.domain.kind.name()))
        .collect();
    let before = attrs.len();
    attrs.sort();
    attrs.dedup();
    assert_eq!(attrs.len(), before, "no equivalent duplicates in the union");
}
