//! The semi-naive fix-point's hard invariant: the delta-driven
//! schedule must produce a chart **byte-identical** to the naive
//! reference — same instances in the same creation order, same
//! invalidations, same maximal trees, same merged report. Only the
//! redundancy counters (and timing) may differ.
//!
//! Checked instance-by-instance (symbol, production, children, token,
//! span, bbox, payload, validity) across the generated corpus, under
//! both preference orders, under brute force, and under truncation and
//! zero-deadline budgets.

use metaform::paper_example_grammar;
use metaform_datasets::fixtures::figure5_fragment;
use metaform_datasets::{all_datasets, basic};
use metaform_parser::{
    merge, parse_with, FixpointMode, ParseResult, ParseSession, ParserOptions, PreferenceOrder,
};
use std::sync::Arc;

fn tokens_of(html: &str) -> Vec<metaform::Token> {
    let doc = metaform_html::parse(html);
    let lay = metaform_layout::layout(&doc);
    metaform_tokenizer::tokenize(&doc, &lay).tokens
}

/// Instance-level chart equality plus everything downstream of it.
fn assert_identical(semi: &ParseResult, naive: &ParseResult, label: &str) {
    assert_eq!(
        semi.chart.len(),
        naive.chart.len(),
        "{label}: chart size diverged"
    );
    for (a, b) in semi.chart.ids().zip(naive.chart.ids()) {
        let (ca, cb) = (&semi.chart, &naive.chart);
        assert_eq!(ca.symbol(a), cb.symbol(b), "{label}/{a:?}: symbol");
        assert_eq!(ca.prod(a), cb.prod(b), "{label}/{a:?}: production");
        assert_eq!(ca.children(a), cb.children(b), "{label}/{a:?}: children");
        assert_eq!(ca.token(a), cb.token(b), "{label}/{a:?}: token");
        assert_eq!(ca.span(a), cb.span(b), "{label}/{a:?}: span");
        assert_eq!(ca.bbox(a), cb.bbox(b), "{label}/{a:?}: bbox");
        assert_eq!(ca.payload(a), cb.payload(b), "{label}/{a:?}: payload");
        assert_eq!(ca.is_valid(a), cb.is_valid(b), "{label}/{a:?}: validity");
    }
    assert_eq!(semi.trees, naive.trees, "{label}: maximal trees diverged");
    assert_eq!(
        merge(&semi.chart, &semi.trees),
        merge(&naive.chart, &naive.trees),
        "{label}: merged report diverged"
    );
    let (sa, sb) = (&semi.stats, &naive.stats);
    assert_eq!(sa.created, sb.created, "{label}: created");
    assert_eq!(sa.invalidated, sb.invalidated, "{label}: invalidated");
    assert_eq!(sa.rolled_back, sb.rolled_back, "{label}: rolled_back");
    assert_eq!(sa.trees, sb.trees, "{label}: tree count");
    assert_eq!(sa.complete, sb.complete, "{label}: complete");
    assert_eq!(
        sa.complete_parses, sb.complete_parses,
        "{label}: complete_parses"
    );
    assert_eq!(sa.temporary, sb.temporary, "{label}: temporary");
    assert_eq!(sa.budget, sb.budget, "{label}: budget outcome");
    // The schedules run the same number of rounds — only the work per
    // round differs.
    assert_eq!(
        sa.fixpoint_rounds, sb.fixpoint_rounds,
        "{label}: fixpoint rounds"
    );
    // The naive schedule never skips anything.
    assert_eq!(sb.combos_skipped_delta, 0, "{label}: naive skipped combos");
    assert_eq!(sb.pairs_skipped_delta, 0, "{label}: naive skipped pairs");
    assert!(
        sa.combos_enumerated <= sb.combos_enumerated,
        "{label}: semi-naive enumerated more ({} > {})",
        sa.combos_enumerated,
        sb.combos_enumerated
    );
}

/// Parses under both schedules and checks the invariant; returns the
/// `(semi, naive)` combos-enumerated counts for corpus-level rollups.
fn check_page(html: &str, opts: &ParserOptions, label: &str) -> (u64, u64) {
    let grammar = metaform::global_grammar();
    let tokens = tokens_of(html);
    let semi = parse_with(
        &grammar,
        &tokens,
        &ParserOptions {
            fixpoint: FixpointMode::SemiNaive,
            ..opts.clone()
        },
    );
    let naive = parse_with(
        &grammar,
        &tokens,
        &ParserOptions {
            fixpoint: FixpointMode::Naive,
            ..opts.clone()
        },
    );
    assert_identical(&semi, &naive, label);
    (semi.stats.combos_enumerated, naive.stats.combos_enumerated)
}

#[test]
fn charts_identical_across_basic_corpus() {
    let opts = ParserOptions::default();
    let (mut semi_total, mut naive_total) = (0u64, 0u64);
    for source in &basic().sources {
        let (s, n) = check_page(&source.html, &opts, &source.name);
        semi_total += s;
        naive_total += n;
    }
    // The headline claim: the delta schedule does strictly less
    // enumeration work over the corpus, not just equal work.
    assert!(
        semi_total < naive_total,
        "semi-naive did not reduce enumeration: {semi_total} vs {naive_total}"
    );
}

#[test]
fn charts_identical_across_remaining_datasets_sampled() {
    // The other three generated datasets, ~20 pages each: enough to
    // exercise their layout and vocabulary quirks without running the
    // full corpus twice per mode in a debug-profile test.
    let opts = ParserOptions::default();
    for ds in all_datasets() {
        if ds.name == "Basic" {
            continue;
        }
        for source in ds.sources.iter().take(20) {
            check_page(&source.html, &opts, &source.name);
        }
    }
}

#[test]
fn charts_identical_under_reversed_preference_order() {
    let opts = ParserOptions {
        preference_order: PreferenceOrder::Reversed,
        ..Default::default()
    };
    for source in basic().sources.iter().take(20) {
        check_page(&source.html, &opts, &format!("{}/reversed", source.name));
    }
}

#[test]
fn charts_identical_under_brute_force() {
    // No preference pruning: the chart blows up combinatorially, so
    // the delta machinery carries the whole fix-point. Checked on the
    // paper's 16-token Figure 5 fragment (the §4.2.1 fixture).
    let (semi, naive) = check_page(
        &figure5_fragment(),
        &ParserOptions::brute_force(),
        "figure5/brute",
    );
    assert!(
        semi < naive,
        "brute force must show the reduction: {semi} vs {naive}"
    );
}

#[test]
fn charts_identical_when_truncated() {
    // A tight instance cap cuts instantiation mid-pass; both schedules
    // must truncate at exactly the same instance.
    let opts = ParserOptions {
        max_instances: 120,
        ..Default::default()
    };
    for source in basic().sources.iter().take(20) {
        let (semi, naive) = (
            parse_with(
                &metaform::global_grammar(),
                &tokens_of(&source.html),
                &ParserOptions {
                    fixpoint: FixpointMode::SemiNaive,
                    ..opts.clone()
                },
            ),
            parse_with(
                &metaform::global_grammar(),
                &tokens_of(&source.html),
                &ParserOptions {
                    fixpoint: FixpointMode::Naive,
                    ..opts.clone()
                },
            ),
        );
        assert_identical(&semi, &naive, &format!("{}/truncated", source.name));
    }
}

#[test]
fn charts_identical_at_zero_deadline() {
    // A zero deadline is the only deterministic deadline: both
    // schedules must stop before instantiating anything.
    let opts = ParserOptions {
        deadline: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let source = &basic().sources[0];
    let (semi, naive) = check_page(&source.html, &opts, &format!("{}/deadline", source.name));
    assert_eq!(semi, 0, "zero deadline must preclude enumeration");
    assert_eq!(naive, 0);
}

#[test]
fn session_recycling_resets_watermarks() {
    // A recycled ParseSession reuses one Scratch across parses; stale
    // watermarks from page N would silently skip work on page N+1, so
    // each session parse must match a fresh one-shot parse exactly.
    let grammar = paper_example_grammar();
    let compiled = Arc::new(grammar.clone().compile().expect("paper grammar compiles"));
    let mut session = ParseSession::with_options(compiled, ParserOptions::default());
    let naive_opts = ParserOptions {
        fixpoint: FixpointMode::Naive,
        ..Default::default()
    };
    for source in basic().sources.iter().take(10) {
        let tokens = tokens_of(&source.html);
        let fresh_naive = parse_with(&grammar, &tokens, &naive_opts);
        let recycled = session.parse(&tokens);
        assert_identical(&recycled, &fresh_naive, &format!("{}/session", source.name));
        session.recycle(recycled);
    }
}
