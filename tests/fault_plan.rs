//! Deterministic fault injection end to end: the option-gated
//! [`FaultPlan`] steering `extract_batch_adaptive`, the same plan
//! running inside `metaformd` (with `/metrics` counters matching the
//! summed per-job `BatchStats` exactly), and the automatic budget
//! refit loop converging under a starved control plane.

use metaform_datasets::basic;
use metaform_extractor::{AdaptiveOptions, ErrorKind, Fault, FaultPlan, FormExtractor, Provenance};
use metaform_parser::CancelToken;
use metaform_service::{push_json_str, JsonValue, Server, ServerHandle, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

// ------------------------------------------------------- HTTP client

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let head = match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nHost: metaformd\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: metaformd\r\nConnection: close\r\n\r\n"),
    };
    stream.write_all(head.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, raw_body) = response.split_once("\r\n\r\n").expect("has a head");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("has a status");
    let body = if head.contains("Transfer-Encoding: chunked") {
        decode_chunked(raw_body)
    } else {
        raw_body.to_string()
    };
    (status, body)
}

fn decode_chunked(mut rest: &str) -> String {
    let mut out = String::new();
    loop {
        let (size, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size, 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
}

fn submit(addr: SocketAddr, pages: &[String]) -> u64 {
    let mut body = String::from("{\"pages\": [");
    for (i, page) in pages.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        push_json_str(&mut body, page);
    }
    body.push_str("]}");
    let (status, body) = http(addr, "POST", "/v1/batches", Some(&body));
    assert_eq!(status, 202, "{body}");
    JsonValue::parse(body.as_bytes())
        .expect("submission answer is JSON")
        .field("job")
        .and_then(JsonValue::as_num)
        .expect("has a job id")
}

fn wait_done(addr: SocketAddr, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/batches/{job}"), None);
        assert_eq!(status, 200, "{body}");
        let state = JsonValue::parse(body.as_bytes())
            .expect("status is JSON")
            .field("state")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("has a state");
        if state == "done" {
            return;
        }
        assert!(Instant::now() < deadline, "job {job} stuck in {state}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Pulls the named stats counter out of a job's results document.
fn job_stat(addr: SocketAddr, job: u64, name: &str) -> u64 {
    let (status, body) = http(addr, "GET", &format!("/v1/batches/{job}/results"), None);
    assert_eq!(status, 200, "{body}");
    JsonValue::parse(body.as_bytes())
        .expect("results are JSON")
        .field("stats")
        .and_then(|s| s.field(name))
        .and_then(JsonValue::as_num)
        .unwrap_or_else(|_| panic!("results of job {job} carry stats.{name}"))
}

/// Pulls one metric value out of the `/metrics` exposition text.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from: {text}"))
}

fn spawn_server(config: ServiceConfig) -> ServerHandle {
    Server::bind(config)
        .expect("binds an ephemeral port")
        .spawn()
        .expect("spawns")
}

// ------------------------------------------------------- plan algebra

#[test]
fn plan_specs_parse_seed_and_replace() {
    let plan = FaultPlan::parse("panic@3,stall@5,cancel@7").expect("valid spec");
    assert_eq!(plan.fault_for(3), Some(Fault::Panic));
    assert_eq!(plan.fault_for(5), Some(Fault::Stall));
    assert_eq!(plan.fault_for(7), Some(Fault::Cancel));
    assert_eq!(plan.fault_for(4), None);
    assert!(!plan.is_empty());

    assert!(FaultPlan::parse("explode@3").is_err(), "unknown kind");
    assert!(FaultPlan::parse("panic@x").is_err(), "bad index");
    assert!(FaultPlan::parse("panic3").is_err(), "missing separator");
    assert!(FaultPlan::parse("").expect("empty spec is fine").is_empty());

    // Builder: a later entry for the same page replaces the earlier.
    let plan = FaultPlan::new().with(2, Fault::Panic).with(2, Fault::Stall);
    assert_eq!(plan.fault_for(2), Some(Fault::Stall));

    // Seeded chaos is a pure function of the seed.
    let a = FaultPlan::seeded(42, 100, 30);
    let b = FaultPlan::seeded(42, 100, 30);
    assert_eq!(a, b);
    assert!(!a.is_empty(), "30% over 100 pages fires somewhere");
    assert_ne!(a, FaultPlan::seeded(43, 100, 30), "seed matters");
    assert!(FaultPlan::seeded(42, 100, 0).is_empty());
}

// ---------------------------------------------------- batch behavior

#[test]
fn planned_faults_steer_the_batch_deterministically() {
    let ds = basic();
    let pages: Vec<String> = ds.sources.iter().take(12).map(|s| s.html.clone()).collect();
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let plan = FaultPlan::parse("panic@3,stall@5,cancel@8").expect("valid spec");

    let run = || {
        FormExtractor::new()
            .worker_threads(1)
            .cancel_token(CancelToken::new())
            .fault_plan(plan.clone())
            .extract_batch_adaptive(
                &refs,
                &AdaptiveOptions {
                    max_retries: 0,
                    budget_growth: 2,
                },
            )
    };
    let batch = run();

    // The plan lands exactly where it was aimed: page 3 panics, page 5
    // stalls into its deadline, page 8 fires the cancel token — and
    // with one worker, every page after 8 observes the cancellation.
    assert_eq!(batch.stats.panicked, 1, "{}", batch.stats.summary());
    assert_eq!(batch.stats.timed_out, 1, "{}", batch.stats.summary());
    assert_eq!(batch.stats.cancelled, 4, "{}", batch.stats.summary());
    assert_eq!(batch.stats.failed(), 6, "{}", batch.stats.summary());
    let kind_of = |page: usize| {
        batch
            .failures
            .iter()
            .find(|f| f.page_index == page)
            .unwrap_or_else(|| panic!("page {page} has a failure record"))
            .error
    };
    assert_eq!(kind_of(3), ErrorKind::Panicked);
    assert_eq!(kind_of(5), ErrorKind::Timeout);
    for page in 8..12 {
        assert_eq!(kind_of(page), ErrorKind::Cancelled, "page {page}");
    }

    // Faulted pages still produce reports (the ladder bottoms out at
    // the baseline; none of these partials can claim conditions).
    for (i, e) in batch.extractions.iter().enumerate() {
        let faulted = i == 3 || i == 5 || i >= 8;
        if faulted {
            assert_eq!(e.via, Provenance::BaselineFallback, "page {i}");
        } else {
            assert_eq!(e.via, Provenance::Grammar, "page {i}");
        }
    }

    // Unfaulted pages are byte-identical to a clean sequential run.
    let clean = FormExtractor::new();
    for (i, e) in batch.extractions.iter().enumerate() {
        if i == 3 || i == 5 || i >= 8 {
            continue;
        }
        assert_eq!(
            e.report.to_string(),
            clean.extract(&pages[i]).report.to_string(),
            "page {i}"
        );
    }

    // Same plan, same pages, same results — no timing races anywhere.
    let again = run();
    let masked = |s: &metaform_extractor::BatchStats| {
        s.summary()
            .split(" time=")
            .next()
            .expect("time")
            .to_string()
    };
    assert_eq!(masked(&batch.stats), masked(&again.stats));
    let shape = |b: &metaform_extractor::AdaptiveBatch| {
        b.extractions
            .iter()
            .map(|e| (e.via, e.report.to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&batch), shape(&again));
    for (a, b) in batch.failures.iter().zip(&again.failures) {
        assert_eq!(a.normalized(), b.normalized());
    }
}

// --------------------------------------------------- service behavior

#[test]
fn service_metrics_match_summed_batch_stats_under_faults() {
    let ds = basic();
    let pages: Vec<String> = ds.sources.iter().take(8).map(|s| s.html.clone()).collect();
    let handle = spawn_server(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        fault_plan: Some(FaultPlan::parse("panic@1,stall@4").expect("valid spec")),
        ..ServiceConfig::default()
    });
    let addr = handle.addr;

    let jobs: Vec<u64> = (0..3).map(|_| submit(addr, &pages)).collect();
    for &job in &jobs {
        wait_done(addr, job);
    }

    // No drift: each /metrics counter equals the same counter summed
    // over every job's BatchStats document.
    for (stat, metric_name) in [
        ("degraded", "metaformd_pages_degraded_total"),
        ("salvaged", "metaformd_pages_salvaged_total"),
        ("recovered", "metaformd_pages_recovered_total"),
        ("cancelled", "metaformd_pages_cancelled_total"),
    ] {
        let summed: u64 = jobs.iter().map(|&job| job_stat(addr, job, stat)).sum();
        assert_eq!(
            metric(addr, metric_name),
            summed,
            "{metric_name} drifted from summed BatchStats"
        );
    }
    // Every job hit the same plan: 2 faulted pages each, all degraded.
    for &job in &jobs {
        assert_eq!(job_stat(addr, job, "panicked"), 1);
        assert_eq!(job_stat(addr, job, "timed_out"), 1);
        assert_eq!(job_stat(addr, job, "degraded"), 2);
    }
    assert_eq!(metric(addr, "metaformd_jobs_completed_total"), 3);
    handle.shutdown();
}

/// The soak from the acceptance list: a starved control plane plus
/// `refit_every: 1` must converge — later jobs see the refitted
/// budgets and stop truncating.
#[test]
fn refit_loop_converges_under_starved_budgets() {
    let ds = basic();
    let pages: Vec<String> = ds.sources.iter().take(20).map(|s| s.html.clone()).collect();
    let handle = spawn_server(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        refit_every: Some(1),
        ..ServiceConfig::default()
    });
    let addr = handle.addr;

    // Starve the budgets by hand: a cap this low truncates every page.
    let (status, body) = http(addr, "POST", "/v1/budgets", Some("{\"max_instances\": 5}"));
    assert_eq!(status, 200, "{body}");

    let first = submit(addr, &pages);
    wait_done(addr, first);
    let starved_truncated = job_stat(addr, first, "truncated");
    assert_eq!(starved_truncated, pages.len() as u64, "cap 5 starves all");

    // The refit fired off the first job's evidence and grew the caps.
    assert!(metric(addr, "metaformd_budget_refits_total") >= 1);
    let (status, budgets) = http(addr, "GET", "/v1/budgets", None);
    assert_eq!(status, 200);
    let refitted = JsonValue::parse(budgets.as_bytes())
        .expect("budgets are JSON")
        .field("max_instances")
        .and_then(JsonValue::as_num)
        .expect("refit set a cap");
    assert!(refitted > 5, "refit grew the cap, got {refitted}");

    // Convergence: the next job runs under the refitted budgets and
    // stops truncating (fewer truncated, no new degradations).
    let second = submit(addr, &pages);
    wait_done(addr, second);
    assert!(
        job_stat(addr, second, "truncated") < starved_truncated,
        "refit did not converge"
    );
    assert_eq!(job_stat(addr, second, "degraded"), 0);
    handle.shutdown();
}
