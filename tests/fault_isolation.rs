//! Fault isolation in batch extraction: one poison page — panicking,
//! over-budget, or empty — must not kill the batch. The other N−1
//! pages must come back byte-identical to a sequential run, and the
//! failure must be visible in the typed per-page results and in the
//! `BatchStats` failure accounting.

use metaform::{BatchStats, ExtractError, FormExtractor, Provenance};
use metaform_datasets::basic;
use std::time::Duration;

/// A batch of real pages from the Basic dataset with one poison page
/// spliced into the middle.
fn pages_with_poison(poison: &str, at: usize) -> Vec<String> {
    let ds = basic();
    let mut pages: Vec<String> = ds.sources.iter().take(20).map(|s| s.html.clone()).collect();
    pages.insert(at, poison.to_string());
    pages
}

const POISON_AT: usize = 7;

#[test]
fn panicking_page_yields_error_slot_and_leaves_others_byte_identical() {
    let poison = "<form>PANIC_MARKER <input type=text name=p></form>";
    let pages = pages_with_poison(poison, POISON_AT);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    let clean = FormExtractor::new().worker_threads(4);
    let poisoned = FormExtractor::new()
        .worker_threads(4)
        .inject_panic_marker("PANIC_MARKER");

    let results = poisoned.extract_batch_results(&refs);
    assert_eq!(results.len(), refs.len());
    match &results[POISON_AT] {
        Err(ExtractError::Panicked {
            page_index,
            message,
        }) => {
            assert_eq!(*page_index, POISON_AT);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("poison page must be Err(Panicked), got {other:?}"),
    }

    // Every other page: Ok, and byte-identical to a sequential run on
    // a clean extractor.
    for (i, (result, page)) in results.iter().zip(&refs).enumerate() {
        if i == POISON_AT {
            continue;
        }
        let batch = result
            .as_ref()
            .unwrap_or_else(|e| panic!("page {i} must succeed, got {e}"));
        let sequential = clean.extract(page);
        assert_eq!(
            format!("{}", batch.report),
            format!("{}", sequential.report),
            "report of page {i} diverged from the sequential run"
        );
        assert_eq!(batch.tokens, sequential.tokens, "tokens of page {i}");
        assert_eq!(batch.stats.created, sequential.stats.created);
        assert_eq!(batch.via, Provenance::Grammar);
    }
}

#[test]
fn infallible_batch_degrades_the_poison_page_and_counts_it() {
    let poison = "<form>PANIC_MARKER <input type=text name=p></form>";
    let pages = pages_with_poison(poison, POISON_AT);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    let poisoned = FormExtractor::new()
        .worker_threads(4)
        .inject_panic_marker("PANIC_MARKER");
    let (extractions, stats) = poisoned.extract_batch_stats(&refs);

    assert_eq!(extractions.len(), refs.len(), "no page is dropped");
    assert_eq!(stats.panicked, 1, "exactly one panicked page");
    assert_eq!(stats.degraded, 1, "exactly one degraded page");
    assert_eq!(stats.truncated, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.empty, 0);
    assert_eq!(stats.failed(), 1);
    assert_eq!(stats.schedules_built, 0, "compile-once still holds");

    // The poison page still gets a best-effort (baseline) description.
    assert_eq!(extractions[POISON_AT].via, Provenance::BaselineFallback);
    assert!(
        !extractions[POISON_AT].report.conditions.is_empty(),
        "baseline fallback reads the form the grammar path never reached"
    );
    for (i, ex) in extractions.iter().enumerate() {
        if i != POISON_AT {
            assert_eq!(ex.via, Provenance::Grammar, "page {i} must not degrade");
        }
    }

    // The summary line carries the failure accounting.
    let line = stats.summary();
    assert!(line.contains("panicked=1"), "{line}");
    assert!(line.contains("degraded=1"), "{line}");
}

#[test]
fn deadline_blown_page_degrades_to_nonempty_report() {
    let ds = basic();
    let pages: Vec<&str> = ds.sources.iter().take(6).map(|s| s.html.as_str()).collect();

    // A zero deadline fails every page's grammar parse; the batch
    // still returns a degraded-but-nonempty report per page.
    let rushed = FormExtractor::new()
        .worker_threads(2)
        .page_deadline(Duration::ZERO);
    let results = rushed.extract_batch_results(&pages);
    for (i, r) in results.iter().enumerate() {
        assert!(
            matches!(r, Err(ExtractError::Timeout { page_index }) if *page_index == i),
            "page {i}: expected Timeout, got {r:?}"
        );
    }

    let (extractions, stats) = rushed.extract_batch_stats(&pages);
    assert_eq!(stats.timed_out, pages.len());
    assert_eq!(stats.degraded, pages.len());
    for (i, ex) in extractions.iter().enumerate() {
        assert_eq!(ex.via, Provenance::BaselineFallback);
        assert!(
            !ex.report.conditions.is_empty(),
            "page {i}: degraded report must still describe the form"
        );
    }

    // A generous deadline changes nothing versus no deadline at all.
    let relaxed = FormExtractor::new()
        .worker_threads(2)
        .page_deadline(Duration::from_secs(600));
    let unbounded = FormExtractor::new().worker_threads(2);
    let (a, a_stats) = relaxed.extract_batch_stats(&pages);
    let (b, b_stats) = unbounded.extract_batch_stats(&pages);
    assert_eq!(a_stats.failed(), 0);
    assert_eq!(b_stats.failed(), 0);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(format!("{}", x.report), format!("{}", y.report));
    }
}

#[test]
fn truncated_page_is_counted_not_fatal() {
    let ds = basic();
    let pages: Vec<&str> = ds.sources.iter().take(4).map(|s| s.html.as_str()).collect();
    let capped = FormExtractor::new().worker_threads(2).max_instances(5);
    let (extractions, stats) = capped.extract_batch_stats(&pages);
    assert_eq!(stats.truncated, pages.len());
    assert_eq!(stats.degraded, pages.len());
    assert_eq!(extractions.len(), pages.len());
    assert!(extractions
        .iter()
        .all(|e| e.via == Provenance::BaselineFallback));
}

#[test]
fn empty_and_default_batch_stats_are_coherent() {
    let stats = BatchStats::default();
    assert_eq!(stats.failed(), 0);
    let (none, empty) = FormExtractor::new().extract_batch_stats(&[]);
    assert!(none.is_empty());
    assert_eq!(empty.workers, 0, "empty batch spawns no workers");
    assert_eq!(empty.failed(), 0);
}
