//! The shipped grammar artifact (`grammars/global.2pg`) must stay in
//! sync with the built-in derived grammar — the analogue of the paper
//! publishing its grammar online.

use metaform::global_grammar;
use metaform_grammar::{build_schedule, from_dsl, to_dsl};

fn artifact() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/grammars/global.2pg");
    std::fs::read_to_string(path).expect("grammars/global.2pg exists")
}

#[test]
fn shipped_grammar_matches_builtin() {
    assert_eq!(
        artifact(),
        to_dsl(&global_grammar()),
        "regenerate with: cargo run --bin metaform -- --export-grammar > grammars/global.2pg"
    );
}

#[test]
fn shipped_grammar_loads_and_schedules() {
    let g = from_dsl(&artifact()).expect("artifact parses");
    assert_eq!(g.productions.len(), global_grammar().productions.len());
    let schedule = build_schedule(&g).expect("schedulable");
    assert_eq!(schedule.rollback_prefs().count(), 0);
}

#[test]
fn shipped_grammar_extracts_like_builtin() {
    let g = from_dsl(&artifact()).expect("artifact parses");
    let html = metaform_datasets::fixtures::qam().html;
    let builtin = metaform::FormExtractor::new().extract(&html);
    let loaded = metaform::FormExtractor::with_grammar(g).extract(&html);
    assert_eq!(builtin.report, loaded.report);
}
