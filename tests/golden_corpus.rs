//! Golden-corpus regression test: the survey corpus's extraction
//! reports, pinned byte-for-byte.
//!
//! The parser is deterministic, so any diff against the golden file is
//! a behavior change — intended ones are re-blessed, unintended ones
//! are regressions caught here. To regenerate after an intentional
//! change:
//!
//! ```text
//! METAFORM_BLESS=1 cargo test --test golden_corpus
//! ```
//!
//! then review the diff of `tests/golden/survey_reports.txt` like any
//! other code change.

use metaform_datasets::survey_corpus;
use metaform_extractor::{FormExtractor, Provenance};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/survey_reports.txt")
}

/// Renders the whole corpus the way the golden file stores it: one
/// `== name ==` header per page, the report's `Display` output, the
/// provenance when degraded, and a blank separator line.
fn render_corpus() -> String {
    let corpus = survey_corpus();
    let pages: Vec<&str> = corpus.iter().map(|(_, html)| html.as_str()).collect();
    let extractions = FormExtractor::new().extract_batch(&pages);
    let mut out = String::new();
    for ((name, _), extraction) in corpus.iter().zip(&extractions) {
        out.push_str("== ");
        out.push_str(name);
        out.push_str(" ==\n");
        if extraction.via == Provenance::BaselineFallback {
            out.push_str("(via proximity-baseline fallback)\n");
        }
        out.push_str(&extraction.report.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn survey_corpus_reports_match_the_golden_file() {
    let rendered = render_corpus();
    let path = golden_path();
    if std::env::var_os("METAFORM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has a parent")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write golden file");
        println!("blessed {} ({} bytes)", path.display(), rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n\
             (first run? bless it: METAFORM_BLESS=1 cargo test --test golden_corpus)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "survey corpus reports drifted from the golden file; if the \
         change is intended, re-bless with METAFORM_BLESS=1 and review \
         the diff"
    );
}

#[test]
fn golden_rendering_is_deterministic() {
    assert_eq!(render_corpus(), render_corpus());
}
