//! Golden-corpus regression test: the survey corpus's extraction
//! reports, pinned byte-for-byte.
//!
//! The parser is deterministic, so any diff against the golden file is
//! a behavior change — intended ones are re-blessed, unintended ones
//! are regressions caught here. To regenerate after an intentional
//! change:
//!
//! ```text
//! METAFORM_BLESS=1 cargo test --test golden_corpus
//! ```
//!
//! then review the diff of `tests/golden/survey_reports.txt` like any
//! other code change.

use metaform_datasets::survey_corpus;
use metaform_extractor::{FormExtractor, Provenance};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/survey_reports.txt")
}

fn starved_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/survey_starved_reports.txt")
}

/// The instance cap the starved fixture runs under — tight enough to
/// truncate most survey pages, so the fixture pins which rung of the
/// degradation ladder (grammar / salvage / baseline) serves each page
/// and what the salvaged partial reports look like.
const STARVED_CAP: usize = 40;

/// Renders the whole corpus the way the golden file stores it: one
/// `== name ==` header per page, the report's `Display` output, the
/// provenance when degraded, and a blank separator line.
fn render_corpus() -> String {
    render_with(FormExtractor::new())
}

/// The same corpus under the starved instance cap: most pages
/// truncate, and the fixture pins whether the salvage tier or the
/// baseline serves each one.
fn render_starved_corpus() -> String {
    render_with(FormExtractor::new().max_instances(STARVED_CAP))
}

fn render_with(extractor: FormExtractor) -> String {
    let corpus = survey_corpus();
    let pages: Vec<&str> = corpus.iter().map(|(_, html)| html.as_str()).collect();
    let extractions = extractor.extract_batch(&pages);
    let mut out = String::new();
    for ((name, _), extraction) in corpus.iter().zip(&extractions) {
        out.push_str("== ");
        out.push_str(name);
        out.push_str(" ==\n");
        match extraction.via {
            Provenance::BaselineFallback => out.push_str("(via proximity-baseline fallback)\n"),
            Provenance::PartialSalvage => out.push_str("(via salvaged partial parse)\n"),
            _ => {}
        }
        out.push_str(&extraction.report.to_string());
        out.push('\n');
    }
    out
}

/// The shared bless-or-compare core: regenerates `path` under
/// `METAFORM_BLESS=1`, otherwise compares and panics with a focused
/// diff on drift.
fn check_golden(rendered: &str, path: &PathBuf) {
    if std::env::var_os("METAFORM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has a parent")).expect("mkdir");
        std::fs::write(path, rendered).expect("write golden file");
        println!("blessed {} ({} bytes)", path.display(), rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n\
             (first run? bless it: METAFORM_BLESS=1 cargo test --test golden_corpus)",
            path.display()
        )
    });
    if rendered != golden {
        panic!("{}", divergence_report(&golden, rendered));
    }
}

#[test]
fn survey_corpus_reports_match_the_golden_file() {
    check_golden(&render_corpus(), &golden_path());
}

#[test]
fn budget_starved_corpus_matches_its_golden_file() {
    check_golden(&render_starved_corpus(), &starved_golden_path());
}

/// A focused mismatch report: the one-line regen hint, then a unified
/// diff hunk around the first diverging line (golden as `-`, rendered
/// as `+`), so the failure is actionable without rerunning anything.
fn divergence_report(golden: &str, rendered: &str) -> String {
    const CONTEXT: usize = 3;
    let golden_lines: Vec<&str> = golden.lines().collect();
    let rendered_lines: Vec<&str> = rendered.lines().collect();
    let first = golden_lines
        .iter()
        .zip(&rendered_lines)
        .position(|(g, r)| g != r)
        .unwrap_or_else(|| golden_lines.len().min(rendered_lines.len()));
    let start = first.saturating_sub(CONTEXT);
    let g_end = golden_lines.len().min(first + 1 + CONTEXT);
    let r_end = rendered_lines.len().min(first + 1 + CONTEXT);
    let mut out = String::from(
        "survey corpus reports drifted from the golden file\n\
         to accept the change: METAFORM_BLESS=1 cargo test --test golden_corpus\n",
    );
    out.push_str(&format!(
        "--- golden   (blessed file)\n\
         +++ rendered (current engine output)\n\
         @@ -{},{} +{},{} @@ first divergence at line {}\n",
        start + 1,
        g_end - start,
        start + 1,
        r_end - start,
        first + 1,
    ));
    for line in &golden_lines[start..first.min(g_end)] {
        out.push(' ');
        out.push_str(line);
        out.push('\n');
    }
    for line in &golden_lines[first.min(g_end)..g_end] {
        out.push('-');
        out.push_str(line);
        out.push('\n');
    }
    for line in &rendered_lines[first.min(r_end)..r_end] {
        out.push('+');
        out.push_str(line);
        out.push('\n');
    }
    if golden_lines.len() != rendered_lines.len() {
        out.push_str(&format!(
            "(line counts differ: golden {}, rendered {})\n",
            golden_lines.len(),
            rendered_lines.len()
        ));
    }
    out
}

#[test]
fn divergence_report_pinpoints_the_first_differing_line() {
    let golden = "a\nb\nc\nd\ne\n";
    let rendered = "a\nb\nC\nd\ne\n";
    let report = divergence_report(golden, rendered);
    assert!(
        report.contains("METAFORM_BLESS=1 cargo test --test golden_corpus"),
        "{report}"
    );
    assert!(report.contains("first divergence at line 3"), "{report}");
    assert!(report.contains("-c\n"), "{report}");
    assert!(report.contains("+C\n"), "{report}");
    // Context line before the divergence is carried unprefixed.
    assert!(report.contains(" b\n"), "{report}");
    // Pure append: divergence sits past the common prefix.
    let longer = divergence_report("a\n", "a\nb\n");
    assert!(longer.contains("first divergence at line 2"), "{longer}");
    assert!(longer.contains("+b\n"), "{longer}");
    assert!(longer.contains("line counts differ"), "{longer}");
}

#[test]
fn golden_rendering_is_deterministic() {
    assert_eq!(render_corpus(), render_corpus());
}
