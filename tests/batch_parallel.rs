//! Cross-thread determinism of `FormExtractor::extract_batch`: over
//! the Basic dataset, a parallel run with several workers must produce
//! byte-identical reports and tokens, in input order, to a sequential
//! run — parallelism may only change wall-clock time.

use metaform::FormExtractor;
use metaform_datasets::basic;

#[test]
fn parallel_batch_is_byte_identical_to_sequential_over_basic() {
    let ds = basic();
    let pages: Vec<&str> = ds.sources.iter().map(|s| s.html.as_str()).collect();

    let extractor = FormExtractor::new().worker_threads(4);
    let sequential: Vec<_> = pages.iter().map(|p| extractor.extract(p)).collect();
    let (parallel, stats) = extractor.extract_batch_stats(&pages);

    assert!(
        stats.workers >= 2,
        "the determinism claim needs real parallelism"
    );
    assert_eq!(stats.pages, pages.len());
    assert_eq!(stats.schedules_built, 0, "compile-once violated");
    assert_eq!(
        stats.failed(),
        0,
        "no curated page fails: {}",
        stats.summary()
    );
    assert_eq!(stats.degraded, 0, "no curated page degrades");
    assert_eq!(parallel.len(), sequential.len());
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(
            format!("{}", p.report),
            format!("{}", s.report),
            "report of page {i} diverged"
        );
        assert_eq!(p.tokens, s.tokens, "tokens of page {i} diverged");
        assert_eq!(p.stats.trees, s.stats.trees, "trees of page {i} diverged");
        assert_eq!(p.stats.created, s.stats.created);
        assert_eq!(p.stats.invalidated, s.stats.invalidated);
    }

    // The rollup is itself deterministic (timing aside).
    let (_, again) = extractor.extract_batch_stats(&pages);
    assert_eq!(
        (stats.tokens, stats.created, stats.invalidated, stats.trees),
        (again.tokens, again.created, again.invalidated, again.trees)
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let ds = basic();
    let pages: Vec<&str> = ds
        .sources
        .iter()
        .take(24)
        .map(|s| s.html.as_str())
        .collect();
    let one = FormExtractor::new().worker_threads(1).extract_batch(&pages);
    let many = FormExtractor::new().worker_threads(8).extract_batch(&pages);
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(format!("{}", a.report), format!("{}", b.report));
    }
}
