//! Salvage-tier acceptance: the degradation ladder on the truncation
//! corpus (the E17 setup — 60 Basic pages, first-pass instance cap
//! pinned at the corpus's 25th percentile so most pages truncate), the
//! dominance rule's determinism, and the guarantee that salvage never
//! alters what a clean parse of the same page produces.

use metaform_datasets::basic;
use metaform_extractor::{
    condition_coverage, extract_baseline, token_coverage, AdaptiveOptions, FailureOutcome,
    FormExtractor, Provenance,
};
use metaform_parser::{FixpointMode, ParserOptions};

/// The E17 truncation corpus and its starved first-pass cap.
fn corpus() -> (Vec<String>, usize) {
    let ds = basic();
    let pages: Vec<String> = ds.sources.iter().take(60).map(|s| s.html.clone()).collect();
    let ex = FormExtractor::new();
    let mut created: Vec<usize> = pages.iter().map(|p| ex.extract(p).stats.created).collect();
    created.sort_unstable();
    let cap = created[pages.len() / 4].max(2);
    (pages, cap)
}

fn starved_batch(
    pages: &[String],
    cap: usize,
    workers: Option<usize>,
    fixpoint: FixpointMode,
) -> metaform_extractor::AdaptiveBatch {
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let mut ex = FormExtractor::new()
        .parser_options(ParserOptions {
            fixpoint,
            ..ParserOptions::default()
        })
        .max_instances(cap);
    if let Some(workers) = workers {
        ex = ex.worker_threads(workers);
    }
    ex.extract_batch_adaptive(
        &refs,
        &AdaptiveOptions {
            max_retries: 0,
            budget_growth: 2,
        },
    )
}

/// The headline acceptance pin: on the truncation corpus at zero
/// retries — where pre-salvage every budget-limited page degraded to
/// the proximity baseline — at least half of those pages are now
/// served as `PartialSalvage`, each with strictly better token
/// coverage than the baseline it displaced.
#[test]
fn truncation_corpus_salvages_at_least_half_of_what_used_to_degrade() {
    let (pages, cap) = corpus();
    let batch = starved_batch(&pages, cap, None, FixpointMode::default());

    // The p25 cap starves most of the corpus (45/60 in the E17 table).
    let failed = batch.stats.salvaged + batch.stats.degraded;
    assert!(
        failed >= pages.len() / 2,
        "expected a starved corpus, got {failed} budget failures: {}",
        batch.stats.summary()
    );

    // ≥ half of what used to degrade now rides the salvage tier.
    assert!(
        batch.stats.salvaged * 2 >= failed,
        "salvaged {} of {failed} budget-limited pages: {}",
        batch.stats.salvaged,
        batch.stats.summary()
    );

    // Every salvaged page respects the dominance rule against the
    // baseline it displaced: token coverage no worse, and the claims
    // eligibility gate (at least half the baseline's claimed tokens)
    // held.
    for (i, e) in batch.extractions.iter().enumerate() {
        if e.via != Provenance::PartialSalvage {
            continue;
        }
        let baseline = extract_baseline(&e.tokens);
        assert!(
            token_coverage(&e.report, e.tokens.len()) >= token_coverage(&baseline, e.tokens.len()),
            "page {i}: salvage served below baseline token coverage"
        );
        assert!(
            condition_coverage(&e.report) * 2 >= condition_coverage(&baseline),
            "page {i}: salvage served through the claims eligibility gate"
        );
    }
    let strictly_better = batch
        .extractions
        .iter()
        .filter(|e| e.via == Provenance::PartialSalvage)
        .filter(|e| {
            token_coverage(&e.report, e.tokens.len())
                > token_coverage(&extract_baseline(&e.tokens), e.tokens.len())
        })
        .count();
    assert!(
        strictly_better * 2 >= failed,
        "{strictly_better} salvaged pages strictly beat the baseline, of {failed} failures"
    );

    // The failure records narrate the salvage: coverage fields are
    // present exactly on salvaged outcomes, and the outcome counts
    // match the rollup.
    for record in &batch.failures {
        let salvaged = record.outcome == FailureOutcome::Salvaged;
        assert_eq!(
            record.salvage_covered.is_some(),
            salvaged,
            "page {}",
            record.page_index
        );
        assert_eq!(
            record.salvage_tokens.is_some(),
            salvaged,
            "page {}",
            record.page_index
        );
        if let (Some(covered), Some(tokens)) = (record.salvage_covered, record.salvage_tokens) {
            assert!(
                covered <= tokens,
                "coverage ratio over 1 on page {}",
                record.page_index
            );
        }
    }
    assert_eq!(
        batch
            .failures
            .iter()
            .filter(|r| r.outcome == FailureOutcome::Salvaged)
            .count(),
        batch.stats.salvaged
    );
}

/// The dominance rule is a pure function of the page's chart-so-far:
/// worker counts shuffle scheduling, not results, and both fix-point
/// modes build the same chart at the same cap.
#[test]
fn salvage_selection_is_deterministic_across_workers_and_fixpoints() {
    let (pages, cap) = corpus();
    let mut reference: Option<Vec<(Provenance, String)>> = None;
    for fixpoint in [FixpointMode::SemiNaive, FixpointMode::Naive] {
        for workers in [1, 3, 8] {
            let batch = starved_batch(&pages, cap, Some(workers), fixpoint);
            let shape: Vec<(Provenance, String)> = batch
                .extractions
                .iter()
                .map(|e| (e.via, e.report.to_string()))
                .collect();
            match &reference {
                None => reference = Some(shape),
                Some(want) => {
                    assert_eq!(want, &shape, "{fixpoint:?} at {workers} workers diverged")
                }
            }
        }
    }
}

/// Salvage reads the chart it inherits, never writes it: a page that
/// was salvaged re-runs at an unbounded budget byte-identical to the
/// clean parse taken before any salvage machinery touched the corpus —
/// and pages that completed inside the cap are untouched by the ladder
/// (no salvage on the happy path).
#[test]
fn a_salvaged_page_rerun_unbounded_matches_the_clean_parse() {
    let (pages, cap) = corpus();
    let clean = FormExtractor::new();
    let before: Vec<String> = pages
        .iter()
        .map(|p| clean.extract(p).report.to_string())
        .collect();

    let batch = starved_batch(&pages, cap, None, FixpointMode::default());
    let mut salvaged_checked = 0;
    for (i, e) in batch.extractions.iter().enumerate() {
        match e.via {
            Provenance::PartialSalvage => {
                let rerun = clean.extract(&pages[i]);
                assert_eq!(rerun.via, Provenance::Grammar, "page {i}");
                assert_eq!(
                    rerun.report.to_string(),
                    before[i],
                    "page {i}: salvage altered the clean parse"
                );
                salvaged_checked += 1;
            }
            Provenance::Grammar => {
                assert_eq!(
                    e.report.to_string(),
                    before[i],
                    "page {i}: a page inside the cap must match the clean parse"
                );
            }
            _ => {}
        }
    }
    assert!(salvaged_checked > 0, "the corpus salvaged nothing");
}
