//! Adaptive batch extraction: bounded retry escalation must recover
//! every budget-limited page that a bigger budget can parse, must
//! never retry pages a bigger budget cannot help, must degrade with
//! honest provenance when retries run out, and must stop cleanly —
//! keeping completed pages — when the batch-level cancel token fires.
//! The failure telemetry narrating all of this must round-trip through
//! its JSON serialization.

use metaform::{
    AdaptiveOptions, BudgetPreset, CancelToken, ExtractError, FormExtractor, Provenance,
};
use metaform_datasets::basic;
use metaform_extractor::{failures_from_json, failures_to_json, ErrorKind, FailureOutcome};

/// A batch of real pages from the Basic dataset.
fn dataset_pages(n: usize) -> Vec<String> {
    basic()
        .sources
        .iter()
        .take(n)
        .map(|s| s.html.clone())
        .collect()
}

/// Instances a clean, unbounded parse of `page` creates — the basis
/// for picking caps that truncate on the first pass and complete after
/// one doubling.
fn created_unbounded(page: &str) -> usize {
    let ex = FormExtractor::new()
        .try_extract(page)
        .expect("page parses clean");
    ex.stats.created
}

#[test]
fn truncated_page_recovers_on_retry_byte_identical_to_one_shot() {
    // Seven tiny forms plus one rich dataset page: a cap pinned to the
    // rich page's needs truncates it alone.
    let rich = dataset_pages(1).remove(0);
    let target = 3;
    let mut pages: Vec<String> = (0..7)
        .map(|i| format!("<form>Field{i} <input type=text name=f{i}></form>"))
        .collect();
    pages.insert(target, rich);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let n = created_unbounded(refs[target]);
    assert!(n > 4, "need a nontrivial page, got {n} instances");
    // A cap of n/2+1 truncates the target page (n >= cap); one 2×
    // escalation lifts the cap past n, so the retry completes. The
    // tiny pages must stay under the cap to keep the test focused.
    let cap = n / 2 + 1;
    for (i, page) in refs.iter().enumerate() {
        if i != target {
            assert!(
                created_unbounded(page) < cap,
                "page {i} would also truncate; the rich page is not rich enough"
            );
        }
    }

    let capped = FormExtractor::new().worker_threads(2).max_instances(cap);
    let batch = capped.extract_batch_adaptive(&refs, &AdaptiveOptions::default());

    assert_eq!(batch.stats.retried, 1, "only the truncated page re-runs");
    assert_eq!(batch.stats.recovered, 1);
    assert_eq!(batch.stats.failed(), 0, "recovery means no final failure");
    assert_eq!(batch.stats.degraded, 0);
    assert_eq!(batch.extractions[target].via, Provenance::Grammar);

    // The recovered page is byte-identical to a one-shot run at the
    // retry's budget (the parser is deterministic, and a retry is a
    // fresh full parse — not a resumed one).
    let one_shot = FormExtractor::new()
        .max_instances(cap * 2)
        .try_extract(refs[target])
        .expect("one-shot at the escalated budget completes");
    let recovered = &batch.extractions[target];
    assert_eq!(
        format!("{}", recovered.report),
        format!("{}", one_shot.report)
    );
    assert_eq!(recovered.tokens, one_shot.tokens);
    assert_eq!(recovered.stats.created, one_shot.stats.created);

    // The record narrates the whole story under the original index.
    assert_eq!(batch.failures.len(), 1);
    let record = &batch.failures[0];
    assert_eq!(record.page_index, target);
    assert_eq!(record.error, ErrorKind::Truncated);
    assert_eq!(record.outcome, FailureOutcome::Recovered);
    assert_eq!(record.attempts, 2);
    assert_eq!(record.final_max_instances, cap * 2);
    assert_eq!(record.attempt_log.len(), 2);
    assert_eq!(record.attempt_log[0].attempt, 0);
    assert_eq!(record.attempt_log[0].max_instances, cap);
    assert_eq!(record.attempt_log[0].error, Some(ErrorKind::Truncated));
    assert_eq!(record.attempt_log[0].created, cap, "truncated at the cap");
    assert_eq!(record.attempt_log[1].attempt, 1);
    assert_eq!(record.attempt_log[1].max_instances, cap * 2);
    assert_eq!(record.attempt_log[1].error, None);
    assert_eq!(record.attempt_log[1].created, n);
}

#[test]
fn panicked_and_empty_pages_are_never_retried() {
    let mut pages = dataset_pages(6);
    pages.insert(
        2,
        "<form>PANIC_MARKER <input type=text name=p></form>".into(),
    );
    pages.insert(4, "<form></form>".into());
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    let extractor = FormExtractor::new()
        .worker_threads(2)
        .inject_panic_marker("PANIC_MARKER");
    let batch = extractor.extract_batch_adaptive(
        &refs,
        &AdaptiveOptions {
            max_retries: 3,
            budget_growth: 2,
        },
    );

    assert_eq!(batch.stats.retried, 0, "nothing here is budget-limited");
    assert_eq!(batch.stats.recovered, 0);
    assert_eq!(batch.stats.panicked, 1);
    assert_eq!(batch.stats.empty, 1);
    assert_eq!(batch.stats.degraded, 2);
    assert_eq!(batch.failures.len(), 2);
    for record in &batch.failures {
        assert_eq!(record.attempts, 1, "exactly one attempt, never retried");
        assert_eq!(record.attempt_log.len(), 1);
        assert_eq!(record.outcome, FailureOutcome::Degraded);
    }
    let panicked = &batch.failures[0];
    assert_eq!(panicked.page_index, 2);
    assert_eq!(panicked.error, ErrorKind::Panicked);
    assert!(
        panicked
            .message
            .as_deref()
            .unwrap_or("")
            .contains("injected fault"),
        "{:?}",
        panicked.message
    );
    let empty = &batch.failures[1];
    assert_eq!(empty.page_index, 4);
    assert_eq!(empty.error, ErrorKind::EmptyForm);
    assert_eq!(batch.extractions[2].via, Provenance::BaselineFallback);
}

#[test]
fn exhausted_retries_degrade_with_baseline_provenance() {
    let pages = dataset_pages(4);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    // A cap of 3, escalated once to 6, is still far below what any
    // real page needs: every page exhausts its retries.
    let starved = FormExtractor::new().worker_threads(2).max_instances(3);
    let batch = starved.extract_batch_adaptive(
        &refs,
        &AdaptiveOptions {
            max_retries: 1,
            budget_growth: 2,
        },
    );

    assert_eq!(batch.stats.retried, refs.len(), "every page got its retry");
    assert_eq!(batch.stats.recovered, 0);
    assert_eq!(batch.stats.truncated, refs.len());
    assert_eq!(batch.stats.degraded, refs.len());
    assert_eq!(batch.failures.len(), refs.len());
    for (i, record) in batch.failures.iter().enumerate() {
        assert_eq!(record.page_index, i, "original index survives the subset");
        assert_eq!(record.outcome, FailureOutcome::Degraded);
        assert_eq!(record.attempts, 2);
        assert_eq!(record.final_max_instances, 6);
        assert_eq!(record.attempt_log[0].max_instances, 3);
        assert_eq!(record.attempt_log[1].max_instances, 6);
        assert_eq!(record.attempt_log[1].error, Some(ErrorKind::Truncated));
    }
    for ex in &batch.extractions {
        assert_eq!(ex.via, Provenance::BaselineFallback);
        assert!(
            !ex.report.conditions.is_empty(),
            "degraded pages still get a best-effort description"
        );
    }
}

#[test]
fn cancellation_mid_batch_keeps_completed_pages() {
    let mut pages = dataset_pages(8);
    // The marker page fires the token just before its own parse; with
    // one worker, everything before it is already complete and
    // everything after it is skipped by the pre-parse check. The
    // marker page itself is rich enough that its parse is guaranteed
    // to reach a sampled poll and observe the cancellation.
    let marker_at = 3;
    pages.insert(marker_at, {
        let rich = dataset_pages(1).remove(0);
        rich.replace("<form", "<form data-cancel=CANCEL_NOW")
    });
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    let token = CancelToken::new();
    let extractor = FormExtractor::new()
        .worker_threads(1)
        .cancel_token(token.clone())
        .inject_cancel_marker("CANCEL_NOW");
    let batch = extractor.extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert!(token.is_cancelled(), "the marker page fired the token");

    // Pages before the marker completed and keep their results.
    for i in 0..marker_at {
        assert_eq!(batch.extractions[i].via, Provenance::Grammar, "page {i}");
    }
    // The marker page and everything after it were cancelled, never
    // retried, and served by the baseline.
    let cancelled = refs.len() - marker_at;
    assert_eq!(batch.stats.cancelled, cancelled);
    assert_eq!(batch.stats.degraded, cancelled);
    assert_eq!(batch.stats.retried, 0, "a cancelled batch never retries");
    assert_eq!(batch.stats.failed(), cancelled);
    assert_eq!(batch.failures.len(), cancelled);
    for (offset, record) in batch.failures.iter().enumerate() {
        assert_eq!(record.page_index, marker_at + offset);
        assert_eq!(record.error, ErrorKind::Cancelled);
        assert_eq!(record.outcome, FailureOutcome::Cancelled);
        assert_eq!(record.attempts, 1);
    }
    for i in marker_at..refs.len() {
        assert_eq!(batch.extractions[i].via, Provenance::BaselineFallback);
    }

    // The fallible API tells the same story.
    let token2 = CancelToken::new();
    let extractor2 = FormExtractor::new()
        .worker_threads(1)
        .cancel_token(token2)
        .inject_cancel_marker("CANCEL_NOW");
    let results = extractor2.extract_batch_results(&refs);
    for (i, result) in results.iter().enumerate() {
        if i < marker_at {
            assert!(result.is_ok(), "page {i} completed before the token fired");
        } else {
            assert!(
                matches!(result, Err(ExtractError::Cancelled { page_index }) if *page_index == i),
                "page {i}: expected Cancelled, got {result:?}"
            );
        }
    }
}

#[test]
fn adaptive_results_are_deterministic_across_worker_counts() {
    let pages = dataset_pages(10);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let target = 5;
    let cap = created_unbounded(refs[target]) / 2 + 1;

    let run = |workers: usize| {
        FormExtractor::new()
            .worker_threads(workers)
            .max_instances(cap)
            .extract_batch_adaptive(&refs, &AdaptiveOptions::default())
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.extractions.len(), four.extractions.len());
    for (a, b) in one.extractions.iter().zip(&four.extractions) {
        assert_eq!(format!("{}", a.report), format!("{}", b.report));
        assert_eq!(a.via, b.via);
        assert_eq!(a.stats.created, b.stats.created);
    }
    // Telemetry agrees too, up to wall-clock noise.
    let normalize = |batch: &metaform::AdaptiveBatch| {
        batch
            .failures
            .iter()
            .map(|r| r.normalized())
            .collect::<Vec<_>>()
    };
    assert_eq!(normalize(&one), normalize(&four));
    assert_eq!(one.stats.retried, four.stats.retried);
    assert_eq!(one.stats.recovered, four.stats.recovered);
}

#[test]
fn real_failure_records_round_trip_through_json() {
    let mut pages = dataset_pages(5);
    pages.push("<form>PANIC_MARKER <input type=text name=p></form>".into());
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let cap = created_unbounded(refs[1]) / 2 + 1;
    let batch = FormExtractor::new()
        .worker_threads(2)
        .max_instances(cap)
        .inject_panic_marker("PANIC_MARKER")
        .extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert!(
        !batch.failures.is_empty(),
        "the batch was built to produce telemetry"
    );

    let json = failures_to_json(&batch.failures);
    let parsed = failures_from_json(&json).expect("serializer output parses");
    assert_eq!(parsed, batch.failures, "lossless round trip");
}

#[test]
fn budget_presets_calibrated_from_a_run_keep_the_rerun_clean() {
    let pages = dataset_pages(10);
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();

    // Observe a clean run, derive a preset, and rerun under it: the
    // derived budgets carry enough headroom that the first pass
    // completes without a single retry.
    let (_, observed) = FormExtractor::new()
        .worker_threads(2)
        .extract_batch_stats(&refs);
    let preset = BudgetPreset::from_stats(&observed);
    assert!(preset.max_instances >= 1_000);

    let calibrated = preset.apply(FormExtractor::new().worker_threads(2));
    assert_eq!(
        calibrated.budgets(),
        (preset.max_instances, preset.deadline)
    );
    let batch = calibrated.extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert_eq!(batch.stats.retried, 0, "calibrated budgets need no retry");
    assert_eq!(batch.stats.failed(), 0);
    assert!(batch.failures.is_empty());

    // The static per-domain table applies the same way.
    let books = BudgetPreset::for_domain("Books").apply(FormExtractor::new());
    assert_eq!(books.budgets().0, 50_000);
}
