//! Regression gates on the headline evaluation (paper §6 / Figure 15):
//! the reproduction must preserve the paper's *shape* — high accuracy
//! across datasets, NewSource best, graceful degradation on Random,
//! and a decisive margin over the pairwise-proximity baseline.
//!
//! These run the full pipeline over hundreds of generated sources, so
//! they are `--release`-friendly but still complete in seconds.

use metaform::FormExtractor;
use metaform_datasets::{all_datasets, new_source, random};
use metaform_eval::{score_dataset, score_dataset_baseline};

#[test]
fn headline_accuracy_bands() {
    let extractor = FormExtractor::new();
    for ds in all_datasets() {
        let score = score_dataset(&extractor, &ds);
        let (p, r) = (score.overall_precision(), score.overall_recall());
        assert!(
            p >= 0.80 && r >= 0.80,
            "{}: Pa={p:.3} Ra={r:.3} fell out of the paper's band",
            ds.name
        );
        assert!(
            score.accuracy() >= 0.85,
            "{}: accuracy {:.3} below the paper's headline",
            ds.name,
            score.accuracy()
        );
    }
}

#[test]
fn new_source_is_the_best_dataset() {
    // Paper §6.2: "the result from the NewSource dataset has the best
    // performance" (simpler, more random collections).
    let extractor = FormExtractor::new();
    let scores: Vec<(String, f64)> = all_datasets()
        .iter()
        .map(|ds| {
            let s = score_dataset(&extractor, ds);
            (ds.name.clone(), s.accuracy())
        })
        .collect();
    let best = scores
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("four datasets");
    assert_eq!(best.0, "NewSource", "{scores:?}");
}

#[test]
fn random_degrades_but_stays_useful() {
    // Paper: "we do not observe significant performance drop when
    // extending to more heterogeneous sources".
    let extractor = FormExtractor::new();
    let ns = score_dataset(&extractor, &new_source());
    let rnd = score_dataset(&extractor, &random());
    assert!(rnd.accuracy() <= ns.accuracy());
    assert!(
        ns.accuracy() - rnd.accuracy() < 0.15,
        "drop too steep: {:.3} -> {:.3}",
        ns.accuracy(),
        rnd.accuracy()
    );
}

#[test]
fn parser_beats_proximity_baseline_everywhere() {
    let extractor = FormExtractor::new();
    for ds in all_datasets() {
        let parser = score_dataset(&extractor, &ds);
        let baseline = score_dataset_baseline(&ds);
        assert!(
            parser.overall_precision() > baseline.overall_precision() + 0.2,
            "{}: parser P {:.3} vs baseline {:.3}",
            ds.name,
            parser.overall_precision(),
            baseline.overall_precision()
        );
        assert!(
            parser.overall_recall() > baseline.overall_recall() + 0.1,
            "{}: parser R {:.3} vs baseline {:.3}",
            ds.name,
            parser.overall_recall(),
            baseline.overall_recall()
        );
    }
}

#[test]
fn majority_of_sources_parse_perfectly() {
    // Figure 15(a): 69% of Basic sources at precision 1.0; 72% at
    // recall 1.0. Require a majority in ours.
    let extractor = FormExtractor::new();
    let score = score_dataset(&extractor, &metaform_datasets::basic());
    let perfect_p = score
        .sources
        .iter()
        .filter(|s| s.precision() >= 1.0)
        .count();
    let perfect_r = score.sources.iter().filter(|s| s.recall() >= 1.0).count();
    let n = score.sources.len();
    assert!(perfect_p * 2 > n, "{perfect_p}/{n} sources at P=1.0");
    assert!(perfect_r * 2 > n, "{perfect_r}/{n} sources at R=1.0");
}
