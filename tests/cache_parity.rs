//! The cache-parity invariant: a report served from the parse cache —
//! exact-hit replay or delta re-parse seeded from a cached chart — is
//! **byte-identical** to a cold parse of the same page.
//!
//! Coverage:
//!
//! - every survey-corpus page, revisited unchanged (exact-hit tier);
//! - every deterministic revisit scenario (label edit, row insertion,
//!   bbox jitter) against a cache primed with the original (delta
//!   tier — or a miss when the edit moved too much, which must *also*
//!   be byte-identical);
//! - both fix-point schedules, since the seeded watermarks exist only
//!   under `SemiNaive` and parity must not depend on them;
//! - random multi-edit mutation scripts (property test), because the
//!   hand-picked scenarios are single edits.

use metaform_datasets::revisit::{bbox_jitter, insert_row, label_edit};
use metaform_datasets::{revisit_scenarios, survey_corpus};
use metaform_extractor::{FormExtractor, LruParseCache, Provenance};
use metaform_parser::{FixpointMode, ParserOptions};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [FixpointMode; 2] = [FixpointMode::SemiNaive, FixpointMode::Naive];

fn opts(mode: FixpointMode) -> ParserOptions {
    ParserOptions {
        fixpoint: mode,
        ..ParserOptions::default()
    }
}

fn cold_extractor(mode: FixpointMode) -> FormExtractor {
    FormExtractor::new().parser_options(opts(mode))
}

fn cached_extractor(mode: FixpointMode) -> FormExtractor {
    cold_extractor(mode).parse_cache(Arc::new(LruParseCache::new(256)))
}

/// Asserts the cached-path extraction matches the cold one byte for
/// byte — the report document *and* the typed report.
fn assert_parity(
    cold: &metaform_extractor::Extraction,
    warm: &metaform_extractor::Extraction,
    label: &str,
) {
    assert_eq!(
        cold.report.to_string(),
        warm.report.to_string(),
        "{label}: rendered reports diverged (warm via {:?})",
        warm.via
    );
    assert_eq!(cold.report, warm.report, "{label}: typed reports diverged");
}

#[test]
fn unchanged_revisits_replay_byte_identically() {
    for mode in MODES {
        let cold = cold_extractor(mode);
        let cached = cached_extractor(mode);
        for (name, html) in survey_corpus() {
            let label = format!("{name} [{mode:?}]");
            let first = cached.extract(&html);
            assert_parity(&cold.extract(&html), &first, &label);
            let revisit = cached.extract(&html);
            assert_eq!(
                revisit.via,
                Provenance::CacheHit,
                "{label}: unchanged revisit must hit"
            );
            assert_parity(&first, &revisit, &label);
        }
    }
}

#[test]
fn mutated_revisits_match_a_cold_parse() {
    let scenarios = revisit_scenarios();
    assert!(!scenarios.is_empty());
    for mode in MODES {
        let cold = cold_extractor(mode);
        let mut deltas = 0;
        for scenario in &scenarios {
            // A fresh cache per scenario pins the seed to this
            // scenario's original visit.
            let cached = cached_extractor(mode);
            cached.extract(&scenario.original);
            let warm = cached.extract(&scenario.mutated);
            assert_ne!(
                warm.via,
                Provenance::BaselineFallback,
                "{}: revisit degraded",
                scenario.name
            );
            if warm.via == Provenance::DeltaReparse {
                deltas += 1;
            }
            assert_parity(
                &cold.extract(&scenario.mutated),
                &warm,
                &format!("{} [{mode:?}]", scenario.name),
            );
        }
        assert!(
            deltas * 2 >= scenarios.len(),
            "[{mode:?}] expected most single-edit revisits to take the \
             delta tier, got {deltas}/{}",
            scenarios.len()
        );
    }
}

/// The seven column-realignment scenarios DESIGN §5.10 documents as
/// *soundly* cold: their edit realigns one layout column, so shifted
/// and unshifted tokens alternate and no contiguous affix — translated
/// or not — can clear the `shared * 2 >= len` seed threshold. Absolute
/// distances between the two token classes genuinely change, so the
/// proximity predicates must be re-evaluated; serving these from the
/// delta tier would be unsound, not an optimization.
const SOUNDLY_COLD: [&str; 7] = [
    "books-006/label-edit",
    "books-009/label-edit",
    "automobiles-005/label-edit",
    "automobiles-007/label-edit",
    "airfares-000/label-edit",
    "airfares-001/label-edit",
    "airfares-004/bbox-jitter",
];

#[test]
fn column_realignment_revisits_stay_soundly_cold() {
    // Regression pin for the list above: a future delta-tier change
    // that starts warming any of these must edit this list explicitly
    // (and argue why re-seeding across a column realignment is sound).
    let scenarios = revisit_scenarios();
    let mut seen = 0;
    for scenario in &scenarios {
        if !SOUNDLY_COLD.contains(&scenario.name.as_str()) {
            continue;
        }
        seen += 1;
        for mode in MODES {
            let cached = cached_extractor(mode);
            cached.extract(&scenario.original);
            let warm = cached.extract(&scenario.mutated);
            assert_eq!(
                warm.via,
                Provenance::Grammar,
                "{} [{mode:?}]: must re-parse cold, not {:?}",
                scenario.name,
                warm.via
            );
            assert_parity(
                &cold_extractor(mode).extract(&scenario.mutated),
                &warm,
                &format!("{} [{mode:?}]", scenario.name),
            );
        }
    }
    assert_eq!(
        seen,
        SOUNDLY_COLD.len(),
        "every pinned scenario still exists in the revisit set"
    );
}

proptest! {
    // Each case runs four parses per mode; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mutation scripts: compose 1–3 edits onto a corpus page,
    /// prime the cache with the original, and require the revisit to
    /// be byte-identical to a cold parse of the final form — whichever
    /// tier serves it.
    #[test]
    fn random_mutation_scripts_preserve_parity(
        page in 0usize..33,
        script in vec(0usize..3, 1..4),
    ) {
        let corpus = survey_corpus();
        let (name, original) = &corpus[page % corpus.len()];
        let mut mutated = original.clone();
        for step in &script {
            let next = match step {
                0 => label_edit(&mutated),
                1 => insert_row(&mutated),
                _ => bbox_jitter(&mutated),
            };
            if let Some(next) = next {
                mutated = next;
            }
        }
        for mode in MODES {
            let cached = cached_extractor(mode);
            cached.extract(original);
            let warm = cached.extract(&mutated);
            let cold = cold_extractor(mode).extract(&mutated);
            prop_assert_eq!(
                cold.report.to_string(),
                warm.report.to_string(),
                "{} script {:?} [{:?}] diverged via {:?}",
                name, script, mode, warm.via
            );
        }
    }
}
