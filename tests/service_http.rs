//! Differential test: the HTTP service against the in-process engine.
//!
//! `metaformd` is transport plus scheduling, never semantics — so for
//! the same pages and the same configuration, the reports a client
//! fetches over loopback must be **byte-identical** to calling
//! `extract_batch_adaptive` in process, and the failure telemetry must
//! match record-for-record (modulo the wall-clock `elapsed_us` field,
//! masked via `FailureRecord::normalized`). Three scenarios:
//!
//! 1. the survey corpus with a poison (panicking) page in the middle;
//! 2. a deterministic mid-batch cancellation (a marker page fires the
//!    job's cancel token between pages, single batch worker);
//! 3. `DELETE` on a still-queued job, equal to a run under a
//!    pre-fired token.

use metaform_datasets::survey_corpus;
use metaform_extractor::telemetry::failures_from_json;
use metaform_extractor::{
    stats_to_json, AdaptiveBatch, AdaptiveOptions, FormExtractor, LruParseCache, Provenance,
};
use metaform_parser::CancelToken;
use metaform_service::{push_json_str, status_for, JsonValue, Server, ServerHandle, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

// ------------------------------------------------------- HTTP client

/// One request over a fresh connection, opting out of keep-alive with
/// `Connection: close` so EOF ends the response. Returns
/// `(status, body)` with chunked framing decoded — large results
/// documents stream with `Transfer-Encoding: chunked`.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let head = match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nHost: metaformd\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: metaformd\r\nConnection: close\r\n\r\n"),
    };
    stream.write_all(head.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, raw_body) = response.split_once("\r\n\r\n").expect("has a head");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("has a status");
    let body = if head.contains("Transfer-Encoding: chunked") {
        decode_chunked(raw_body)
    } else {
        raw_body.to_string()
    };
    (status, body)
}

/// Reassembles a `Transfer-Encoding: chunked` body.
fn decode_chunked(mut rest: &str) -> String {
    let mut out = String::new();
    loop {
        let (size, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size, 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
}

/// Builds the `POST /v1/batches` body for `pages`.
fn submission_body(pages: &[String]) -> String {
    let mut body = String::from("{\"pages\": [");
    for (i, page) in pages.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        push_json_str(&mut body, page);
    }
    body.push_str("]}");
    body
}

/// Submits `pages`, returning the job id.
fn submit(addr: SocketAddr, pages: &[String]) -> u64 {
    let (status, body) = http(addr, "POST", "/v1/batches", Some(&submission_body(pages)));
    assert_eq!(status, 202, "{body}");
    JsonValue::parse(body.as_bytes())
        .expect("submission answer is JSON")
        .field("job")
        .and_then(JsonValue::as_num)
        .expect("has a job id")
}

/// Polls the job until it finishes; returns its final state string.
fn wait_finished(addr: SocketAddr, job: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/batches/{job}"), None);
        assert_eq!(status, 200, "{body}");
        let state = JsonValue::parse(body.as_bytes())
            .expect("status is JSON")
            .field("state")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("has a state");
        if state == "done" || state == "cancelled" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {job} stuck in {state}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// -------------------------------------------------- differential core

/// Asserts the wire results document equals the in-process batch:
/// byte-identical reports, matching provenance and per-page status,
/// record-identical (normalized) failures, and an equal stats rollup
/// (elapsed masked).
fn assert_differential(results_body: &str, expected: &AdaptiveBatch) {
    let root = JsonValue::parse(results_body.as_bytes()).expect("results are JSON");

    // Per-page reports: byte-identical Display output, provenance, and
    // the typed error → status mapping.
    let reports = root
        .field("reports")
        .and_then(JsonValue::as_arr)
        .map(<[JsonValue]>::to_vec)
        .expect("has reports");
    assert_eq!(reports.len(), expected.extractions.len());
    for (index, (report, extraction)) in reports.iter().zip(&expected.extractions).enumerate() {
        assert_eq!(
            report.field("page_index").and_then(JsonValue::as_num),
            Ok(index as u64)
        );
        let want_via = match extraction.via {
            Provenance::Grammar => "grammar",
            Provenance::PartialSalvage => "salvage",
            Provenance::BaselineFallback => "baseline",
            Provenance::CacheHit => "cache_hit",
            Provenance::DeltaReparse => "delta_reparse",
        };
        assert_eq!(
            report.field("via").and_then(|v| v.as_str()),
            Ok(want_via),
            "page {index}"
        );
        let want_status = expected
            .failures
            .iter()
            .find(|f| {
                f.page_index == index && f.outcome != metaform_extractor::FailureOutcome::Recovered
            })
            .map_or(200, |f| u64::from(status_for(f.error)));
        assert_eq!(
            report.field("http_status").and_then(JsonValue::as_num),
            Ok(want_status),
            "page {index}"
        );
        assert_eq!(
            report.field("report").and_then(|v| v.as_str()),
            Ok(extraction.report.to_string().as_str()),
            "page {index}: wire report must be byte-identical to in-process"
        );
    }

    // Failure records: the endpoint embeds `failures_to_json` output
    // verbatim as the last field, so slice it back out and parse it
    // with the telemetry codec itself.
    let failures_src = results_body
        .split_once("\"failures\": ")
        .map(|(_, rest)| &rest[..rest.len() - 1])
        .expect("failures is the last field");
    let failures = failures_from_json(failures_src).expect("failures parse");
    assert_eq!(failures.len(), expected.failures.len());
    for (got, want) in failures.iter().zip(&expected.failures) {
        assert_eq!(got.normalized(), want.normalized());
    }

    // Stats rollup: every counter equal; elapsed is wall-clock and
    // masked.
    let strip_elapsed = |v: &JsonValue| match v {
        JsonValue::Obj(fields) => fields
            .iter()
            .filter(|(name, _)| name != "elapsed_us")
            .cloned()
            .collect::<Vec<_>>(),
        _ => panic!("stats is not an object"),
    };
    let got_stats = root.field("stats").expect("has stats").clone();
    let want_stats =
        JsonValue::parse(stats_to_json(&expected.stats).as_bytes()).expect("stats serialize");
    assert_eq!(strip_elapsed(&got_stats), strip_elapsed(&want_stats));
}

fn fetch_results(addr: SocketAddr, job: u64) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/batches/{job}/results"), None);
    assert_eq!(status, 200, "{body}");
    body
}

fn spawn_server(config: ServiceConfig) -> ServerHandle {
    Server::bind(config)
        .expect("binds an ephemeral port")
        .spawn()
        .expect("spawns")
}

// ------------------------------------------------------------ scenarios

#[test]
fn wire_results_are_byte_identical_to_in_process_extraction() {
    // The survey corpus with a poison page in the middle: the page
    // panics the pipeline, degrades to baseline, and answers 500 —
    // while every other page is untouched.
    let mut pages: Vec<String> = survey_corpus().into_iter().map(|(_, html)| html).collect();
    pages.insert(
        5,
        "<form>POISON <input type=text name=p><input type=submit value=Go></form>".to_string(),
    );

    let handle = spawn_server(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(2),
        panic_marker: Some("POISON".to_string()),
        ..ServiceConfig::default()
    });
    let addr = handle.addr;

    // Liveness and observability sanity while we're here.
    assert_eq!(
        http(addr, "GET", "/healthz", None),
        (200, "ok\n".to_string())
    );
    let (status, metrics) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("metaformd_jobs_submitted_total 0"),
        "{metrics}"
    );
    assert_eq!(http(addr, "GET", "/nope", None).0, 404);
    assert_eq!(http(addr, "PUT", "/healthz", None).0, 405);
    assert_eq!(http(addr, "POST", "/v1/batches", Some("not json")).0, 400);

    let job = submit(addr, &pages);
    assert_eq!(wait_finished(addr, job), "done");
    let body = fetch_results(addr, job);

    // The same engine configuration, in process.
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let expected = FormExtractor::new()
        .worker_threads(2)
        .parse_cache(LruParseCache::shared())
        .inject_panic_marker("POISON")
        .extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert_eq!(expected.stats.panicked, 1, "the poison page panicked");
    assert_differential(&body, &expected);
    assert!(
        body.contains("\"http_status\": 500"),
        "poison page maps to 500"
    );

    let (_, metrics) = http(addr, "GET", "/metrics", None);
    assert!(
        metrics.contains("metaformd_jobs_completed_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("metaformd_pages_degraded_total 1"),
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn mid_batch_cancellation_matches_in_process_run() {
    // Deterministic mid-batch cancel: one batch worker processes pages
    // in order; the marker page fires the job's token before its own
    // parse, so page 0 completes, pages 1..N come back cancelled —
    // on the wire and in process alike.
    let pages = vec![
        "<form>Author <input type=text name=a><input type=submit value=Go></form>".to_string(),
        "<form>CANCEL_NOW <input type=text name=c><input type=submit value=Go></form>".to_string(),
        "<form>Title <input type=text name=t><input type=submit value=Go></form>".to_string(),
    ];

    let handle = spawn_server(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        cancel_marker: Some("CANCEL_NOW".to_string()),
        ..ServiceConfig::default()
    });
    let job = submit(handle.addr, &pages);
    assert_eq!(wait_finished(handle.addr, job), "cancelled");
    let body = fetch_results(handle.addr, job);

    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let expected = FormExtractor::new()
        .worker_threads(1)
        .parse_cache(LruParseCache::shared())
        .cancel_token(CancelToken::new())
        .inject_cancel_marker("CANCEL_NOW")
        .extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert_eq!(expected.stats.cancelled, 2, "pages 1..3 were cancelled");
    assert_eq!(expected.extractions[0].via, Provenance::Grammar);
    assert_differential(&body, &expected);
    assert!(
        body.contains("\"http_status\": 499"),
        "cancelled pages map to 499"
    );
    handle.shutdown();
}

#[test]
fn deleting_a_queued_job_equals_a_pre_cancelled_run() {
    // One pool worker, kept busy by a heavy front job: a second job
    // submitted behind it is still queued when we DELETE it, so its
    // token is fired before any of its pages run — the run then equals
    // an in-process run under a pre-fired token.
    let corpus: Vec<String> = survey_corpus().into_iter().map(|(_, html)| html).collect();
    let mut heavy = Vec::new();
    for _ in 0..6 {
        heavy.extend(corpus.iter().cloned());
    }
    let victim: Vec<String> = corpus[..5].to_vec();

    let handle = spawn_server(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        ..ServiceConfig::default()
    });
    let addr = handle.addr;

    let front = submit(addr, &heavy);
    let job = submit(addr, &victim);
    let (status, body) = http(addr, "DELETE", &format!("/v1/batches/{job}"), None);
    assert_eq!(status, 202, "{body}");
    assert!(
        body.contains("\"state\": \"queued\""),
        "the victim must still be queued when cancelled (front job too fast?): {body}"
    );

    assert_eq!(wait_finished(addr, job), "cancelled");
    let body = fetch_results(addr, job);

    let refs: Vec<&str> = victim.iter().map(String::as_str).collect();
    let token = CancelToken::new();
    token.cancel();
    let expected = FormExtractor::new()
        .worker_threads(1)
        .cancel_token(token)
        .extract_batch_adaptive(&refs, &AdaptiveOptions::default());
    assert_eq!(
        expected.stats.cancelled,
        victim.len(),
        "every page cancelled"
    );
    assert_differential(&body, &expected);

    // The heavy job still completes normally behind it.
    assert_eq!(wait_finished(addr, front), "done");
    handle.shutdown();
}
