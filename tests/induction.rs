//! Tier-1 pins for the grammar induction loop (Collect → Infer →
//! Validate, DESIGN.md §12): after a bounded number of rounds over the
//! withheld-pattern split, Random-domain accuracy strictly improves
//! toward Basic; the golden survey corpus stays byte-identical; and
//! the whole trajectory is deterministic across worker counts and both
//! `FixpointMode`s.
//!
//! The per-round trajectory is additionally pinned byte-for-byte in
//! `tests/golden/induction_rounds.txt`. To regenerate after an
//! intentional change:
//!
//! ```text
//! METAFORM_BLESS=1 cargo test --test induction
//! ```
//!
//! then review the diff like any other code change.

use metaform_datasets::{basic, survey_corpus};
use metaform_eval::{
    frozen_corpus, run_induction, score_dataset, InductionConfig, InductionGate, InductionOutcome,
    RejectReason,
};
use metaform_extractor::FormExtractor;
use metaform_grammar::{
    global_compiled, synthesize, Cluster, CompiledGrammar, Constraint, Constructor, Pred,
    Production, SymbolId,
};
use metaform_parser::{FixpointMode, ParserOptions};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/induction_rounds.txt")
}

/// One full default-config induction run, shared by every test in this
/// file (the loop is deterministic, so sharing changes nothing but
/// wall-clock).
fn default_outcome() -> &'static InductionOutcome {
    static OUTCOME: OnceLock<InductionOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| run_induction(&InductionConfig::default()))
}

fn extractor_for(
    grammar: Arc<CompiledGrammar>,
    workers: Option<usize>,
    fixpoint: FixpointMode,
) -> FormExtractor {
    let mut ex = FormExtractor::with_compiled(grammar).parser_options(ParserOptions {
        fixpoint,
        ..ParserOptions::default()
    });
    if let Some(w) = workers {
        ex = ex.worker_threads(w);
    }
    ex
}

/// Renders a trajectory the way the golden file stores it: the
/// baseline line, then one line per round with its acceptances
/// indented beneath it. Accuracies at six decimals — the metrics are
/// exact rational counts, so this is stable, not flaky float prose.
fn render_trajectory(outcome: &InductionOutcome) -> String {
    let mut out = format!(
        "baseline holdout={:.6} random={:.6}\n",
        outcome.baseline_holdout, outcome.baseline_random
    );
    for round in &outcome.rounds {
        out.push_str(&format!(
            "round {}: mined={} proposed={} accepted={} holdout={:.6} random={:.6}\n",
            round.round,
            round.mined,
            round.proposed.len(),
            round.accepted.len(),
            round.holdout_accuracy,
            round.random_accuracy,
        ));
        for cand in &round.accepted {
            out.push_str(&format!(
                "  + {} [{}] support={}\n",
                cand.name, cand.signature, cand.support
            ));
        }
    }
    out
}

#[test]
fn random_accuracy_strictly_improves_toward_basic() {
    let outcome = default_outcome();
    assert!(
        !outcome.accepted.is_empty(),
        "the withheld-pattern split supports at least one accepted production"
    );
    assert!(
        outcome.rounds.len() <= InductionConfig::default().rounds,
        "the loop stops at its round bound"
    );
    assert!(
        outcome.final_holdout() > outcome.baseline_holdout,
        "held-out accuracy strictly improves: {} -> {}",
        outcome.baseline_holdout,
        outcome.final_holdout()
    );
    assert!(
        outcome.final_random() > outcome.baseline_random,
        "Random-domain accuracy strictly improves: {} -> {}",
        outcome.baseline_random,
        outcome.final_random()
    );

    // Convergence toward Basic, the ROADMAP metric: the Basic↔Random
    // accuracy gap must shrink, and Basic itself must not pay for it.
    let basic_ds = basic();
    let fixpoint = FixpointMode::default();
    let base = extractor_for(global_compiled(), None, fixpoint);
    let extended = extractor_for(outcome.grammar.clone(), None, fixpoint);
    let basic_before = score_dataset(&base, &basic_ds).accuracy();
    let basic_after = score_dataset(&extended, &basic_ds).accuracy();
    let gap_before = basic_before - outcome.baseline_random;
    let gap_after = basic_after - outcome.final_random();
    assert!(
        gap_after < gap_before,
        "Basic↔Random gap shrinks: {gap_before:.6} -> {gap_after:.6}"
    );
    assert!(
        basic_after >= basic_before,
        "induction never trades Basic accuracy away: {basic_before:.6} -> {basic_after:.6}"
    );
}

#[test]
fn frozen_survey_pages_are_byte_identical_under_the_extended_grammar() {
    // The gate's zero-regression clause, verified end-to-end: every
    // frozen page (hand fixtures + fully in-grammar NewSource pages)
    // renders the same bytes under the converged grammar as under the
    // hand grammar. Withheld-pattern pages are exempt — changing those
    // is the point.
    let outcome = default_outcome();
    let fixpoint = FixpointMode::default();
    let base = extractor_for(global_compiled(), None, fixpoint);
    let extended = extractor_for(outcome.grammar.clone(), None, fixpoint);
    for (name, html) in frozen_corpus() {
        assert_eq!(
            base.extract(&html).report.to_string(),
            extended.extract(&html).report.to_string(),
            "frozen page {name} must not change"
        );
    }
}

#[test]
fn induction_leaves_the_global_grammar_untouched() {
    // Induction returns a *new* compiled artifact; the process-global
    // grammar every other extractor uses is never mutated. Pinned by
    // rendering the survey corpus under `FormExtractor::new()` after a
    // full induction run and comparing against the blessed golden
    // file byte-for-byte.
    let _ = default_outcome();
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/survey_reports.txt");
    let golden = std::fs::read_to_string(&golden).expect("blessed survey golden exists");
    let corpus = survey_corpus();
    let pages: Vec<&str> = corpus.iter().map(|(_, html)| html.as_str()).collect();
    let extractions = FormExtractor::new().extract_batch(&pages);
    let mut rendered = String::new();
    for ((name, _), extraction) in corpus.iter().zip(&extractions) {
        rendered.push_str("== ");
        rendered.push_str(name);
        rendered.push_str(" ==\n");
        match extraction.via {
            metaform_extractor::Provenance::BaselineFallback => {
                rendered.push_str("(via proximity-baseline fallback)\n")
            }
            metaform_extractor::Provenance::PartialSalvage => {
                rendered.push_str("(via salvaged partial parse)\n")
            }
            _ => {}
        }
        rendered.push_str(&extraction.report.to_string());
        rendered.push('\n');
    }
    assert_eq!(
        rendered, golden,
        "survey corpus under the base grammar drifted after induction ran"
    );
}

#[test]
fn trajectory_is_identical_across_workers_and_fixpoint_modes() {
    let want = render_trajectory(default_outcome());
    for (workers, fixpoint) in [
        (Some(1), FixpointMode::SemiNaive),
        (Some(2), FixpointMode::SemiNaive),
        (Some(1), FixpointMode::Naive),
        (Some(2), FixpointMode::Naive),
    ] {
        let outcome = run_induction(&InductionConfig {
            workers,
            fixpoint,
            ..InductionConfig::default()
        });
        assert_eq!(
            render_trajectory(&outcome),
            want,
            "trajectory diverged at workers={workers:?} fixpoint={fixpoint:?}"
        );
    }
}

#[test]
fn trajectory_matches_the_golden_file() {
    let rendered = render_trajectory(default_outcome());
    let path = golden_path();
    if std::env::var_os("METAFORM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has a parent")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write golden file");
        println!("blessed {} ({} bytes)", path.display(), rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n\
             (first run? bless it: METAFORM_BLESS=1 cargo test --test induction)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "induction trajectory drifted from the golden file\n\
         to accept the change: METAFORM_BLESS=1 cargo test --test induction"
    );
}

#[test]
fn rejected_candidate_leaves_survey_corpus_byte_identical() {
    // A candidate the gate deterministically refuses (the worded-range
    // shape cannot fire on holdout pages — the tokenizer merges label
    // and connector text — so it never improves accuracy): rejection
    // must leave the grammar the caller keeps producing the same bytes
    // on the whole survey corpus.
    let base = global_compiled();
    let fixpoint = FixpointMode::default();
    let before = render_survey(&extractor_for(base.clone(), Some(1), fixpoint));
    let cluster = Cluster {
        descriptors: ["attr", "conn", "tb", "conn", "tb"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        pages: ["a", "b"].iter().map(|s| s.to_string()).collect(),
        occurrences: 2,
        max_gaps: vec![8, 8, 8, 8],
    };
    let cand = synthesize("attr conn tb conn tb", &cluster, 2).expect("known shape");
    let mut gate = InductionGate::new(&base, Some(1), fixpoint);
    let verdict = gate.admit(&cand, &base);
    assert_eq!(verdict.err(), Some(RejectReason::NoImprovement));
    let after = render_survey(&extractor_for(base, Some(1), fixpoint));
    assert_eq!(before, after, "rejection must not perturb parse output");
}

fn render_survey(extractor: &FormExtractor) -> String {
    let mut out = String::new();
    for (name, html) in survey_corpus() {
        out.push_str(&name);
        out.push('\n');
        out.push_str(&extractor.extract(&html).report.to_string());
        out.push('\n');
    }
    out
}

/// The shared gate/baseline for the property tests below — built once,
/// cloned per case (cloning copies the frozen reports, not the work of
/// rendering them).
fn master_gate() -> &'static Mutex<InductionGate> {
    static GATE: OnceLock<Mutex<InductionGate>> = OnceLock::new();
    GATE.get_or_init(|| {
        Mutex::new(InductionGate::new(
            &global_compiled(),
            Some(1),
            FixpointMode::default(),
        ))
    })
}

fn survey_baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        render_survey(&extractor_for(
            global_compiled(),
            Some(1),
            FixpointMode::default(),
        ))
    })
}

/// The descriptor sequences `synthesize` knows, by strategy index.
const SHAPES: [&[&str]; 4] = [
    &["tb", "attr"],
    &["sel", "attr"],
    &["attr", "tb", "sep", "tb", "sep", "tb"],
    &["attr", "conn", "tb", "conn", "tb"],
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Induction safety, clause 1: a grammar description corrupted with
    // an arbitrary machine-assembled production — out-of-range symbol
    // ids, bogus constraint slots, bogus constructor indices, empty
    // component lists — flows through `Grammar::compile` (the single
    // fallible entry point) as a clean `Err`, never a panic.
    #[test]
    fn compile_never_panics_on_corrupted_productions(
        head in 0u32..200,
        comps in vec(0u32..200, 0..7),
        slots in (0usize..8, 0usize..8),
        gap in -50i32..500,
        ctor in 0usize..3,
    ) {
        let (slot_a, slot_b) = slots;
        let constructor = match ctor {
            0 => Constructor::Group,
            1 => Constructor::Inherit(slot_a),
            _ => Constructor::MakeAttr(slot_b),
        };
        let production = Production {
            name: "PropCorrupt".to_string(),
            head: SymbolId(head),
            components: comps.into_iter().map(SymbolId).collect(),
            constraint: Constraint::And(vec![
                Constraint::LeftWithin(slot_a, slot_b, gap),
                Constraint::Is(slot_b, Pred::LowercaseText),
            ]),
            constructor,
        };
        let description = global_compiled()
            .grammar()
            .clone()
            .with_additions(vec![production], Vec::new());
        // Ok or Err are both acceptable; reaching here without a panic
        // is the property.
        let _ = description.compile();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Induction safety, end to end: an arbitrary synthesized candidate
    // compiles or rejects without panicking, and whenever the gate
    // refuses it, the grammar the caller kept still renders the survey
    // corpus byte-identically.
    #[test]
    fn arbitrary_candidates_never_panic_and_rejections_change_nothing(
        shape in 0usize..4,
        gaps in vec(-30i32..300, 0..6),
        extra_pages in 0usize..4,
    ) {
        let mut pages: BTreeSet<String> = BTreeSet::new();
        for i in 0..(2 + extra_pages) {
            pages.insert(format!("prop-page-{i}"));
        }
        let descriptors: Vec<String> =
            SHAPES[shape].iter().map(|s| s.to_string()).collect();
        let signature = descriptors.join(" ");
        let cluster = Cluster {
            occurrences: pages.len(),
            max_gaps: gaps,
            descriptors,
            pages,
        };
        let Some(cand) = synthesize(&signature, &cluster, 2) else {
            return Err(TestCaseError::fail("known shapes always synthesize"));
        };
        let base = global_compiled();
        // Never panics, whatever the generalized gaps turned into.
        let _ = cand.apply(base.grammar()).compile();
        let mut gate = master_gate().lock().expect("gate lock").clone();
        if gate.admit(&cand, &base).is_err() {
            let after = render_survey(&extractor_for(
                base,
                Some(1),
                FixpointMode::default(),
            ));
            prop_assert_eq!(survey_baseline(), &after);
        }
    }
}
