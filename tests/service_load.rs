//! Soak and saturation tests for `metaformd` under concurrent
//! keep-alive load: many clients hammering one server, queue
//! saturation answered with 503 backpressure (never a hang or a
//! dropped accepted job), and a full drain on shutdown. Sized to run
//! in seconds under `cargo test` — the heavier open-ended version is
//! the `bench_service` binary.

use metaform_service::{JsonValue, Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One keep-alive request on an open connection; `Content-Length`
/// framing only (these tests never fetch large documents).
fn framed(stream: &mut TcpStream, raw: &str) -> (u16, String) {
    stream.write_all(raw.as_bytes()).expect("writes");
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        let n = stream.read(&mut chunk).expect("reads");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("has a status");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("has a Content-Length");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < length {
        let n = stream.read(&mut chunk).expect("reads the body");
        assert!(n > 0, "server closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(length);
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn submit_body(pages: usize, tag: &str) -> String {
    let mut body = String::from("{\"pages\": [");
    for page in 0..pages {
        if page > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!(
            "\"<form>Field {tag}-{page} <input type=text name=f{page}>\
             <input type=submit value=Go></form>\""
        ));
    }
    body.push_str("]}");
    body
}

fn post_batch(stream: &mut TcpStream, body: &str) -> (u16, String) {
    framed(
        stream,
        &format!(
            "POST /v1/batches HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn soak_concurrent_keep_alive_clients_converge_clean() {
    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 2,
        batch_workers: Some(1),
        queue_capacity: 1024,
        ..ServiceConfig::default()
    })
    .expect("binds")
    .spawn()
    .expect("spawns");
    let addr = handle.addr;

    const CLIENTS: usize = 6;
    const JOBS_EACH: usize = 4;
    let workers: Vec<std::thread::JoinHandle<Vec<u64>>> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connects");
                let mut ids = Vec::new();
                for round in 0..JOBS_EACH {
                    // Interleave job submissions with cheap requests on
                    // the same connection, like a crawler would.
                    let (status, _) = framed(&mut stream, "GET /healthz HTTP/1.1\r\n\r\n");
                    assert_eq!(status, 200);
                    let (status, answer) =
                        post_batch(&mut stream, &submit_body(3, &format!("{client}-{round}")));
                    assert_eq!(status, 202, "{answer}");
                    ids.push(
                        JsonValue::parse(answer.as_bytes())
                            .expect("JSON")
                            .field("job")
                            .and_then(JsonValue::as_num)
                            .expect("job id"),
                    );
                    let (status, _) = framed(&mut stream, "GET /v1/jobs HTTP/1.1\r\n\r\n");
                    assert_eq!(status, 200);
                }
                // Poll own jobs to done over the same connection.
                for id in &ids {
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        let (status, answer) = framed(
                            &mut stream,
                            &format!("GET /v1/batches/{id} HTTP/1.1\r\n\r\n"),
                        );
                        assert_eq!(status, 200, "{answer}");
                        if answer.contains("\"state\": \"done\"") {
                            break;
                        }
                        assert!(Instant::now() < deadline, "job {id} stuck: {answer}");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                ids
            })
        })
        .collect();
    let mut all_ids: Vec<u64> = Vec::new();
    for worker in workers {
        all_ids.extend(worker.join().expect("client joins"));
    }

    // Every job got a distinct id and every one completed.
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), CLIENTS * JOBS_EACH, "ids must be distinct");

    let mut stream = TcpStream::connect(addr).expect("connects");
    let (status, metrics) = framed(&mut stream, "GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let value_of = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
    };
    assert_eq!(
        value_of("metaformd_jobs_submitted_total"),
        all_ids.len() as u64
    );
    assert_eq!(
        value_of("metaformd_jobs_completed_total"),
        all_ids.len() as u64
    );
    assert_eq!(value_of("metaformd_jobs_rejected_total"), 0);
    assert_eq!(value_of("metaformd_queue_depth"), 0, "queue fully drained");
    assert_eq!(
        value_of("metaformd_pages_submitted_total"),
        (all_ids.len() * 3) as u64
    );
    assert_eq!(value_of("metaformd_server_errors_total"), 0);
    // One connection per client plus this probe.
    assert_eq!(
        value_of("metaformd_connections_total"),
        (CLIENTS + 1) as u64
    );
    handle.shutdown();
}

#[test]
fn saturated_queue_backpressures_with_503_and_recovers() {
    // A tiny queue and one worker: concurrent submitters must overrun
    // it, and every overrun answers 503 without wedging the service or
    // losing an *accepted* job.
    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        pool_workers: 1,
        batch_workers: Some(1),
        queue_capacity: 2,
        ..ServiceConfig::default()
    })
    .expect("binds")
    .spawn()
    .expect("spawns");
    let addr = handle.addr;

    const CLIENTS: usize = 4;
    const ATTEMPTS_EACH: usize = 10;
    let workers: Vec<std::thread::JoinHandle<(usize, usize, Vec<u64>)>> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connects");
                let (mut accepted, mut rejected) = (0usize, 0usize);
                let mut ids = Vec::new();
                for round in 0..ATTEMPTS_EACH {
                    let (status, answer) =
                        post_batch(&mut stream, &submit_body(6, &format!("{client}-{round}")));
                    match status {
                        202 => {
                            accepted += 1;
                            ids.push(
                                JsonValue::parse(answer.as_bytes())
                                    .expect("JSON")
                                    .field("job")
                                    .and_then(JsonValue::as_num)
                                    .expect("job id"),
                            );
                        }
                        503 => rejected += 1,
                        other => panic!("unexpected status {other}: {answer}"),
                    }
                }
                (accepted, rejected, ids)
            })
        })
        .collect();
    let mut accepted = 0;
    let mut rejected = 0;
    let mut ids = Vec::new();
    for worker in workers {
        let (a, r, i) = worker.join().expect("joins");
        accepted += a;
        rejected += r;
        ids.extend(i);
    }
    assert_eq!(accepted + rejected, CLIENTS * ATTEMPTS_EACH);
    assert!(
        rejected > 0,
        "a 2-deep queue under {CLIENTS} concurrent submitters must overrun"
    );

    // Every accepted job still runs to completion.
    let mut stream = TcpStream::connect(addr).expect("connects");
    for id in &ids {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, answer) = framed(
                &mut stream,
                &format!("GET /v1/batches/{id} HTTP/1.1\r\n\r\n"),
            );
            assert_eq!(status, 200, "{answer}");
            if answer.contains("\"state\": \"done\"") {
                break;
            }
            assert!(Instant::now() < deadline, "job {id} stuck: {answer}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // And the service recovered: a fresh submission is accepted again.
    let (status, _) = post_batch(&mut stream, &submit_body(1, "after"));
    assert_eq!(status, 202, "queue must accept again after the drain");

    let (_, metrics) = framed(&mut stream, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(
        metrics.contains(&format!("metaformd_jobs_rejected_total {rejected}\n")),
        "{metrics}"
    );
    // A rejected submission must not leave a phantom job behind: ids
    // stay dense over accepted jobs only... the store forgot the rest.
    let (status, listing) = framed(&mut stream, "GET /v1/jobs HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let count = JsonValue::parse(listing.as_bytes())
        .expect("JSON")
        .field("count")
        .and_then(JsonValue::as_num)
        .expect("count");
    assert_eq!(count, accepted as u64 + 1, "{listing}");
    handle.shutdown();
}
