//! # metaform
//!
//! A from-scratch Rust reproduction of *"Understanding Web Query
//! Interfaces: Best-Effort Parsing with Hidden Syntax"* (Zhen Zhang,
//! Bin He, Kevin Chen-Chuan Chang — SIGMOD 2004).
//!
//! The deep Web hides its data behind HTML query forms. This library
//! extracts a form's *semantic model* — its query conditions
//! `[attribute; operators; domain]` — by treating query interfaces as
//! a **visual language** with a hypothesized *hidden syntax*: a
//! **2P grammar** (productions + preferences) drives a **best-effort
//! parser** (just-in-time pruning, rollback, partial-tree
//! maximization), whose maximal parses a **merger** unions into the
//! final capability description.
//!
//! ## Quick start
//!
//! ```
//! use metaform::FormExtractor;
//!
//! let html = r#"
//!   <form>
//!     Author <input type="text" name="author"><br>
//!     Price <input type="text" name="lo" size="6"> to
//!           <input type="text" name="hi" size="6"><br>
//!     <input type="submit" value="Search">
//!   </form>"#;
//! let extraction = FormExtractor::new().extract(html);
//! for condition in &extraction.report.conditions {
//!     println!("{condition}");
//! }
//! assert_eq!(extraction.report.conditions.len(), 2);
//! ```
//!
//! ## Compile once, parse many
//!
//! Grammar validation and scheduling happen once, in
//! [`Grammar::compile`] (the global grammar is compiled once per
//! process, shared via [`global_compiled`]); parsing then runs through
//! reusable [`ParseSession`]s that recycle their chart and scratch
//! buffers. [`FormExtractor`] rides on this split: it is `Send + Sync`,
//! clones share the compiled grammar, and
//! [`FormExtractor::extract_batch`] extracts a whole corpus across
//! worker threads with deterministic, input-ordered results.
//!
//! ## Fault isolation
//!
//! Every page runs behind its own panic boundary and per-page budgets
//! (instance cap, wall-clock deadline). Failures surface as a typed
//! [`ExtractError`] on the fallible APIs
//! ([`FormExtractor::try_extract`],
//! `FormExtractor::extract_batch_results`) or degrade to the proximity
//! baseline (marked [`Provenance::BaselineFallback`]) on the
//! infallible ones — one poison page never kills a batch.
//!
//! Corpus runs go further: `FormExtractor::extract_batch_adaptive`
//! retries budget-limited pages under escalating budgets
//! ([`AdaptiveOptions`]), a [`CancelToken`] aborts a whole batch
//! mid-flight while keeping completed pages, and every page that
//! failed at least once is narrated as a JSON/CSV-serializable
//! [`FailureRecord`]. [`BudgetPreset`] seeds the first-pass budgets
//! per survey domain.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | geometry, tokens, conditions, reports |
//! | [`html`] | from-scratch HTML lexer + DOM |
//! | [`layout`] | deterministic visual layout engine |
//! | [`tokenizer`] | laid-out DOM → visual tokens |
//! | [`grammar`] | the 2P grammar mechanism + the derived global grammar |
//! | [`parser`] | the best-effort parser + merger |
//! | [`extractor`] | the end-to-end pipeline + proximity baseline |
//! | [`datasets`] | synthetic evaluation datasets with ground truth |
//! | [`eval`] | metrics and experiment harness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use metaform_core as core;
pub use metaform_datasets as datasets;
pub use metaform_eval as eval;
pub use metaform_extractor as extractor;
pub use metaform_grammar as grammar;
pub use metaform_html as html;
pub use metaform_layout as layout;
pub use metaform_parser as parser;
pub use metaform_tokenizer as tokenizer;

pub use metaform_core::{Condition, DomainKind, DomainSpec, ExtractionReport, Token, TokenKind};
pub use metaform_datasets::BudgetPreset;
pub use metaform_extractor::{
    AdaptiveBatch, AdaptiveOptions, BatchStats, ExtractError, Extraction, FailureRecord,
    FormExtractor, Provenance,
};
pub use metaform_grammar::{
    global_compiled, global_grammar, paper_example_grammar, CompiledGrammar, Grammar,
    GrammarBuilder, GrammarError,
};
pub use metaform_parser::{
    parse, parse_with, BudgetOutcome, CancelToken, ParseSession, ParserOptions,
};
