//! `metaformd` — the work-queue extraction service.
//!
//! ```text
//! metaformd                          serve on 127.0.0.1:8077
//! metaformd --addr <host:port>       listen address (port 0 = ephemeral)
//! metaformd --pool-workers <n>       concurrent batch jobs (default 2)
//! metaformd --batch-workers <n>      worker threads per job (default: machine)
//! metaformd --queue-capacity <n>     queued jobs before 503 (default 64)
//! metaformd --max-retries <n>        adaptive retry rounds (default 2)
//! metaformd --max-instances <n>      parser instance cap per page
//! metaformd --page-deadline-ms <n>   wall-clock parse budget per page
//! metaformd --max-body-bytes <n>     request body cap (default 16 MiB)
//! metaformd --shards <n>             job store/queue shards (default 8)
//! metaformd --read-timeout-ms <n>    socket read timeout (default 10000)
//! metaformd --uds <path>             also serve line-JSON on a Unix socket
//! metaformd --refit-every <n>        auto-refit budgets every n jobs
//! metaformd --induce-every <n>       mine/validate/hot-add grammar productions every n jobs
//! metaformd --fault-plan <spec>      inject faults, e.g. panic@3,stall@5
//! ```
//!
//! Compiles the grammar once at startup, prints the bound address
//! (`metaformd listening on <addr>`), then serves until
//! `POST /v1/shutdown`. See README.md § "Running as a service" for the
//! endpoint protocol and curl examples.

use metaform_extractor::FaultPlan;
use metaform_service::{Server, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: metaformd [--addr <host:port>] [--pool-workers <n>] [--batch-workers <n>]\n\
         \x20                [--queue-capacity <n>] [--max-retries <n>] [--max-instances <n>]\n\
         \x20                [--page-deadline-ms <n>] [--max-body-bytes <n>] [--shards <n>]\n\
         \x20                [--read-timeout-ms <n>] [--uds <path>] [--refit-every <n>]\n\
         \x20                [--induce-every <n>] [--fault-plan <kind@page,...>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = args.next() else {
                    eprintln!("--addr needs a host:port");
                    return usage();
                };
                config.addr = addr;
            }
            "--pool-workers" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--pool-workers needs a number");
                    return usage();
                };
                config.pool_workers = n.max(1);
            }
            "--batch-workers" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--batch-workers needs a number");
                    return usage();
                };
                config.batch_workers = Some(n.max(1));
            }
            "--queue-capacity" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--queue-capacity needs a number");
                    return usage();
                };
                config.queue_capacity = n;
            }
            "--max-retries" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-retries needs a number");
                    return usage();
                };
                config.max_retries = n;
            }
            "--max-instances" => {
                let Some(cap) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-instances needs a number");
                    return usage();
                };
                config.max_instances = Some(cap);
            }
            "--page-deadline-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--page-deadline-ms needs a number of milliseconds");
                    return usage();
                };
                config.page_deadline = Some(Duration::from_millis(ms));
            }
            "--max-body-bytes" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-body-bytes needs a number");
                    return usage();
                };
                config.max_body_bytes = n;
            }
            "--shards" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--shards needs a number");
                    return usage();
                };
                config.shards = n.max(1);
            }
            "--read-timeout-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--read-timeout-ms needs a number of milliseconds");
                    return usage();
                };
                config.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--uds" => {
                let Some(path) = args.next() else {
                    eprintln!("--uds needs a socket path");
                    return usage();
                };
                config.uds_path = Some(path);
            }
            "--refit-every" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--refit-every needs a number of jobs");
                    return usage();
                };
                config.refit_every = Some(n.max(1));
            }
            "--induce-every" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--induce-every needs a number of jobs");
                    return usage();
                };
                config.induce_every = Some(n.max(1));
            }
            "--fault-plan" => {
                let Some(spec) = args.next() else {
                    eprintln!("--fault-plan needs a spec like panic@3,stall@5,cancel@7");
                    return usage();
                };
                match FaultPlan::parse(&spec) {
                    Ok(plan) => config.fault_plan = Some(plan),
                    Err(why) => {
                        eprintln!("bad --fault-plan: {why}");
                        return usage();
                    }
                }
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
    }

    // Binding also compiles the grammar: by the time the address is
    // announced, the first request pays no startup cost.
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("metaformd listening on {addr}"),
        Err(e) => {
            eprintln!("error: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.run();
    ExitCode::SUCCESS
}
