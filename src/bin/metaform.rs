//! `metaform` — command-line form extractor.
//!
//! ```text
//! metaform <page.html>          extract and print the semantic model
//! metaform - < page.html       read the page from stdin
//! metaform --tokens <page>     also print the visual tokens
//! metaform --ascii <page>      draw the rendered layout as ASCII art
//! metaform --trees <page>      also print the maximal parse trees
//! metaform --grammar           print the derived global grammar
//! metaform --export-grammar    print the grammar in its textual (.2pg) form
//! metaform --grammar-file <f>  parse with a grammar loaded from a .2pg file
//! metaform --schedule-dot      print the 2P schedule graph as DOT
//! ```

use metaform::{global_compiled, global_grammar, FormExtractor};
use metaform_grammar::schedule_to_dot;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    show_tokens: bool,
    show_trees: bool,
    show_ascii: bool,
    grammar_file: Option<String>,
    input: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: metaform [--tokens] [--trees] [--ascii] [--grammar-file <f.2pg>] <page.html | ->\n\
         \x20      metaform --grammar | --export-grammar | --schedule-dot"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        show_tokens: false,
        show_trees: false,
        show_ascii: false,
        grammar_file: None,
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--export-grammar" => {
                print!("{}", metaform_grammar::to_dsl(&global_grammar()));
                return ExitCode::SUCCESS;
            }
            "--grammar-file" => {
                let Some(path) = args.next() else {
                    eprintln!("--grammar-file needs a path");
                    return usage();
                };
                opts.grammar_file = Some(path);
            }
            "--grammar" => {
                print!("{}", global_grammar().describe());
                return ExitCode::SUCCESS;
            }
            "--schedule-dot" => {
                // The compiled artifact already carries the schedule.
                let compiled = global_compiled();
                print!(
                    "{}",
                    schedule_to_dot(compiled.grammar(), compiled.schedule())
                );
                return ExitCode::SUCCESS;
            }
            "--tokens" => opts.show_tokens = true,
            "--ascii" => opts.show_ascii = true,
            "--trees" => opts.show_trees = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option: {other}");
                return usage();
            }
            path => opts.input = Some(path.to_string()),
        }
    }
    let Some(path) = opts.input else {
        return usage();
    };

    let html = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: stdin is not valid UTF-8");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let extractor = match &opts.grammar_file {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let grammar = match metaform_grammar::from_dsl(&src) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Compilation is the fallible step: a grammar whose
            // schedule graph cycles is reported as a diagnostic, not
            // a panic.
            match FormExtractor::try_with_grammar(grammar) {
                Ok(extractor) => extractor,
                Err(e) => {
                    eprintln!("error: {path}: grammar does not compile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FormExtractor::new(),
    };
    if opts.show_ascii {
        let doc = metaform_html::parse(&html);
        let lay = metaform_layout::layout(&doc);
        println!("{}", metaform_layout::ascii_render(&doc, &lay));
    }
    let extraction = extractor.extract(&html);
    if opts.show_tokens {
        println!("tokens ({}):", extraction.tokens.len());
        for t in &extraction.tokens {
            let extra = if t.kind == metaform::TokenKind::Text {
                format!(" {:?}", t.sval)
            } else if !t.name.is_empty() {
                format!(" name={}", t.name)
            } else {
                String::new()
            };
            println!("  {:?} {} {:?}{extra}", t.id, t.kind, t.pos);
        }
        println!();
    }
    if opts.show_trees {
        println!("parse: {}", extraction.stats.summary());
        // Re-parse through the extractor's own compiled grammar — no
        // rebuild, no re-validation.
        let result = extractor.session().parse(&extraction.tokens);
        for (i, &tree) in result.trees.iter().enumerate() {
            println!("\nmaximal tree {}:", i + 1);
            print!(
                "{}",
                metaform_parser::render_tree(&result.chart, extractor.grammar(), tree)
            );
        }
        println!();
    }
    print!("{}", extraction.report);
    ExitCode::SUCCESS
}
