//! `metaform` — command-line form extractor.
//!
//! ```text
//! metaform <page.html>...       extract and print the semantic model(s)
//! metaform - < page.html       read the page from stdin
//! metaform --tokens <page>     also print the visual tokens
//! metaform --ascii <page>      draw the rendered layout as ASCII art
//! metaform --trees <page>      also print the maximal parse trees
//! metaform --page-deadline-ms <n>  wall-clock parse budget per page
//! metaform --max-instances <n>     parser instance cap per page
//! metaform --adaptive          batch mode with bounded retry escalation
//! metaform --max-retries <n>   retry rounds after the first pass (default 2)
//! metaform --cancel-after-ms <n>  fire the batch cancel token after n ms
//! metaform --failures-json <f> write per-page failure telemetry as JSON
//! metaform --failures-csv <f>  write per-page failure telemetry as CSV
//! metaform --grammar           print the derived global grammar
//! metaform --export-grammar    print the grammar in its textual (.2pg) form
//! metaform --grammar-file <f>  parse with a grammar loaded from a .2pg file
//! metaform --schedule-dot      print the 2P schedule graph as DOT
//! metaform induce              run the grammar induction loop
//!   --rounds <n>                 max Collect→Infer→Validate rounds (default 4)
//!   --min-support <n>            min distinct pages per candidate (default 2)
//!   --workers <n>                extraction worker threads
//!   --naive                      use the naive fix-point mode
//!   --export <f.2pg>             write the extended grammar to a file
//! ```
//!
//! Extraction is best-effort end to end: a page that panics the
//! pipeline or blows a budget prints a per-page failure line on
//! stderr and a degraded (proximity-baseline) report on stdout — it
//! never aborts the run or the remaining pages. `--adaptive` (implied
//! by `--max-retries` and `--failures-json`/`--failures-csv`) extracts
//! all inputs as one batch, re-runs budget-limited pages under doubled
//! budgets before degrading them, and can leave a machine-readable
//! failure trail (see README.md for the JSON schema).

use metaform::{
    global_compiled, global_grammar, AdaptiveOptions, CancelToken, FormExtractor, Provenance,
};
use metaform_extractor::{failures_to_csv, failures_to_json};
use metaform_grammar::schedule_to_dot;
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    show_tokens: bool,
    show_trees: bool,
    show_ascii: bool,
    grammar_file: Option<String>,
    page_deadline: Option<Duration>,
    max_instances: Option<usize>,
    adaptive: bool,
    max_retries: Option<usize>,
    cancel_after: Option<Duration>,
    failures_json: Option<String>,
    failures_csv: Option<String>,
    inputs: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: metaform [--tokens] [--trees] [--ascii] [--grammar-file <f.2pg>]\n\
         \x20               [--page-deadline-ms <n>] [--max-instances <n>]\n\
         \x20               [--adaptive] [--max-retries <n>] [--cancel-after-ms <n>]\n\
         \x20               [--failures-json <f>] [--failures-csv <f>] <page.html...| ->\n\
         \x20      metaform --grammar | --export-grammar | --schedule-dot\n\
         \x20      metaform induce [--rounds <n>] [--min-support <n>] [--workers <n>]\n\
         \x20                      [--naive] [--export <f.2pg>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        show_tokens: false,
        show_trees: false,
        show_ascii: false,
        grammar_file: None,
        page_deadline: None,
        max_instances: None,
        adaptive: false,
        max_retries: None,
        cancel_after: None,
        failures_json: None,
        failures_csv: None,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "induce" if opts.inputs.is_empty() => return run_induce(args),
            "--export-grammar" => {
                print!("{}", metaform_grammar::to_dsl(&global_grammar()));
                return ExitCode::SUCCESS;
            }
            "--grammar-file" => {
                let Some(path) = args.next() else {
                    eprintln!("--grammar-file needs a path");
                    return usage();
                };
                opts.grammar_file = Some(path);
            }
            "--grammar" => {
                print!("{}", global_grammar().describe());
                return ExitCode::SUCCESS;
            }
            "--schedule-dot" => {
                // The compiled artifact already carries the schedule.
                let compiled = global_compiled();
                print!(
                    "{}",
                    schedule_to_dot(compiled.grammar(), compiled.schedule())
                );
                return ExitCode::SUCCESS;
            }
            "--tokens" => opts.show_tokens = true,
            "--ascii" => opts.show_ascii = true,
            "--trees" => opts.show_trees = true,
            "--page-deadline-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--page-deadline-ms needs a number of milliseconds");
                    return usage();
                };
                opts.page_deadline = Some(Duration::from_millis(ms));
            }
            "--max-instances" => {
                let Some(cap) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-instances needs a number");
                    return usage();
                };
                opts.max_instances = Some(cap);
            }
            "--adaptive" => opts.adaptive = true,
            "--max-retries" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-retries needs a number");
                    return usage();
                };
                opts.max_retries = Some(n);
                opts.adaptive = true;
            }
            "--cancel-after-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--cancel-after-ms needs a number of milliseconds");
                    return usage();
                };
                opts.cancel_after = Some(Duration::from_millis(ms));
            }
            "--failures-json" => {
                let Some(path) = args.next() else {
                    eprintln!("--failures-json needs a path");
                    return usage();
                };
                opts.failures_json = Some(path);
                opts.adaptive = true;
            }
            "--failures-csv" => {
                let Some(path) = args.next() else {
                    eprintln!("--failures-csv needs a path");
                    return usage();
                };
                opts.failures_csv = Some(path);
                opts.adaptive = true;
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option: {other}");
                return usage();
            }
            path => opts.inputs.push(path.to_string()),
        }
    }
    if opts.inputs.is_empty() {
        return usage();
    }

    let mut extractor = match &opts.grammar_file {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let grammar = match metaform_grammar::from_dsl(&src) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Compilation is the fallible step: a grammar whose
            // schedule graph cycles is reported as a diagnostic, not
            // a panic.
            match FormExtractor::try_with_grammar(grammar) {
                Ok(extractor) => extractor,
                Err(e) => {
                    eprintln!("error: {path}: grammar does not compile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FormExtractor::new(),
    };
    if let Some(deadline) = opts.page_deadline {
        extractor = extractor.page_deadline(deadline);
    }
    if let Some(cap) = opts.max_instances {
        extractor = extractor.max_instances(cap);
    }
    if let Some(after) = opts.cancel_after {
        // Batch-level kill switch: a detached timer fires the shared
        // token; parses in flight stop at their next sampled poll,
        // pages already finished keep their results.
        let token = CancelToken::new();
        extractor = extractor.cancel_token(token.clone());
        std::thread::spawn(move || {
            std::thread::sleep(after);
            token.cancel();
        });
    }

    if opts.adaptive {
        return run_adaptive(&extractor, &opts);
    }

    let many = opts.inputs.len() > 1;
    for (page_index, path) in opts.inputs.iter().enumerate() {
        let html = match read_page(path) {
            Ok(html) => html,
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        };
        if many {
            println!("== {path} ==");
        }
        if opts.show_ascii {
            let doc = metaform_html::parse(&html);
            let lay = metaform_layout::layout(&doc);
            println!("{}", metaform_layout::ascii_render(&doc, &lay));
        }
        // Best-effort serving: a failed page prints a diagnostic line
        // and a degraded baseline report, never aborts the run.
        let extraction = match extractor.try_extract(&html) {
            Ok(extraction) => extraction,
            Err(err) => {
                // try_extract reports page 0; re-attribute to this
                // run's page index so the warning matches the header.
                let err = err.with_page_index(page_index);
                eprintln!("warning: {path}: {err}; degrading to the proximity baseline");
                extractor.extract(&html)
            }
        };
        if opts.show_tokens {
            println!("tokens ({}):", extraction.tokens.len());
            for t in &extraction.tokens {
                let extra = if t.kind == metaform::TokenKind::Text {
                    format!(" {:?}", t.sval)
                } else if !t.name.is_empty() {
                    format!(" name={}", t.name)
                } else {
                    String::new()
                };
                println!("  {:?} {} {:?}{extra}", t.id, t.kind, t.pos);
            }
            println!();
        }
        if opts.show_trees && extraction.via == Provenance::Grammar {
            println!("parse: {}", extraction.stats.summary());
            // Re-parse through the extractor's own compiled grammar —
            // no rebuild, no re-validation.
            let result = extractor.session().parse(&extraction.tokens);
            for (i, &tree) in result.trees.iter().enumerate() {
                println!("\nmaximal tree {}:", i + 1);
                print!(
                    "{}",
                    metaform_parser::render_tree(&result.chart, extractor.grammar(), tree)
                );
            }
            println!();
        }
        if extraction.via == Provenance::PartialSalvage {
            println!("(via salvaged partial parse, page {page_index})");
        }
        if extraction.via == Provenance::BaselineFallback {
            println!("(via proximity-baseline fallback, page {page_index})");
        }
        print!("{}", extraction.report);
        if many && page_index + 1 < opts.inputs.len() {
            println!();
        }
    }
    ExitCode::SUCCESS
}

/// The `induce` subcommand: the Collect → Infer → Validate loop over
/// the induction split, printing the per-round trajectory and the
/// accepted production signatures. Exit code 0 whether or not any
/// candidate was accepted — an empty round is a finding, not an error.
fn run_induce(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut config = metaform_eval::InductionConfig::default();
    let mut export: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--rounds needs a number");
                    return usage();
                };
                config.rounds = n;
            }
            "--min-support" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--min-support needs a number");
                    return usage();
                };
                config.min_support = n;
            }
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--workers needs a number");
                    return usage();
                };
                config.workers = Some(n);
            }
            "--naive" => config.fixpoint = metaform_parser::FixpointMode::Naive,
            "--export" => {
                let Some(path) = args.next() else {
                    eprintln!("--export needs a path");
                    return usage();
                };
                export = Some(path);
            }
            other => {
                eprintln!("unknown induce option: {other}");
                return usage();
            }
        }
    }
    let outcome = metaform_eval::run_induction(&config);
    println!(
        "baseline: holdout {:.4}, random {:.4}",
        outcome.baseline_holdout, outcome.baseline_random
    );
    for round in &outcome.rounds {
        println!(
            "round {}: mined {} signature(s), proposed {}, accepted {} -> holdout {:.4}, random {:.4}",
            round.round,
            round.mined,
            round.proposed.len(),
            round.accepted.len(),
            round.holdout_accuracy,
            round.random_accuracy
        );
        for accepted in &round.accepted {
            println!(
                "  + {} [{}] ({} supporting pages)",
                accepted.name, accepted.signature, accepted.support
            );
        }
    }
    if outcome.accepted.is_empty() {
        println!("no candidates accepted; grammar unchanged");
    }
    if let Some(path) = export {
        let dsl = metaform_grammar::to_dsl(outcome.grammar.grammar());
        if let Err(e) = std::fs::write(&path, dsl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("extended grammar written to {path}");
    }
    ExitCode::SUCCESS
}

/// One input page: a file path, or `-` for stdin.
fn read_page(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|_| "stdin is not valid UTF-8".to_string())?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// The `--adaptive` batch mode: all inputs as one
/// `extract_batch_adaptive` run — bounded retry escalation for
/// budget-limited pages, per-page reports on stdout in input order,
/// failure warnings and the batch rollup on stderr, and optional
/// machine-readable failure telemetry on disk.
fn run_adaptive(extractor: &FormExtractor, opts: &Options) -> ExitCode {
    let mut pages = Vec::with_capacity(opts.inputs.len());
    for path in &opts.inputs {
        match read_page(path) {
            Ok(html) => pages.push(html),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    let adaptive_opts = AdaptiveOptions {
        max_retries: opts
            .max_retries
            .unwrap_or(AdaptiveOptions::default().max_retries),
        ..AdaptiveOptions::default()
    };
    let batch = extractor.extract_batch_adaptive(&refs, &adaptive_opts);

    let many = opts.inputs.len() > 1;
    for (page_index, (path, extraction)) in opts.inputs.iter().zip(&batch.extractions).enumerate() {
        if many {
            println!("== {path} ==");
        }
        if extraction.via == Provenance::PartialSalvage {
            println!("(via salvaged partial parse, page {page_index})");
        }
        if extraction.via == Provenance::BaselineFallback {
            println!("(via proximity-baseline fallback, page {page_index})");
        }
        print!("{}", extraction.report);
        if many && page_index + 1 < opts.inputs.len() {
            println!();
        }
    }
    for record in &batch.failures {
        eprintln!(
            "warning: {}: {} after {} attempt(s) -> {}",
            opts.inputs[record.page_index],
            record.error.as_str(),
            record.attempts,
            record.outcome.as_str()
        );
    }
    if let Some(path) = &opts.failures_json {
        if let Err(e) = std::fs::write(path, failures_to_json(&batch.failures)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.failures_csv {
        if let Err(e) = std::fs::write(path, failures_to_csv(&batch.failures)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("batch: {}", batch.stats.summary());
    ExitCode::SUCCESS
}
