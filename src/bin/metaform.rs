//! `metaform` — command-line form extractor.
//!
//! ```text
//! metaform <page.html>...       extract and print the semantic model(s)
//! metaform - < page.html       read the page from stdin
//! metaform --tokens <page>     also print the visual tokens
//! metaform --ascii <page>      draw the rendered layout as ASCII art
//! metaform --trees <page>      also print the maximal parse trees
//! metaform --page-deadline-ms <n>  wall-clock parse budget per page
//! metaform --max-instances <n>     parser instance cap per page
//! metaform --grammar           print the derived global grammar
//! metaform --export-grammar    print the grammar in its textual (.2pg) form
//! metaform --grammar-file <f>  parse with a grammar loaded from a .2pg file
//! metaform --schedule-dot      print the 2P schedule graph as DOT
//! ```
//!
//! Extraction is best-effort end to end: a page that panics the
//! pipeline or blows a budget prints a per-page failure line on
//! stderr and a degraded (proximity-baseline) report on stdout — it
//! never aborts the run or the remaining pages.

use metaform::{global_compiled, global_grammar, FormExtractor, Provenance};
use metaform_grammar::schedule_to_dot;
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    show_tokens: bool,
    show_trees: bool,
    show_ascii: bool,
    grammar_file: Option<String>,
    page_deadline: Option<Duration>,
    max_instances: Option<usize>,
    inputs: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: metaform [--tokens] [--trees] [--ascii] [--grammar-file <f.2pg>]\n\
         \x20               [--page-deadline-ms <n>] [--max-instances <n>] <page.html...| ->\n\
         \x20      metaform --grammar | --export-grammar | --schedule-dot"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        show_tokens: false,
        show_trees: false,
        show_ascii: false,
        grammar_file: None,
        page_deadline: None,
        max_instances: None,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--export-grammar" => {
                print!("{}", metaform_grammar::to_dsl(&global_grammar()));
                return ExitCode::SUCCESS;
            }
            "--grammar-file" => {
                let Some(path) = args.next() else {
                    eprintln!("--grammar-file needs a path");
                    return usage();
                };
                opts.grammar_file = Some(path);
            }
            "--grammar" => {
                print!("{}", global_grammar().describe());
                return ExitCode::SUCCESS;
            }
            "--schedule-dot" => {
                // The compiled artifact already carries the schedule.
                let compiled = global_compiled();
                print!(
                    "{}",
                    schedule_to_dot(compiled.grammar(), compiled.schedule())
                );
                return ExitCode::SUCCESS;
            }
            "--tokens" => opts.show_tokens = true,
            "--ascii" => opts.show_ascii = true,
            "--trees" => opts.show_trees = true,
            "--page-deadline-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--page-deadline-ms needs a number of milliseconds");
                    return usage();
                };
                opts.page_deadline = Some(Duration::from_millis(ms));
            }
            "--max-instances" => {
                let Some(cap) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-instances needs a number");
                    return usage();
                };
                opts.max_instances = Some(cap);
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option: {other}");
                return usage();
            }
            path => opts.inputs.push(path.to_string()),
        }
    }
    if opts.inputs.is_empty() {
        return usage();
    }

    let mut extractor = match &opts.grammar_file {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let grammar = match metaform_grammar::from_dsl(&src) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Compilation is the fallible step: a grammar whose
            // schedule graph cycles is reported as a diagnostic, not
            // a panic.
            match FormExtractor::try_with_grammar(grammar) {
                Ok(extractor) => extractor,
                Err(e) => {
                    eprintln!("error: {path}: grammar does not compile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FormExtractor::new(),
    };
    if let Some(deadline) = opts.page_deadline {
        extractor = extractor.page_deadline(deadline);
    }
    if let Some(cap) = opts.max_instances {
        extractor = extractor.max_instances(cap);
    }

    let many = opts.inputs.len() > 1;
    for (page_index, path) in opts.inputs.iter().enumerate() {
        let html = if path == "-" {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("error: stdin is not valid UTF-8");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        if many {
            println!("== {path} ==");
        }
        if opts.show_ascii {
            let doc = metaform_html::parse(&html);
            let lay = metaform_layout::layout(&doc);
            println!("{}", metaform_layout::ascii_render(&doc, &lay));
        }
        // Best-effort serving: a failed page prints a diagnostic line
        // and a degraded baseline report, never aborts the run.
        let extraction = match extractor.try_extract(&html) {
            Ok(extraction) => extraction,
            Err(err) => {
                // try_extract reports page 0; re-attribute to this
                // run's page index so the warning matches the header.
                let err = err.with_page_index(page_index);
                eprintln!("warning: {path}: {err}; degrading to the proximity baseline");
                extractor.extract(&html)
            }
        };
        if opts.show_tokens {
            println!("tokens ({}):", extraction.tokens.len());
            for t in &extraction.tokens {
                let extra = if t.kind == metaform::TokenKind::Text {
                    format!(" {:?}", t.sval)
                } else if !t.name.is_empty() {
                    format!(" name={}", t.name)
                } else {
                    String::new()
                };
                println!("  {:?} {} {:?}{extra}", t.id, t.kind, t.pos);
            }
            println!();
        }
        if opts.show_trees && extraction.via == Provenance::Grammar {
            println!("parse: {}", extraction.stats.summary());
            // Re-parse through the extractor's own compiled grammar —
            // no rebuild, no re-validation.
            let result = extractor.session().parse(&extraction.tokens);
            for (i, &tree) in result.trees.iter().enumerate() {
                println!("\nmaximal tree {}:", i + 1);
                print!(
                    "{}",
                    metaform_parser::render_tree(&result.chart, extractor.grammar(), tree)
                );
            }
            println!();
        }
        if extraction.via == Provenance::BaselineFallback {
            println!("(via proximity-baseline fallback, page {page_index})");
        }
        print!("{}", extraction.report);
        if many && page_index + 1 < opts.inputs.len() {
            println!();
        }
    }
    ExitCode::SUCCESS
}
