//! Large-scale extraction: run the form extractor over the Random
//! dataset (30 heterogeneous sources, as in paper §6) and print the
//! per-source and overall precision/recall.
//!
//! ```text
//! cargo run --release --example batch_extraction
//! ```

use metaform::FormExtractor;
use metaform_datasets::random;
use metaform_eval::{score_source, TextTable};

fn main() {
    let dataset = random();
    let extractor = FormExtractor::new();

    let mut table = TextTable::new(&["source", "domain", "truth", "extracted", "P", "R"]);
    let mut scores = Vec::new();
    for source in &dataset.sources {
        let score = score_source(&extractor, source);
        table.row(&[
            score.name.clone(),
            score.domain.clone(),
            score.truth.to_string(),
            score.extracted.to_string(),
            format!("{:.2}", score.precision()),
            format!("{:.2}", score.recall()),
        ]);
        scores.push(score);
    }
    println!("{}", table.render());

    let ds = metaform_eval::DatasetScore {
        name: dataset.name.clone(),
        sources: scores,
    };
    println!(
        "overall: Pa={:.3} Ra={:.3} accuracy={:.3}  (paper Random: Pa=0.80 Ra=0.89)",
        ds.overall_precision(),
        ds.overall_recall(),
        ds.accuracy()
    );
}
