//! Large-scale extraction: run the form extractor over the Random
//! dataset (30 heterogeneous sources, as in paper §6) — in parallel,
//! via [`FormExtractor::extract_batch`] — and print the per-source and
//! overall precision/recall. The grammar is compiled once; every
//! worker thread shares the artifact and recycles one parse session.
//!
//! ```text
//! cargo run --release --example batch_extraction
//! ```

use metaform::FormExtractor;
use metaform_datasets::random;
use metaform_eval::{metrics, TextTable};

fn main() {
    let dataset = random();
    let extractor = FormExtractor::new();

    // One call, all sources: pages fan out over worker threads, and
    // the results come back in input order (identical to a sequential
    // run — parallelism only changes wall-clock time).
    let pages: Vec<&str> = dataset.sources.iter().map(|s| s.html.as_str()).collect();
    let (extractions, stats) = extractor.extract_batch_stats(&pages);
    println!("{}\n", stats.summary());
    assert_eq!(stats.schedules_built, 0, "compile-once violated");

    let mut table = TextTable::new(&["source", "domain", "truth", "extracted", "P", "R"]);
    let mut scores = Vec::new();
    for (source, extraction) in dataset.sources.iter().zip(&extractions) {
        let score = metrics::score_extraction(source, extraction);
        table.row(&[
            score.name.clone(),
            score.domain.clone(),
            score.truth.to_string(),
            score.extracted.to_string(),
            format!("{:.2}", score.precision()),
            format!("{:.2}", score.recall()),
        ]);
        scores.push(score);
    }
    println!("{}", table.render());

    let ds = metaform_eval::DatasetScore {
        name: dataset.name.clone(),
        sources: scores,
    };
    println!(
        "overall: Pa={:.3} Ra={:.3} accuracy={:.3}  (paper Random: Pa=0.80 Ra=0.89)",
        ds.overall_precision(),
        ds.overall_recall(),
        ds.accuracy()
    );
}
