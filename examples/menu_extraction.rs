//! Beyond query forms (paper §7): "the navigational menus listing
//! available services are often regularly arranged at the top or left
//! hand side of entry pages in E-commerce Web sites. … by designing a
//! grammar that captures such structure regularities, we can employ
//! our parsing framework to extract the services available."
//!
//! This example does exactly that: a tiny 2P grammar for left-hand
//! navigation menus — left-aligned stacks of short text items — run
//! through the *unchanged* best-effort parser.
//!
//! ```text
//! cargo run --example menu_extraction
//! ```

use metaform::TokenKind;
use metaform_grammar::{Constraint as C, Constructor as K, GrammarBuilder, Pred};
use metaform_parser::ParseSession;
use std::sync::Arc;

fn main() {
    // A menu grammar: items are short texts; a menu is a left-aligned
    // vertical stack of items; the page may hold several menus.
    let mut b = GrammarBuilder::new("Page");
    let text = b.t(TokenKind::Text);
    let item = b.nt("MenuItem");
    let menu = b.nt("Menu");
    let page = b.nt("Page");

    b.production(
        "MenuItem",
        item,
        vec![text],
        C::all([C::Is(0, Pred::AttrLike), C::Is(0, Pred::MaxWords(3))]),
        K::TextOf(0),
    );
    b.production("Menu<-item", menu, vec![item], C::True, K::ListStart(0));
    b.production(
        "Menu<-stack",
        menu,
        vec![menu, item],
        C::all([C::AlignLeft(0, 1), C::AboveWithin(0, 1, 14)]),
        K::ListAppend { list: 0, unit: 1 },
    );
    b.production("Page", page, vec![menu], C::True, K::Inherit(0));
    b.preference(
        "Menu-longer",
        menu,
        menu,
        metaform_grammar::ConflictCond::LoserSubsumed,
        metaform_grammar::WinCriteria::WinnerLarger,
    );
    // Compile once: validation and scheduling are the grammar's only
    // fallible step, paid here and never again.
    let compiled = Arc::new(
        b.build()
            .expect("menu grammar is valid")
            .compile()
            .expect("menu grammar is schedulable"),
    );
    let grammar = compiled.grammar();
    println!("menu grammar: {}", grammar.stats());
    println!(
        "instantiation order: {:?}\n",
        compiled
            .schedule()
            .order
            .iter()
            .map(|&s| grammar.symbols.name(s))
            .collect::<Vec<_>>()
    );

    // An e-commerce entry page: a left-hand nav column next to body
    // copy (the long sentences fail the MenuItem predicate).
    let html = r#"
      <table><tr valign="top">
        <td>
          Books<br>Music<br>Movies<br>Toys<br>Electronics<br>Gift Cards<br>
        </td>
        <td>
          Welcome to MegaShop, the one store for absolutely everything you could ever need<br>
          Today only: free shipping on every order over fifty dollars while supplies last<br>
        </td>
      </tr></table>"#;

    let doc = metaform_html::parse(html);
    let layout = metaform_layout::layout(&doc);
    let tokens = metaform_tokenizer::tokenize(&doc, &layout).tokens;
    let result = ParseSession::new(compiled.clone()).parse(&tokens);

    println!(
        "{} tokens, {} maximal trees",
        tokens.len(),
        result.trees.len()
    );
    let mut services = Vec::new();
    for &tree in &result.trees {
        if let Some(items) = result.chart.payload(tree).ops() {
            if items.len() >= 3 {
                services = items.to_vec();
                println!(
                    "menu found ({} covering {} tokens):",
                    grammar.symbols.name(result.chart.symbol(tree)),
                    result.chart.span(tree).count()
                );
                for s in items {
                    println!("  • {s}");
                }
            }
        }
    }
    assert_eq!(
        services,
        vec![
            "Books",
            "Music",
            "Movies",
            "Toys",
            "Electronics",
            "Gift Cards"
        ]
    );
    println!("\nSame parser, different grammar — the framework generalizes (§7).");
}
