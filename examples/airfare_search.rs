//! Best-effort parsing under grammar incompleteness: the aa.com-style
//! interface (Qaa, Figure 3(b)) and its column-major variation
//! (Figure 14), where multiple partial parse trees are merged and a
//! conflicting token claim is reported.
//!
//! ```text
//! cargo run --example airfare_search
//! ```

use metaform::FormExtractor;
use metaform_datasets::fixtures::{qaa, qaa_column_variant};
use metaform_parser::merge;

fn main() {
    // Part 1: the well-formed interface parses into one model.
    let source = qaa();
    println!("== {} ==", source.name);
    let extractor = FormExtractor::new();
    let extraction = extractor.extract(&source.html);
    for condition in &extraction.report.conditions {
        println!("  {condition}");
    }

    // Part 2: the Figure 14 variation. Its lower part is arranged
    // column by column, which the grammar's row-major form pattern does
    // not capture, so parsing stops at multiple maximal partial trees.
    // The session reuses the extractor's already-compiled grammar.
    println!("\n== column-by-column variation (paper Figure 14) ==");
    let html = qaa_column_variant();
    let grammar = extractor.grammar();

    let doc = metaform_html::parse(&html);
    let layout = metaform_layout::layout(&doc);
    let tokens = metaform_tokenizer::tokenize(&doc, &layout).tokens;
    let result = extractor.session().parse(&tokens);

    println!(
        "{} tokens, {} maximal partial parse trees:",
        tokens.len(),
        result.trees.len()
    );
    for (i, &tree) in result.trees.iter().enumerate() {
        println!(
            "  tree {}: rooted at {}, covering {} tokens",
            i + 1,
            grammar.symbols.name(result.chart.symbol(tree)),
            result.chart.span(tree).count()
        );
    }

    // The merger unions the trees' conditions and reports the contested
    // token — the passenger list claimed by both "Adults" and
    // "Number of passengers", exactly the error class of Figure 14.
    let report = merge(&result.chart, &result.trees);
    println!("\nmerged semantic model:\n{report}");
    assert!(
        !report.conflicts.is_empty(),
        "the passenger list must be contested"
    );
    println!("The client application decides such conflicts (paper §7).");
}
