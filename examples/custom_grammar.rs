//! Extensibility (paper §4.1): "we simply augment the grammar to add
//! new patterns, leaving parsing untouched." This example builds a
//! custom 2P grammar from scratch — a miniature of the paper's
//! Figure 6 grammar G plus a brand-new pattern the global grammar does
//! not know (a percentage slider rendered as `Label [tb] %`) — and
//! runs the unchanged best-effort parser under it.
//!
//! ```text
//! cargo run --example custom_grammar
//! ```

use metaform::{FormExtractor, TokenKind};
use metaform_grammar::{
    ConflictCond, Constraint as C, Constructor as K, GrammarBuilder, Pred, WinCriteria,
};

fn main() {
    let mut b = GrammarBuilder::new("QI");
    let text = b.t(TokenKind::Text);
    let textbox = b.t(TokenKind::Textbox);

    let attr = b.nt("Attr");
    let val = b.nt("Val");
    let pct = b.nt("PctCond");
    let text_val = b.nt("TextVal");
    let cp = b.nt("CP");
    let hqi = b.nt("HQI");
    let qi = b.nt("QI");

    b.production(
        "Attr",
        attr,
        vec![text],
        C::Is(0, Pred::AttrLike),
        K::MakeAttr(0),
    );
    b.production("Val", val, vec![textbox], C::True, K::Inherit(0));
    // The new pattern: Label [tb] % — a percentage condition.
    b.production(
        "PctCond",
        pct,
        vec![attr, val, text],
        C::all([C::Left(0, 1), C::Left(1, 2), C::Is(2, Pred::MaxWords(1))]),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: Some(metaform::DomainKind::Numeric),
        },
    );
    b.production(
        "TextVal",
        text_val,
        vec![attr, val],
        C::Left(0, 1),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    for (name, sym) in [("CP<-Pct", pct), ("CP<-TextVal", text_val)] {
        b.production(name, cp, vec![sym], C::True, K::Inherit(0));
    }
    b.production("HQI", hqi, vec![cp], C::True, K::CollectConds);
    b.production(
        "HQI-row",
        hqi,
        vec![hqi, cp],
        C::LeftWithin(0, 1, 400),
        K::CollectConds,
    );
    b.production("QI", qi, vec![hqi], C::True, K::CollectConds);
    b.production(
        "QI-stack",
        qi,
        vec![qi, hqi],
        C::AboveWithin(0, 1, 120),
        K::CollectConds,
    );
    // Precedence: the richer percentage reading wins over plain
    // label+box when both claim the same tokens.
    b.preference(
        "Pct>TextVal",
        pct,
        text_val,
        ConflictCond::Overlap,
        WinCriteria::WinnerLarger,
    );
    let grammar = b.build().expect("custom grammar is valid");
    println!("custom grammar: {}", grammar.stats());

    let html = r#"
      <form>
        Discount <input type="text" name="d" size="4"> %<br>
        Seller <input type="text" name="s" size="20"><br>
      </form>"#;

    // Compilation (validation + scheduling) is the fallible step; a
    // grammar whose preference graph cycles would be reported here.
    let extractor = FormExtractor::try_with_grammar(grammar).expect("custom grammar compiles");
    let extraction = extractor.extract(html);
    println!("\nextracted conditions:");
    for condition in &extraction.report.conditions {
        println!("  {condition}");
    }
    let discount = &extraction.report.conditions[0];
    assert_eq!(discount.attribute, "Discount");
    assert_eq!(discount.domain.kind, metaform::DomainKind::Numeric);
    println!("\nThe parser needed no changes — only the grammar grew.");
}
