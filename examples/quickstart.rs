//! Quickstart: extract the semantic model of the paper's running
//! example — amazon.com's book search (Qam, Figure 3(a)).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use metaform::FormExtractor;
use metaform_datasets::fixtures::qam;

fn main() {
    let source = qam();
    println!(
        "Input interface: {} ({} domain)\n",
        source.name, source.domain
    );

    let extractor = FormExtractor::new();
    let extraction = extractor.extract(&source.html);

    println!("Extracted query capabilities:");
    for condition in &extraction.report.conditions {
        println!("  {condition}");
    }

    println!("\nParse diagnostics: {}", extraction.stats.summary());
    if extraction.report.is_clean() {
        println!("No conflicts, no missing elements — a complete understanding.");
    } else {
        println!("{}", extraction.report);
    }

    // The condition the paper walks through: c_author with its three
    // operator radio buttons.
    let author = extraction
        .report
        .conditions
        .iter()
        .find(|c| c.attribute == "Author")
        .expect("Qam always yields an author condition");
    assert_eq!(author.operators.len(), 3);
    println!(
        "\nc_author = [{}; {{{}}}; {}] — as in paper §1.",
        author.attribute,
        author.operators.join(", "),
        author.domain
    );
}
