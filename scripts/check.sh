#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test fault_isolation (poison-page isolation)"
cargo test -q --test fault_isolation

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --quiet

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
