#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test fault_isolation (poison-page isolation)"
cargo test -q --test fault_isolation

echo "==> cargo test -q --test adaptive_batch (retry escalation, cancellation, telemetry)"
cargo test -q --test adaptive_batch

echo "==> metaform --adaptive --failures-json (CLI telemetry sanity)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
printf '<form>Author <input type=text name=q><input type=submit value=Go></form>' > "$tmp/ok.html"
printf '<form></form>' > "$tmp/empty.html"
./target/release/metaform --adaptive --max-retries 1 \
    --failures-json "$tmp/failures.json" --failures-csv "$tmp/failures.csv" \
    "$tmp/ok.html" "$tmp/empty.html" > /dev/null 2>/dev/null
# The empty form must be narrated in both formats; the JSON shape is
# the documented schema (the lossless round trip itself is asserted by
# tests/adaptive_batch.rs).
grep -q '"page_index": 1' "$tmp/failures.json"
grep -q '"error": "empty_form"' "$tmp/failures.json"
grep -q '"outcome": "degraded"' "$tmp/failures.json"
grep -q '^1,empty_form,degraded,' "$tmp/failures.csv"

echo "==> cargo test -q --test salvage (partial-parse salvage tier, E17 pin)"
cargo test -q --test salvage

echo "==> cargo test -q --test fault_plan (fault injection: batch + service counter parity, refit convergence)"
cargo test -q --test fault_plan

echo "==> provenance construction gate (salvage/fallback each built in exactly one place)"
# salvage_or_degrade is the only site allowed to promote a partial parse,
# and degrade the only site allowed to mint the baseline fallback — the
# salvage tests rely on that to reason about every degraded page.
test "$(grep -c 'via = Provenance::PartialSalvage' crates/extractor/src/pipeline.rs)" = 1
test "$(grep -c 'via: Provenance::BaselineFallback' crates/extractor/src/pipeline.rs)" = 1

echo "==> cargo test -q --test cache_parity (revisit tiers vs cold parse)"
cargo test -q --test cache_parity

echo "==> cargo test -q --test induction (grammar induction: trajectory, determinism, safety)"
# The gate must compare against the blessed trajectory, never re-bless
# it; and a blessed-but-uncommitted golden file is drift, not a pass.
test -z "${METAFORM_BLESS:-}"
cargo test -q --test induction
git diff --quiet -- tests/golden/induction_rounds.txt

echo "==> induction construction gate (induced productions enter only via Grammar::compile)"
# CompiledGrammar::build is the private plumbing of Grammar::compile —
# no other module may mint a parse-ready grammar (mirrors the
# provenance single-construction gates above).
test "$(grep -rl 'CompiledGrammar::build' crates src | grep -v 'crates/grammar/src/compiled.rs' | wc -l)" = 0
# The daemon's hot-swap path never compiles directly: every candidate
# flows through the validation gate, whose first clause is the compile.
test "$(grep -rn '\.compile()' crates/service/src | wc -l)" = 0
grep -q 'RejectReason::CompileError' crates/eval/src/induction.rs

echo "==> bench_revisit smoke (cache tiers engage; parity asserted inside)"
cargo run --release -q -p metaform-bench --bin bench_revisit -- "$tmp/BENCH_revisit.json" > /dev/null
grep -q '"exact_hit_speedup"' "$tmp/BENCH_revisit.json"
grep -q '"tier_delta"' "$tmp/BENCH_revisit.json"

echo "==> bench_parse perf smoke (fails on >1.5x median regression vs committed BENCH_parse.json)"
cargo run --release -q -p metaform-bench --bin bench_parse -- --smoke "$tmp/BENCH_parse.json" > /dev/null
# First "median_batch_ms" in each file is the seminaive mode — the
# headline the regression gate tracks. The 1.5x allowance absorbs
# ordinary scheduler noise on shared hosts; a real algorithmic
# regression (the semi-naive machinery degrading to naive re-walks)
# shows up as 2x+.
committed="$(sed -n 's/.*"median_batch_ms": \([0-9.]*\),.*/\1/p' BENCH_parse.json | head -1)"
smoke="$(sed -n 's/.*"median_batch_ms": \([0-9.]*\),.*/\1/p' "$tmp/BENCH_parse.json" | head -1)"
test -n "$committed" && test -n "$smoke"
awk -v s="$smoke" -v c="$committed" 'BEGIN {
    ratio = s / c
    printf "    seminaive median %.3f ms vs committed %.3f ms (%.2fx)\n", s, c, ratio
    exit (ratio > 1.5) ? 1 : 0
}'

echo "==> cargo test -q --test service_http (HTTP vs in-process differential)"
cargo test -q --test service_http

echo "==> cargo test -q --test service_edge (keep-alive, slowloris, daemon socket)"
cargo test -q --test service_edge

echo "==> cargo test -q --test service_load (soak + queue-saturation backpressure)"
cargo test -q --test service_load

echo "==> bench_service smoke (load generator; keep-alive vs close legs)"
cargo run --release -q -p metaform-bench --bin bench_service -- --smoke "$tmp/BENCH_service.json" > /dev/null
grep -q '"keep_alive_speedup"' "$tmp/BENCH_service.json"
grep -q '"submit_drain"' "$tmp/BENCH_service.json"

echo "==> metaformd smoke (boot, /healthz, one batch end to end, shutdown)"
./target/release/metaformd --addr 127.0.0.1:0 --pool-workers 1 \
    --uds "$tmp/metaformd.sock" > "$tmp/metaformd.log" &
metaformd_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$tmp/metaformd.log" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^metaformd listening on //p' "$tmp/metaformd.log")"
test -n "$addr"
curl -fsS "http://$addr/healthz" | grep -q ok
job_json="$(curl -fsS -X POST "http://$addr/v1/batches" \
    --data-binary '{"pages": ["<form>Author <input type=text name=q><input type=submit value=Go></form>"]}')"
echo "$job_json" | grep -q '"state": "queued"'
job="$(echo "$job_json" | sed -n 's/.*"job": \([0-9]*\).*/\1/p')"
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/v1/batches/$job" | grep -q '"state": "done"' && break
    sleep 0.1
done
curl -fsS "http://$addr/v1/batches/$job/results" | grep -q 'Author'
curl -fsS "http://$addr/v1/jobs" | grep -q '"state": "done"'
curl -fsS "http://$addr/metrics" | grep -q 'metaformd_jobs_completed_total 1'
# First visit of the page is a cache miss; a revisit-hinted resubmit
# must replay from the process-wide parse cache.
curl -fsS "http://$addr/metrics" | grep -q 'metaformd_pages_cache_miss_total 1'
revisit_json="$(curl -fsS -X POST "http://$addr/v1/batches" \
    --data-binary '{"pages": [{"html": "<form>Author <input type=text name=q><input type=submit value=Go></form>", "revisit": true}]}')"
revisit_job="$(echo "$revisit_json" | sed -n 's/.*"job": \([0-9]*\).*/\1/p')"
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/v1/batches/$revisit_job" | grep -q '"state": "done"' && break
    sleep 0.1
done
curl -fsS "http://$addr/v1/batches/$revisit_job/results" | grep -q '"via": "cache_hit"'
curl -fsS "http://$addr/metrics" | grep -q 'metaformd_pages_cache_hit_total 1'
curl -fsS "http://$addr/metrics" | grep -q 'metaformd_revisit_hints_total 1'

echo "==> metaformd daemon echo probe (line-JSON ping over --uds)"
for _ in $(seq 1 100); do
    test -S "$tmp/metaformd.sock" && break
    sleep 0.1
done
./target/release/bench_service --daemon-probe "$tmp/metaformd.sock" | grep -q pong

curl -fsS -X POST "http://$addr/v1/shutdown" | grep -q draining
wait "$metaformd_pid"
test ! -e "$tmp/metaformd.sock"   # the daemon removes its socket file on exit

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --quiet

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
