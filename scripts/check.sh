#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test fault_isolation (poison-page isolation)"
cargo test -q --test fault_isolation

echo "==> cargo test -q --test adaptive_batch (retry escalation, cancellation, telemetry)"
cargo test -q --test adaptive_batch

echo "==> metaform --adaptive --failures-json (CLI telemetry sanity)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
printf '<form>Author <input type=text name=q><input type=submit value=Go></form>' > "$tmp/ok.html"
printf '<form></form>' > "$tmp/empty.html"
./target/release/metaform --adaptive --max-retries 1 \
    --failures-json "$tmp/failures.json" --failures-csv "$tmp/failures.csv" \
    "$tmp/ok.html" "$tmp/empty.html" > /dev/null 2>/dev/null
# The empty form must be narrated in both formats; the JSON shape is
# the documented schema (the lossless round trip itself is asserted by
# tests/adaptive_batch.rs).
grep -q '"page_index": 1' "$tmp/failures.json"
grep -q '"error": "empty_form"' "$tmp/failures.json"
grep -q '"outcome": "degraded"' "$tmp/failures.json"
grep -q '^1,empty_form,degraded,' "$tmp/failures.csv"

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --quiet

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
