#!/usr/bin/env bash
# Machine-readable benchmarks, written at the repo root:
#  - BENCH_parse.json: the batch-120 workload under both fix-point
#    schedules (median batch time, combos enumerated, instances created);
#  - BENCH_revisit.json: cold parses vs the parse cache's exact-hit and
#    delta re-parse tiers over the survey revisit scenarios;
#  - BENCH_service.json: the metaformd load generator — close vs
#    keep-alive request legs (p50/p99 latency, throughput) and a
#    submit→drain job leg over a real loopback server.
# Usage: scripts/bench.sh [parse_out.json [revisit_out.json [service_out.json]]]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parse.json}"
REVISIT_OUT="${2:-BENCH_revisit.json}"
SERVICE_OUT="${3:-BENCH_service.json}"
cargo run --release -q -p metaform-bench --bin bench_parse -- "$OUT"
cargo run --release -q -p metaform-bench --bin bench_revisit -- "$REVISIT_OUT"
cargo run --release -q -p metaform-bench --bin bench_service -- "$SERVICE_OUT"
