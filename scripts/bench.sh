#!/usr/bin/env bash
# Machine-readable parse benchmark: runs the batch-120 workload under
# both fix-point schedules and writes BENCH_parse.json at the repo
# root (median batch time, combos enumerated, instances created).
# Usage: scripts/bench.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parse.json}"
cargo run --release -q -p metaform-bench --bin bench_parse -- "$OUT"
