#!/usr/bin/env bash
# Machine-readable benchmarks, written at the repo root:
#  - BENCH_parse.json: the batch-120 workload under both fix-point
#    schedules (median batch time, combos enumerated, instances created);
#  - BENCH_revisit.json: cold parses vs the parse cache's exact-hit and
#    delta re-parse tiers over the survey revisit scenarios.
# Usage: scripts/bench.sh [parse_out.json [revisit_out.json]]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parse.json}"
REVISIT_OUT="${2:-BENCH_revisit.json}"
cargo run --release -q -p metaform-bench --bin bench_parse -- "$OUT"
cargo run --release -q -p metaform-bench --bin bench_revisit -- "$REVISIT_OUT"
