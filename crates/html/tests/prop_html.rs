//! Property tests: the HTML pipeline never panics and preserves text.

use metaform_html::entity::decode_entities;
use metaform_html::parse;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup must never panic the lexer/tree builder.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC{0,300}") {
        let doc = parse(&s);
        // Traversal must terminate and visit every node exactly once.
        let visited = doc.descendants(doc.root()).count();
        prop_assert_eq!(visited, doc.len());
    }

    /// Tag-free text round-trips through parse + text_content.
    #[test]
    fn plain_text_round_trips(s in "[a-zA-Z0-9 ,.:;!?-]{0,120}") {
        let doc = parse(&s);
        prop_assert_eq!(doc.text_content(doc.root()), s);
    }

    /// Entity encoding of the HTML-significant characters round-trips.
    #[test]
    fn escaped_text_round_trips(s in "[a-zA-Z<>&\"' ]{0,80}") {
        let escaped = s
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let doc = parse(&escaped);
        prop_assert_eq!(doc.text_content(doc.root()), s);
    }

    /// decode_entities is idempotent on entity-free output alphabets.
    #[test]
    fn decode_idempotent_without_amp(s in "[a-zA-Z0-9 ;#]{0,60}") {
        let once = decode_entities(&s);
        let twice = decode_entities(&once);
        prop_assert_eq!(once, twice);
    }

    /// Every attribute written in canonical form is recoverable.
    #[test]
    fn attributes_round_trip(name in "[a-z]{1,8}", value in "[a-zA-Z0-9 _.-]{0,20}") {
        let html = format!("<input {name}=\"{value}\">");
        let doc = parse(&html);
        let input = doc.elements_by_tag(doc.root(), "input")[0];
        prop_assert_eq!(doc.attr(input, &name), Some(value.as_str()));
    }

    /// Balanced nesting of inline tags preserves depth-order text.
    #[test]
    fn nested_inline_tags_preserve_text(words in proptest::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut html = String::new();
        for w in &words {
            html.push_str(&format!("<b>{w}</b> "));
        }
        let doc = parse(&html);
        let expect: String = words.iter().map(|w| format!("{w} ")).collect();
        prop_assert_eq!(doc.text_content(doc.root()), expect);
    }
}
