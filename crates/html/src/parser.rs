//! Tree builder: token stream → [`Document`].
//!
//! Implements the subset of HTML tree construction that real 2004-era
//! query forms exercise: void elements, implied end tags (`<option>`,
//! `<li>`, `<p>`, table rows/cells), and recovery from mismatched or
//! stray end tags. `script`/`style` subtrees are dropped — they carry no
//! visual tokens.

use crate::dom::{Document, NodeId};
use crate::lexer::{lex, HtmlToken};

/// Elements that never have content or an end tag.
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Tags whose start implicitly closes certain open elements.
/// Returns the set of tags that must be closed before opening `tag`.
fn implied_closes(tag: &str) -> &'static [&'static str] {
    match tag {
        "option" => &["option"],
        "optgroup" => &["option", "optgroup"],
        "li" => &["li"],
        "dt" | "dd" => &["dt", "dd"],
        "p" => &["p"],
        "tr" => &["td", "th", "tr"],
        "td" | "th" => &["td", "th"],
        "thead" | "tbody" | "tfoot" => &["td", "th", "tr", "thead", "tbody", "tfoot"],
        "table" => &["p"],
        _ => &[],
    }
}

/// Elements acting as scope barriers: an implied or recovery close never
/// pops past one of these.
fn is_scope_barrier(tag: &str) -> bool {
    matches!(
        tag,
        "table" | "td" | "th" | "form" | "select" | "html" | "body"
    )
}

/// Parses HTML source into a DOM. Lenient: never fails.
///
/// ```
/// let doc = metaform_html::parse("<form><option>One<option>Two</form>");
/// assert_eq!(doc.elements_by_tag(doc.root(), "option").len(), 2);
/// assert_eq!(doc.text_content(doc.root()), "OneTwo");
/// ```
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    // Stack of open elements as (node, tag).
    let mut stack: Vec<(NodeId, String)> = vec![(doc.root(), String::new())];
    let mut skip_depth = 0usize; // >0 while inside script/style

    for token in lex(input) {
        match token {
            HtmlToken::Doctype(_) | HtmlToken::Comment(_) => {}
            HtmlToken::Text(text) => {
                if skip_depth == 0 && !text.is_empty() {
                    let parent = stack.last().expect("root never popped").0;
                    doc.create_text(parent, text);
                }
            }
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                if skip_depth > 0 {
                    if matches!(name.as_str(), "script" | "style") && !self_closing {
                        skip_depth += 1;
                    }
                    continue;
                }
                if matches!(name.as_str(), "script" | "style") {
                    if !self_closing {
                        skip_depth = 1;
                    }
                    continue;
                }
                close_implied(&mut stack, &name);
                let parent = stack.last().expect("root never popped").0;
                let node = doc.create_element(parent, name.clone(), attrs);
                if !is_void(&name) && !self_closing {
                    stack.push((node, name));
                }
            }
            HtmlToken::EndTag { name } => {
                if skip_depth > 0 {
                    if matches!(name.as_str(), "script" | "style") {
                        skip_depth -= 1;
                    }
                    continue;
                }
                close_matching(&mut stack, &name);
            }
        }
    }
    doc
}

/// Pops elements whose end tag is implied by the arrival of `tag`.
fn close_implied(stack: &mut Vec<(NodeId, String)>, tag: &str) {
    let closes = implied_closes(tag);
    if closes.is_empty() {
        return;
    }
    while stack.len() > 1 {
        let top = stack.last().expect("len > 1").1.as_str();
        if closes.contains(&top) {
            stack.pop();
        } else {
            break;
        }
    }
}

/// Handles an explicit end tag: pops to the matching open element if one
/// is in scope; ignores the end tag otherwise (browser-style recovery).
fn close_matching(stack: &mut Vec<(NodeId, String)>, tag: &str) {
    // Find the matching element, not crossing scope barriers other than
    // the element itself.
    let mut match_at = None;
    for (i, (_, open)) in stack.iter().enumerate().skip(1).rev() {
        if open == tag {
            match_at = Some(i);
            break;
        }
        if is_scope_barrier(open) {
            break;
        }
    }
    if let Some(i) = match_at {
        stack.truncate(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags_under(doc: &Document, root: NodeId) -> Vec<String> {
        doc.children(root)
            .iter()
            .filter_map(|&c| doc.tag(c).map(str::to_string))
            .collect()
    }

    #[test]
    fn simple_nesting() {
        let doc = parse("<form><b>Author</b><input type=text></form>");
        let form = doc.elements_by_tag(doc.root(), "form")[0];
        assert_eq!(tags_under(&doc, form), vec!["b", "input"]);
        let b = doc.children(form)[0];
        assert_eq!(doc.text_content(b), "Author");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<p>a<br>b<img src=x>c</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        // a, br, b, img, c are all siblings under <p>.
        assert_eq!(doc.children(p).len(), 5);
        assert_eq!(doc.text_content(p), "abc");
    }

    #[test]
    fn options_implicitly_closed() {
        let doc = parse("<select><option>One<option>Two<option>Three</select>");
        let select = doc.elements_by_tag(doc.root(), "select")[0];
        let opts = doc.elements_by_tag(select, "option");
        assert_eq!(opts.len(), 3);
        assert_eq!(doc.text_content(opts[0]), "One");
        assert_eq!(doc.text_content(opts[2]), "Three");
        // Options are flat siblings, not nested.
        assert_eq!(doc.children(select).len(), 3);
    }

    #[test]
    fn table_cells_implicitly_closed() {
        let doc = parse("<table><tr><td>A<td>B<tr><td>C</table>");
        let table = doc.elements_by_tag(doc.root(), "table")[0];
        let rows = doc.elements_by_tag(table, "tr");
        assert_eq!(rows.len(), 2);
        assert_eq!(doc.elements_by_tag(rows[0], "td").len(), 2);
        assert_eq!(doc.elements_by_tag(rows[1], "td").len(), 1);
        assert_eq!(doc.text_content(rows[0]), "AB");
    }

    #[test]
    fn tbody_closes_rows() {
        let doc = parse("<table><tbody><tr><td>A</td></tr><tbody><tr><td>B</table>");
        let bodies = doc.elements_by_tag(doc.root(), "tbody");
        assert_eq!(bodies.len(), 2);
    }

    #[test]
    fn paragraph_closes_paragraph() {
        let doc = parse("<p>first<p>second");
        let ps = doc.elements_by_tag(doc.root(), "p");
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "first");
        assert_eq!(doc.parent(ps[1]), Some(doc.root()), "not nested");
    }

    #[test]
    fn list_items_implicitly_closed() {
        let doc = parse("<ul><li>a<li>b</ul>");
        let ul = doc.elements_by_tag(doc.root(), "ul")[0];
        assert_eq!(doc.elements_by_tag(ul, "li").len(), 2);
        assert_eq!(doc.children(ul).len(), 2);
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse("<form></table><input></form>");
        let form = doc.elements_by_tag(doc.root(), "form")[0];
        assert_eq!(doc.elements_by_tag(form, "input").len(), 1);
    }

    #[test]
    fn end_tag_does_not_cross_table_barrier() {
        // The </form> inside the table cell must not close the outer form.
        let doc = parse("<div><table><tr><td></div><input name=q></table>");
        let td = doc.elements_by_tag(doc.root(), "td")[0];
        assert_eq!(doc.elements_by_tag(td, "input").len(), 1);
    }

    #[test]
    fn script_and_style_subtrees_dropped() {
        let doc = parse("<script>var x = '<p>';</script><style>p{}</style><b>keep</b>");
        assert!(doc.elements_by_tag(doc.root(), "script").is_empty());
        assert!(doc.elements_by_tag(doc.root(), "style").is_empty());
        assert_eq!(doc.text_content(doc.root()), "keep");
    }

    #[test]
    fn unclosed_elements_survive_to_eof() {
        let doc = parse("<form><table><tr><td><input name=a>");
        assert_eq!(doc.elements_by_tag(doc.root(), "input").len(), 1);
        let input = doc.elements_by_tag(doc.root(), "input")[0];
        assert!(doc.ancestor_with_tag(input, "form").is_some());
        assert!(doc.ancestor_with_tag(input, "td").is_some());
    }

    #[test]
    fn attributes_preserved_through_build() {
        let doc = parse(r#"<input type="radio" name="fmt" value="hardcover" checked>"#);
        let input = doc.elements_by_tag(doc.root(), "input")[0];
        assert_eq!(doc.attr(input, "type"), Some("radio"));
        assert_eq!(doc.attr(input, "value"), Some("hardcover"));
        assert_eq!(doc.attr(input, "checked"), Some(""));
        assert_eq!(doc.attr(input, "missing"), None);
    }

    #[test]
    fn nested_tables() {
        let doc = parse(
            "<table><tr><td><table><tr><td>inner</td></tr></table></td><td>right</td></tr></table>",
        );
        let tables = doc.elements_by_tag(doc.root(), "table");
        assert_eq!(tables.len(), 2);
        let outer_row = doc.elements_by_tag(tables[0], "tr")[0];
        // Outer row has two cells even though the first contains a table.
        let cells: Vec<NodeId> = doc
            .children(outer_row)
            .iter()
            .copied()
            .filter(|&c| doc.tag(c) == Some("td"))
            .collect();
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn textarea_content_is_text() {
        let doc = parse("<textarea name=c>default text</textarea>");
        let ta = doc.elements_by_tag(doc.root(), "textarea")[0];
        assert_eq!(doc.text_content(ta), "default text");
    }
}
