//! # metaform-html
//!
//! From-scratch HTML parsing substrate for the `metaform` form
//! extractor. The paper's tokenizer "builds on a layout engine for
//! rendering HTML" via Internet Explorer's DOM API (§3.4); this crate is
//! the first half of our replacement: a lenient lexer
//! ([`lexer::lex`]), a tree builder ([`parser::parse`]), and an
//! arena-based [`dom::Document`] the layout engine walks.
//!
//! The dialect covered is the one 2004-era query forms actually used:
//! tables, inline formatting, forms and their widgets, with
//! browser-style recovery for unclosed/mismatched tags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod entity;
pub mod lexer;
pub mod parser;

pub use dom::{Document, Node, NodeData, NodeId};
pub use parser::parse;
