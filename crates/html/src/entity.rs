//! Character-entity decoding.
//!
//! Query forms of the era lean on a small set of named entities
//! (`&nbsp;` for spacing above all) plus numeric references. We decode
//! the common named set and all numeric forms; unknown entities are left
//! verbatim, which is what browsers of the time did.

/// Named entities we resolve, sorted by name for binary search.
static NAMED: &[(&str, char)] = &[
    ("AMP", '&'),
    ("GT", '>'),
    ("LT", '<'),
    ("QUOT", '"'),
    ("amp", '&'),
    ("apos", '\''),
    ("bull", '\u{2022}'),
    ("cent", '¢'),
    ("copy", '©'),
    ("deg", '°'),
    ("divide", '÷'),
    ("euro", '€'),
    ("frac12", '½'),
    ("frac14", '¼'),
    ("gt", '>'),
    ("hellip", '\u{2026}'),
    ("laquo", '«'),
    ("ldquo", '\u{201C}'),
    ("lsquo", '\u{2018}'),
    ("lt", '<'),
    ("mdash", '\u{2014}'),
    ("middot", '·'),
    ("nbsp", '\u{00A0}'),
    ("ndash", '\u{2013}'),
    ("para", '¶'),
    ("plusmn", '±'),
    ("pound", '£'),
    ("quot", '"'),
    ("raquo", '»'),
    ("rdquo", '\u{201D}'),
    ("reg", '®'),
    ("rsquo", '\u{2019}'),
    ("sect", '§'),
    ("times", '×'),
    ("trade", '\u{2122}'),
    ("yen", '¥'),
];

fn lookup_named(name: &str) -> Option<char> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| NAMED[i].1)
}

/// Decodes character references in `input`.
///
/// Handles `&name;`, `&#123;`, and `&#x1F;` forms. A reference without a
/// terminating `;`, or with an unknown name, is emitted verbatim.
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 sequence starting here.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating ';' within a reasonable window.
        let window_end = (i + 32).min(bytes.len());
        match bytes[i + 1..window_end].iter().position(|&b| b == b';') {
            Some(rel) => {
                let body = &input[i + 1..i + 1 + rel];
                if let Some(ch) = decode_reference(body) {
                    out.push(ch);
                    i += rel + 2;
                } else {
                    out.push('&');
                    i += 1;
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

fn decode_reference(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        // Windows-1252 remapping of the C1 range, as browsers do.
        let code = match code {
            0x91 => 0x2018,
            0x92 => 0x2019,
            0x93 => 0x201C,
            0x94 => 0x201D,
            0x96 => 0x2013,
            0x97 => 0x2014,
            other => other,
        };
        char::from_u32(code)
    } else {
        lookup_named(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(decode_entities("Author name"), "Author name");
        assert_eq!(decode_entities(""), "");
    }

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("Barnes &amp; Noble"), "Barnes & Noble");
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("price&nbsp;range"), "price\u{00A0}range");
        assert_eq!(decode_entities("&copy; 2004"), "© 2004");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#X2014;"), "\u{2014}");
    }

    #[test]
    fn windows_1252_c1_remap() {
        assert_eq!(decode_entities("&#146;"), "\u{2019}");
        assert_eq!(decode_entities("&#151;"), "\u{2014}");
    }

    #[test]
    fn malformed_references_kept_verbatim() {
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("&bogus;"), "&bogus;");
        assert_eq!(decode_entities("a & b"), "a & b");
        assert_eq!(decode_entities("tail&"), "tail&");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
    }

    #[test]
    fn multibyte_text_survives() {
        assert_eq!(
            decode_entities("caf\u{00E9} &amp; th\u{00E9}"),
            "café & thé"
        );
    }
}
