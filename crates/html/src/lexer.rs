//! HTML token stream.
//!
//! A small, lenient lexer in the spirit of 2004-era browsers: tag and
//! attribute names are lowercased, attribute values may be single-quoted,
//! double-quoted, or bare, entities are decoded in text and attribute
//! values, and raw-text elements (`script`, `style`, `textarea`,
//! `title`) swallow their content up to the matching close tag.

use crate::entity::decode_entities;

/// One lexical HTML token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HtmlToken {
    /// `<name attr="v" …>`; `self_closing` records a trailing `/`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order; names lowercased, values decoded.
        attrs: Vec<(String, String)>,
        /// `<br/>`-style self-closing marker.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// Character data between tags (entities decoded, whitespace kept).
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
    /// `<!DOCTYPE …>` contents.
    Doctype(String),
}

/// Elements whose content is raw text up to the matching end tag.
fn is_raw_text(tag: &str) -> bool {
    matches!(tag, "script" | "style" | "textarea" | "title")
}

/// Lexes `input` into a token vector. Never fails: malformed markup
/// degrades to text, as in lenient browser parsing.
pub fn lex(input: &str) -> Vec<HtmlToken> {
    Lexer {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<HtmlToken>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<HtmlToken> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.lex_markup();
            } else {
                self.lex_text();
            }
        }
        self.out
    }

    fn lex_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.out.push(HtmlToken::Text(decode_entities(raw)));
        }
    }

    fn lex_markup(&mut self) {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        let rest = &self.bytes[self.pos + 1..];
        match rest.first() {
            Some(b'!') => self.lex_declaration(),
            Some(b'/') => self.lex_end_tag(),
            Some(c) if c.is_ascii_alphabetic() => self.lex_start_tag(),
            _ => {
                // Stray '<' — treat as text.
                self.out.push(HtmlToken::Text("<".to_string()));
                self.pos += 1;
            }
        }
    }

    fn lex_declaration(&mut self) {
        if self.input[self.pos..].starts_with("<!--") {
            let body_start = self.pos + 4;
            match self.input[body_start..].find("-->") {
                Some(rel) => {
                    self.out.push(HtmlToken::Comment(
                        self.input[body_start..body_start + rel].to_string(),
                    ));
                    self.pos = body_start + rel + 3;
                }
                None => {
                    // Unterminated comment swallows the rest.
                    self.out
                        .push(HtmlToken::Comment(self.input[body_start..].to_string()));
                    self.pos = self.bytes.len();
                }
            }
            return;
        }
        // <!DOCTYPE …> or other declaration: skip to '>'.
        let body_start = self.pos + 2;
        let end = self.input[body_start..]
            .find('>')
            .map(|r| body_start + r)
            .unwrap_or(self.bytes.len());
        self.out.push(HtmlToken::Doctype(
            self.input[body_start..end].trim().to_string(),
        ));
        self.pos = (end + 1).min(self.bytes.len());
    }

    fn lex_end_tag(&mut self) {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        let name = self.input[name_start..i]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_lowercase();
        if !name.is_empty() {
            self.out.push(HtmlToken::EndTag { name });
        }
        self.pos = (i + 1).min(self.bytes.len());
    }

    fn lex_start_tag(&mut self) {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len()
            && !matches!(self.bytes[i], b' ' | b'\t' | b'\n' | b'\r' | b'>' | b'/')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_lowercase();
        self.pos = i;
        let (attrs, self_closing) = self.lex_attributes();
        let raw = is_raw_text(&name) && !self_closing;
        self.out.push(HtmlToken::StartTag {
            name: name.clone(),
            attrs,
            self_closing,
        });
        if raw {
            self.lex_raw_text(&name);
        }
    }

    /// Consumes attributes up to and including the closing `>`.
    fn lex_attributes(&mut self) -> (Vec<(String, String)>, bool) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some(attr) = self.lex_one_attribute() {
                        attrs.push(attr);
                    }
                }
            }
        }
        (attrs, self_closing)
    }

    fn lex_one_attribute(&mut self) -> Option<(String, String)> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !matches!(
                self.bytes[self.pos],
                b'=' | b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            // Stray character we cannot parse; skip it to guarantee progress.
            self.pos += 1;
            return None;
        }
        let name = self.input[start..self.pos].to_lowercase();
        self.skip_whitespace();
        if self.bytes.get(self.pos) != Some(&b'=') {
            return Some((name, String::new())); // boolean attribute
        }
        self.pos += 1; // '='
        self.skip_whitespace();
        let value = match self.bytes.get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let v = &self.input[vstart..self.pos];
                self.pos = (self.pos + 1).min(self.bytes.len());
                v
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.bytes.len()
                    && !matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r' | b'>')
                {
                    self.pos += 1;
                }
                &self.input[vstart..self.pos]
            }
        };
        Some((name, decode_entities(value)))
    }

    /// After a raw-text start tag: swallow content until `</name`.
    fn lex_raw_text(&mut self, name: &str) {
        let lower = self.input[self.pos..].to_lowercase();
        let close = format!("</{name}");
        let rel = lower.find(&close).unwrap_or(lower.len());
        let content = &self.input[self.pos..self.pos + rel];
        if !content.is_empty() {
            // textarea/title content is real text; script/style is not,
            // but the tree builder drops those nodes anyway.
            self.out.push(HtmlToken::Text(decode_entities(content)));
        }
        self.pos += rel;
        if self.pos < self.bytes.len() {
            self.lex_end_tag_at_current_pos(name);
        }
    }

    fn lex_end_tag_at_current_pos(&mut self, name: &str) {
        // We are looking at "</name ... >".
        let end = self.input[self.pos..]
            .find('>')
            .map(|r| self.pos + r)
            .unwrap_or(self.bytes.len());
        self.out.push(HtmlToken::EndTag {
            name: name.to_string(),
        });
        self.pos = (end + 1).min(self.bytes.len());
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> HtmlToken {
        HtmlToken::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tag_text_tag() {
        let toks = lex("<b>Author</b>");
        assert_eq!(
            toks,
            vec![
                start("b", &[]),
                HtmlToken::Text("Author".into()),
                HtmlToken::EndTag { name: "b".into() },
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let toks = lex(r#"<input type="text" name='q' size=20 disabled>"#);
        assert_eq!(
            toks,
            vec![start(
                "input",
                &[
                    ("type", "text"),
                    ("name", "q"),
                    ("size", "20"),
                    ("disabled", "")
                ]
            )]
        );
    }

    #[test]
    fn names_are_lowercased() {
        let toks = lex("<INPUT TYPE=RADIO VALUE=Yes>");
        assert_eq!(
            toks,
            vec![start("input", &[("type", "RADIO"), ("value", "Yes")])]
        );
    }

    #[test]
    fn self_closing_tag() {
        let toks = lex("<br/>");
        assert_eq!(
            toks,
            vec![HtmlToken::StartTag {
                name: "br".into(),
                attrs: vec![],
                self_closing: true,
            }]
        );
    }

    #[test]
    fn comments_and_doctype() {
        let toks = lex("<!DOCTYPE html><!-- hi --><p>x</p>");
        assert_eq!(toks[0], HtmlToken::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], HtmlToken::Comment(" hi ".into()));
        assert_eq!(toks[2], start("p", &[]));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = lex(r#"<option value="B&amp;N">Barnes &amp; Noble</option>"#);
        assert_eq!(toks[0], start("option", &[("value", "B&N")]));
        assert_eq!(toks[1], HtmlToken::Text("Barnes & Noble".into()));
    }

    #[test]
    fn textarea_is_raw_text() {
        let toks = lex("<textarea><b>not bold</b></textarea>");
        assert_eq!(
            toks,
            vec![
                start("textarea", &[]),
                HtmlToken::Text("<b>not bold</b>".into()),
                HtmlToken::EndTag {
                    name: "textarea".into()
                },
            ]
        );
    }

    #[test]
    fn script_content_swallowed_as_one_text() {
        let toks = lex("<script>if (a<b) { x(); }</script><p>y</p>");
        assert_eq!(toks[0], start("script", &[]));
        assert_eq!(toks[1], HtmlToken::Text("if (a<b) { x(); }".into()));
        assert_eq!(
            toks[2],
            HtmlToken::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = lex("a < b");
        let joined: String = toks
            .iter()
            .map(|t| match t {
                HtmlToken::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(joined, "a < b");
    }

    #[test]
    fn unterminated_structures_do_not_hang() {
        assert!(!lex("<!-- never closed").is_empty());
        assert!(!lex("<input type=").is_empty());
        assert!(lex("</>").is_empty());
        let _ = lex("<");
    }

    #[test]
    fn end_tag_with_junk_space() {
        let toks = lex("</ p >");
        assert_eq!(toks, vec![HtmlToken::EndTag { name: "p".into() }]);
    }
}
