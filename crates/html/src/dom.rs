//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` and refer to each other by [`NodeId`],
//! which keeps the tree cheap to build and traverse and trivially
//! borrow-checker-friendly for the layout engine's multiple passes.

use std::fmt;

/// Index of a node within its [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeData {
    /// The synthetic document root.
    Document,
    /// An element with lowercased tag name and source-ordered attributes.
    Element {
        /// Lowercased tag name (`input`, `td`, …).
        tag: String,
        /// `(name, value)` pairs; names lowercased, values entity-decoded.
        attrs: Vec<(String, String)>,
    },
    /// A text node (entities already decoded).
    Text(String),
}

/// One DOM node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Payload.
    pub data: NodeData,
    /// Parent id; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                data: NodeData::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the arena (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Appends a new element under `parent`, returning its id.
    pub fn create_element(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.push_node(
            parent,
            NodeData::Element {
                tag: tag.into(),
                attrs,
            },
        )
    }

    /// Appends a new text node under `parent`, returning its id.
    pub fn create_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.push_node(parent, NodeData::Text(text.into()))
    }

    fn push_node(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Tag name when the node is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Attribute value (attributes are stored lowercased).
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Text content when the node is a text node.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// All descendant elements with the given tag, in document order.
    pub fn elements_by_tag<'a>(&'a self, root: NodeId, tag: &'a str) -> Vec<NodeId> {
        self.descendants(root)
            .filter(|&n| self.tag(n) == Some(tag))
            .collect()
    }

    /// Concatenated text of all text descendants (no separators).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeData::Text(t) = &self.node(n).data {
                out.push_str(t);
            }
        }
        out
    }

    /// Nearest ancestor (excluding `id` itself) with the given tag.
    pub fn ancestor_with_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        let mut cur = self.parent(id);
        while let Some(n) = cur {
            if self.tag(n) == Some(tag) {
                return Some(n);
            }
            cur = self.parent(n);
        }
        None
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over a subtree in pre-order.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children reversed so the leftmost is visited first.
        for &c in self.doc.children(next).iter().rev() {
            self.stack.push(c);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let form = doc.create_element(doc.root(), "form", vec![("action".into(), "/q".into())]);
        let b = doc.create_element(form, "b", vec![]);
        doc.create_text(b, "Author");
        let input = doc.create_element(
            form,
            "input",
            vec![("type".into(), "text".into()), ("name".into(), "q".into())],
        );
        (doc, form, b, input)
    }

    #[test]
    fn build_and_navigate() {
        let (doc, form, b, input) = sample();
        assert_eq!(doc.tag(form), Some("form"));
        assert_eq!(doc.attr(form, "action"), Some("/q"));
        assert_eq!(doc.attr(input, "type"), Some("text"));
        assert_eq!(doc.children(form), &[b, input]);
        assert_eq!(doc.parent(b), Some(form));
        assert_eq!(doc.parent(doc.root()), None);
    }

    #[test]
    fn preorder_descendants() {
        let (doc, form, b, input) = sample();
        let order: Vec<NodeId> = doc.descendants(form).collect();
        assert_eq!(order.len(), 4); // form, b, text, input
        assert_eq!(order[0], form);
        assert_eq!(order[1], b);
        assert_eq!(order[3], input);
    }

    #[test]
    fn text_content_concatenates() {
        let (doc, form, ..) = sample();
        assert_eq!(doc.text_content(form), "Author");
    }

    #[test]
    fn elements_by_tag_finds_nested() {
        let (doc, form, _, input) = sample();
        assert_eq!(doc.elements_by_tag(doc.root(), "input"), vec![input]);
        assert_eq!(doc.elements_by_tag(form, "form"), vec![form]);
    }

    #[test]
    fn ancestor_lookup() {
        let (doc, form, b, _) = sample();
        let text = doc.children(b)[0];
        assert_eq!(doc.ancestor_with_tag(text, "form"), Some(form));
        assert_eq!(doc.ancestor_with_tag(text, "table"), None);
        assert_eq!(doc.ancestor_with_tag(form, "form"), None, "excludes self");
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 1);
        assert_eq!(doc.text_content(doc.root()), "");
    }
}
