//! Machine-readable failure telemetry for corpus-scale batch runs.
//!
//! [`FailureRecord`] is the whole story of one page that failed at
//! least once under `FormExtractor::extract_batch_adaptive`: which
//! page, what went wrong, how many attempts ran, under what final
//! budgets, and the parse counters of every attempt. The records
//! serialize to JSON ([`failures_to_json`]) and CSV
//! ([`failures_to_csv`]) next to the experiment `--csv` output, and
//! parse back with [`failures_from_json`] so triage tooling (and the
//! round-trip test in `scripts/check.sh`) can consume them without a
//! JSON dependency — the workspace is offline, so both directions are
//! implemented here.
//!
//! JSON schema (one array of records):
//!
//! ```json
//! [{
//!   "page_index": 7,
//!   "error": "truncated",
//!   "message": null,
//!   "attempts": 2,
//!   "outcome": "recovered",
//!   "final_max_instances": 4000,
//!   "final_deadline_ms": null,
//!   "salvage_covered": null,
//!   "salvage_tokens": null,
//!   "partial_roots": ["HQI"],
//!   "arrangements": ["tb attr"],
//!   "attempt_log": [{
//!     "attempt": 0, "max_instances": 2000, "deadline_ms": null,
//!     "error": "truncated", "tokens": 22, "created": 2000,
//!     "covered": 4, "elapsed_us": 713
//!   }]
//! }]
//! ```
//!
//! `salvage_covered`/`salvage_tokens` are present (non-null) exactly
//! when `outcome` is `"salvaged"`: the page was served its partial
//! grammar-path report (`Provenance::PartialSalvage`), and the pair
//! gives its condition-coverage ratio over the page's tokens.
//!
//! `partial_roots`/`arrangements` are the grammar-induction evidence
//! of salvaged and degraded pages: the maximal partial trees' root
//! symbols, and the recurring unparsed token arrangements
//! (`metaform_grammar::induce` signatures) mined from the served
//! report's residue. Both are empty for recovered pages.

use crate::batch::BatchStats;
use crate::error::ExtractError;
use std::fmt::Write as _;
use std::time::Duration;

/// The failure taxonomy as a flat kind — [`ExtractError`] without the
/// page attribution, for records that carry the index separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pipeline panicked (caught at the page boundary).
    Panicked,
    /// The parse hit the instance cap.
    Truncated,
    /// The parse blew its wall-clock deadline.
    Timeout,
    /// The page tokenized to nothing.
    EmptyForm,
    /// The batch-level cancel token fired.
    Cancelled,
}

impl ErrorKind {
    /// The kind of a typed extraction error.
    pub fn of(err: &ExtractError) -> Self {
        match err {
            ExtractError::Panicked { .. } => ErrorKind::Panicked,
            ExtractError::Truncated { .. } => ErrorKind::Truncated,
            ExtractError::Timeout { .. } => ErrorKind::Timeout,
            ExtractError::EmptyForm { .. } => ErrorKind::EmptyForm,
            ExtractError::Cancelled { .. } => ErrorKind::Cancelled,
        }
    }

    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Panicked => "panicked",
            ErrorKind::Truncated => "truncated",
            ErrorKind::Timeout => "timeout",
            ErrorKind::EmptyForm => "empty_form",
            ErrorKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "panicked" => ErrorKind::Panicked,
            "truncated" => ErrorKind::Truncated,
            "timeout" => ErrorKind::Timeout,
            "empty_form" => ErrorKind::EmptyForm,
            "cancelled" => ErrorKind::Cancelled,
            other => return Err(format!("unknown error kind {other:?}")),
        })
    }
}

/// How one attempt interacted with the extractor's attached
/// [`crate::ParseCache`] — absent entirely when no cache is attached
/// or the attempt never produced a grammar-path result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Exact fingerprint hit: the cached report was replayed, no parse
    /// ran ([`crate::Provenance::CacheHit`]).
    Hit,
    /// A similar cached visit seeded a delta re-parse
    /// ([`crate::Provenance::DeltaReparse`]).
    Delta,
    /// The cache was consulted but the page parsed cold
    /// ([`crate::Provenance::Grammar`] with a cache attached).
    Miss,
}

impl CacheOutcome {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Delta => "delta",
            CacheOutcome::Miss => "miss",
        }
    }

    /// Inverse of [`CacheOutcome::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "hit" => CacheOutcome::Hit,
            "delta" => CacheOutcome::Delta,
            "miss" => CacheOutcome::Miss,
            other => return Err(format!("unknown cache outcome {other:?}")),
        })
    }
}

/// How a failed page's story ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureOutcome {
    /// A retry under a larger budget succeeded; the final extraction
    /// is a full grammar-path result.
    Recovered,
    /// Every attempt failed, but the last attempt's maximized partial
    /// grammar-path report dominated the proximity baseline and was
    /// served (`Provenance::PartialSalvage`). The record's
    /// `salvage_covered`/`salvage_tokens` carry its coverage.
    Salvaged,
    /// Every attempt failed; the page was served by the proximity
    /// baseline (`Provenance::BaselineFallback`).
    Degraded,
    /// The batch was cancelled before the page could finish; it was
    /// served by the baseline (or its salvaged partial, when one
    /// dominated — then the outcome is `Salvaged`) and never retried.
    Cancelled,
}

impl FailureOutcome {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureOutcome::Recovered => "recovered",
            FailureOutcome::Salvaged => "salvaged",
            FailureOutcome::Degraded => "degraded",
            FailureOutcome::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`FailureOutcome::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "recovered" => FailureOutcome::Recovered,
            "salvaged" => FailureOutcome::Salvaged,
            "degraded" => FailureOutcome::Degraded,
            "cancelled" => FailureOutcome::Cancelled,
            other => return Err(format!("unknown outcome {other:?}")),
        })
    }
}

/// Parse counters of one attempt on one page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Attempt number, 0 = the batch's first pass.
    pub attempt: usize,
    /// Instance cap the attempt ran under.
    pub max_instances: usize,
    /// Wall-clock deadline the attempt ran under, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// What went wrong, or `None` for the succeeding attempt.
    pub error: Option<ErrorKind>,
    /// How the attempt interacted with the parse cache (`None` when no
    /// cache was attached or the attempt failed).
    pub cache: Option<CacheOutcome>,
    /// Tokens the page produced (0 when no parse ran).
    pub tokens: usize,
    /// Instances the parse created before it ended.
    pub created: usize,
    /// Condition coverage of the attempt's report
    /// ([`crate::condition_coverage`]): tokens claimed by extracted
    /// conditions — of the full report on success, of the salvage
    /// candidate on a budget failure. `None` when no parse ran. The
    /// per-attempt coverage trajectory budget refitting reads.
    pub covered: Option<usize>,
    /// Parse wall-clock time in microseconds (0 when no parse ran).
    /// The one nondeterministic field — comparisons across runs should
    /// mask it (see `FailureRecord::normalized`).
    pub elapsed_us: u64,
}

/// The whole story of one page that failed at least once during an
/// adaptive batch run (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureRecord {
    /// The page's index in the *original* batch — stable across
    /// retries, which run on subsets.
    pub page_index: usize,
    /// Kind of the last error the page produced.
    pub error: ErrorKind,
    /// Panic payload, when the error was a panic.
    pub message: Option<String>,
    /// Total attempts run (1 = never retried).
    pub attempts: usize,
    /// How the story ended.
    pub outcome: FailureOutcome,
    /// Instance cap of the last attempt.
    pub final_max_instances: usize,
    /// Deadline of the last attempt, in milliseconds.
    pub final_deadline_ms: Option<u64>,
    /// Condition coverage of the served salvage report — present
    /// exactly when [`FailureRecord::outcome`] is
    /// [`FailureOutcome::Salvaged`].
    pub salvage_covered: Option<usize>,
    /// Token count of the salvaged page (the denominator of the
    /// salvage coverage ratio) — present exactly when the outcome is
    /// [`FailureOutcome::Salvaged`].
    pub salvage_tokens: Option<usize>,
    /// Root symbols of the served report's maximal partial trees —
    /// how far the grammar path got before the page was salvaged or
    /// degraded. Empty for recovered pages.
    pub partial_roots: Vec<String>,
    /// Recurring unparsed token arrangement signatures mined from the
    /// served report's residue (`metaform_grammar::induce`) — the
    /// induction loop's Collect evidence. Empty for recovered pages.
    pub arrangements: Vec<String>,
    /// Per-attempt parse counters, in attempt order.
    pub attempt_log: Vec<AttemptRecord>,
}

impl FailureRecord {
    /// This record with every wall-clock field zeroed — the shape two
    /// runs of the same batch agree on regardless of machine load or
    /// worker count.
    pub fn normalized(&self) -> Self {
        let mut r = self.clone();
        for a in &mut r.attempt_log {
            a.elapsed_us = 0;
        }
        r
    }
}

/// `Duration` → whole milliseconds for serialization (saturating).
pub(crate) fn duration_to_ms(d: Option<Duration>) -> Option<u64> {
    d.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

// ---------------------------------------------------------------- JSON

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(out, s);
    }
    out.push(']');
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Serializes failure records as a JSON array (pretty-printed, stable
/// field order). [`failures_from_json`] is the exact inverse.
pub fn failures_to_json(records: &[FailureRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\"page_index\": {}, ", r.page_index);
        out.push_str("\"error\": ");
        push_json_str(&mut out, r.error.as_str());
        out.push_str(", \"message\": ");
        match &r.message {
            Some(m) => push_json_str(&mut out, m),
            None => out.push_str("null"),
        }
        let _ = write!(out, ", \"attempts\": {}, ", r.attempts);
        out.push_str("\"outcome\": ");
        push_json_str(&mut out, r.outcome.as_str());
        let _ = write!(
            out,
            ", \"final_max_instances\": {}, ",
            r.final_max_instances
        );
        out.push_str("\"final_deadline_ms\": ");
        push_opt_u64(&mut out, r.final_deadline_ms);
        out.push_str(", \"salvage_covered\": ");
        push_opt_u64(&mut out, r.salvage_covered.map(|v| v as u64));
        out.push_str(", \"salvage_tokens\": ");
        push_opt_u64(&mut out, r.salvage_tokens.map(|v| v as u64));
        out.push_str(", \"partial_roots\": ");
        push_str_array(&mut out, &r.partial_roots);
        out.push_str(", \"arrangements\": ");
        push_str_array(&mut out, &r.arrangements);
        out.push_str(", \"attempt_log\": [");
        for (j, a) in r.attempt_log.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"attempt\": {}, \"max_instances\": {}, ",
                a.attempt, a.max_instances
            );
            out.push_str("\"deadline_ms\": ");
            push_opt_u64(&mut out, a.deadline_ms);
            out.push_str(", \"error\": ");
            match a.error {
                Some(kind) => push_json_str(&mut out, kind.as_str()),
                None => out.push_str("null"),
            }
            out.push_str(", \"cache\": ");
            match a.cache {
                Some(outcome) => push_json_str(&mut out, outcome.as_str()),
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ", \"tokens\": {}, \"created\": {}, ",
                a.tokens, a.created
            );
            out.push_str("\"covered\": ");
            push_opt_u64(&mut out, a.covered.map(|v| v as u64));
            let _ = write!(out, ", \"elapsed_us\": {}}}", a.elapsed_us);
        }
        if !r.attempt_log.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]}");
    }
    if !records.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Serializes failure records as CSV, one row per page, with the
/// attempt log flattened to its length (the per-attempt detail lives
/// in the JSON form). The salvage coverage pair rides at the end of
/// the row — empty on every outcome but `salvaged` — so older column
/// positions stay put.
pub fn failures_to_csv(records: &[FailureRecord]) -> String {
    let mut out = String::from(
        "page_index,error,outcome,attempts,final_max_instances,final_deadline_ms,message,salvage_covered,salvage_tokens,partial_roots,arrangements\n",
    );
    for r in records {
        let msg = r.message.as_deref().unwrap_or("");
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},\"{}\",{},{},\"{}\",\"{}\"",
            r.page_index,
            r.error.as_str(),
            r.outcome.as_str(),
            r.attempts,
            r.final_max_instances,
            r.final_deadline_ms
                .map(|v| v.to_string())
                .unwrap_or_default(),
            msg.replace('"', "\"\"").replace(['\n', '\r'], " "),
            r.salvage_covered.map(|v| v.to_string()).unwrap_or_default(),
            r.salvage_tokens.map(|v| v.to_string()).unwrap_or_default(),
            r.partial_roots.join(";").replace('"', "\"\""),
            r.arrangements.join(";").replace('"', "\"\""),
        );
    }
    out
}

/// Serializes one batch rollup as a single JSON object (stable field
/// order, one line) — the job-level status snapshot a work-queue
/// service reports while and after a batch runs. Wall-clock time is
/// carried as whole microseconds (`elapsed_us`); [`stats_from_json`]
/// is the inverse up to that sub-microsecond truncation.
pub fn stats_to_json(stats: &BatchStats) -> String {
    let mut out = String::from("{");
    let fields: [(&str, u64); 19] = [
        ("pages", stats.pages as u64),
        ("workers", stats.workers as u64),
        ("tokens", stats.tokens as u64),
        ("created", stats.created as u64),
        ("invalidated", stats.invalidated as u64),
        ("trees", stats.trees as u64),
        ("schedules_built", stats.schedules_built as u64),
        ("panicked", stats.panicked as u64),
        ("truncated", stats.truncated as u64),
        ("timed_out", stats.timed_out as u64),
        ("empty", stats.empty as u64),
        ("cancelled", stats.cancelled as u64),
        ("degraded", stats.degraded as u64),
        ("salvaged", stats.salvaged as u64),
        ("retried", stats.retried as u64),
        ("recovered", stats.recovered as u64),
        ("cache_hits", stats.cache_hits as u64),
        ("cache_delta", stats.cache_delta as u64),
        ("cache_misses", stats.cache_misses as u64),
    ];
    for (name, value) in fields {
        let _ = write!(out, "\"{name}\": {value}, ");
    }
    let _ = write!(
        out,
        "\"elapsed_us\": {}}}",
        u64::try_from(stats.elapsed.as_micros()).unwrap_or(u64::MAX)
    );
    out
}

/// Parses the output of [`stats_to_json`] back into a rollup. Lossless
/// for every counter; `elapsed` comes back at whole-microsecond
/// precision.
pub fn stats_from_json(src: &str) -> Result<BatchStats, String> {
    let mut p = JsonParser {
        bytes: src.as_bytes(),
        at: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    let usize_field =
        |name: &str| -> Result<usize, String> { Ok(root.field(name)?.num()? as usize) };
    Ok(BatchStats {
        pages: usize_field("pages")?,
        workers: usize_field("workers")?,
        tokens: usize_field("tokens")?,
        created: usize_field("created")?,
        invalidated: usize_field("invalidated")?,
        trees: usize_field("trees")?,
        schedules_built: usize_field("schedules_built")?,
        panicked: usize_field("panicked")?,
        truncated: usize_field("truncated")?,
        timed_out: usize_field("timed_out")?,
        empty: usize_field("empty")?,
        cancelled: usize_field("cancelled")?,
        degraded: usize_field("degraded")?,
        salvaged: usize_field("salvaged")?,
        retried: usize_field("retried")?,
        recovered: usize_field("recovered")?,
        cache_hits: usize_field("cache_hits")?,
        cache_delta: usize_field("cache_delta")?,
        cache_misses: usize_field("cache_misses")?,
        elapsed: Duration::from_micros(root.field("elapsed_us")?.num()?),
    })
}

/// A minimal JSON value, just enough for the failure-record schema.
enum Json {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b'n') => {
                if self.bytes[self.at..].starts_with(b"null") {
                    self.at += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.at))
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.at)),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.at)),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.at;
                while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
                    self.at += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.at])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected byte at {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad codepoint at byte {}", self.at))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let start = self.at;
                    while self
                        .bytes
                        .get(self.at)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.at])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

impl Json {
    fn field<'j>(&'j self, name: &str) -> Result<&'j Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}")),
            _ => Err(format!("not an object (looking for {name:?})")),
        }
    }

    fn num(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err("expected a number".to_string()),
        }
    }

    fn str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected a string".to_string()),
        }
    }

    fn opt_num(&self) -> Result<Option<u64>, String> {
        match self {
            Json::Null => Ok(None),
            Json::Num(n) => Ok(Some(*n)),
            _ => Err("expected a number or null".to_string()),
        }
    }

    fn str_array(&self) -> Result<Vec<String>, String> {
        match self {
            Json::Arr(items) => items.iter().map(|v| v.str().map(str::to_string)).collect(),
            _ => Err("expected an array of strings".to_string()),
        }
    }
}

/// Parses the output of [`failures_to_json`] back into records — the
/// round trip the check-script gate exercises.
pub fn failures_from_json(src: &str) -> Result<Vec<FailureRecord>, String> {
    let mut p = JsonParser {
        bytes: src.as_bytes(),
        at: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    let Json::Arr(items) = root else {
        return Err("top level must be an array".to_string());
    };
    items
        .iter()
        .map(|item| {
            let attempt_log = match item.field("attempt_log")? {
                Json::Arr(entries) => entries
                    .iter()
                    .map(|a| {
                        Ok(AttemptRecord {
                            attempt: a.field("attempt")?.num()? as usize,
                            max_instances: a.field("max_instances")?.num()? as usize,
                            deadline_ms: a.field("deadline_ms")?.opt_num()?,
                            error: match a.field("error")? {
                                Json::Null => None,
                                v => Some(ErrorKind::parse(v.str()?)?),
                            },
                            cache: match a.field("cache")? {
                                Json::Null => None,
                                v => Some(CacheOutcome::parse(v.str()?)?),
                            },
                            tokens: a.field("tokens")?.num()? as usize,
                            created: a.field("created")?.num()? as usize,
                            covered: a.field("covered")?.opt_num()?.map(|v| v as usize),
                            elapsed_us: a.field("elapsed_us")?.num()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("attempt_log must be an array".to_string()),
            };
            Ok(FailureRecord {
                page_index: item.field("page_index")?.num()? as usize,
                error: ErrorKind::parse(item.field("error")?.str()?)?,
                message: match item.field("message")? {
                    Json::Null => None,
                    v => Some(v.str()?.to_string()),
                },
                attempts: item.field("attempts")?.num()? as usize,
                outcome: FailureOutcome::parse(item.field("outcome")?.str()?)?,
                final_max_instances: item.field("final_max_instances")?.num()? as usize,
                final_deadline_ms: item.field("final_deadline_ms")?.opt_num()?,
                salvage_covered: item
                    .field("salvage_covered")?
                    .opt_num()?
                    .map(|v| v as usize),
                salvage_tokens: item.field("salvage_tokens")?.opt_num()?.map(|v| v as usize),
                partial_roots: item.field("partial_roots")?.str_array()?,
                arrangements: item.field("arrangements")?.str_array()?,
                attempt_log,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FailureRecord> {
        vec![
            FailureRecord {
                page_index: 7,
                error: ErrorKind::Truncated,
                message: None,
                attempts: 2,
                outcome: FailureOutcome::Recovered,
                final_max_instances: 4000,
                final_deadline_ms: None,
                salvage_covered: None,
                salvage_tokens: None,
                partial_roots: Vec::new(),
                arrangements: Vec::new(),
                attempt_log: vec![
                    AttemptRecord {
                        attempt: 0,
                        max_instances: 2000,
                        deadline_ms: None,
                        error: Some(ErrorKind::Truncated),
                        cache: None,
                        tokens: 22,
                        created: 2000,
                        covered: Some(4),
                        elapsed_us: 713,
                    },
                    AttemptRecord {
                        attempt: 1,
                        max_instances: 4000,
                        deadline_ms: None,
                        error: None,
                        cache: Some(CacheOutcome::Delta),
                        tokens: 22,
                        created: 3107,
                        covered: Some(22),
                        elapsed_us: 1911,
                    },
                ],
            },
            FailureRecord {
                page_index: 11,
                error: ErrorKind::Panicked,
                message: Some("boom \"quoted\"\nline2\ttabbed \\ slashed".to_string()),
                attempts: 1,
                outcome: FailureOutcome::Degraded,
                final_max_instances: 2000,
                final_deadline_ms: Some(250),
                salvage_covered: None,
                salvage_tokens: None,
                partial_roots: Vec::new(),
                arrangements: Vec::new(),
                attempt_log: vec![AttemptRecord {
                    attempt: 0,
                    max_instances: 2000,
                    deadline_ms: Some(250),
                    error: Some(ErrorKind::Panicked),
                    cache: None,
                    tokens: 0,
                    created: 0,
                    covered: None,
                    elapsed_us: 0,
                }],
            },
            FailureRecord {
                page_index: 12,
                error: ErrorKind::Cancelled,
                message: None,
                attempts: 1,
                outcome: FailureOutcome::Cancelled,
                final_max_instances: 2000,
                final_deadline_ms: Some(250),
                salvage_covered: None,
                salvage_tokens: None,
                partial_roots: Vec::new(),
                arrangements: Vec::new(),
                attempt_log: Vec::new(),
            },
            FailureRecord {
                page_index: 19,
                error: ErrorKind::Truncated,
                message: None,
                attempts: 2,
                outcome: FailureOutcome::Salvaged,
                final_max_instances: 4000,
                final_deadline_ms: None,
                salvage_covered: Some(17),
                salvage_tokens: Some(22),
                partial_roots: vec!["HQI".to_string(), "CP".to_string()],
                arrangements: vec!["tb attr".to_string()],
                attempt_log: vec![AttemptRecord {
                    attempt: 1,
                    max_instances: 4000,
                    deadline_ms: None,
                    error: Some(ErrorKind::Truncated),
                    cache: None,
                    tokens: 22,
                    created: 4000,
                    covered: Some(17),
                    elapsed_us: 902,
                }],
            },
        ]
    }

    #[test]
    fn json_round_trips_byte_exact_records() {
        let records = sample();
        let json = failures_to_json(&records);
        let parsed = failures_from_json(&json).expect("parses");
        assert_eq!(parsed, records, "round trip must be lossless");
        // And the round trip is a fixpoint: serialize(parse(s)) == s.
        assert_eq!(failures_to_json(&parsed), json);
    }

    #[test]
    fn empty_record_set_round_trips() {
        let json = failures_to_json(&[]);
        assert_eq!(failures_from_json(&json).unwrap(), Vec::new());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(failures_from_json("").is_err());
        assert!(failures_from_json("{}").is_err(), "must be an array");
        assert!(failures_from_json("[{\"page_index\": 1}]").is_err());
        assert!(failures_from_json("[] trailing").is_err());
        assert!(failures_from_json("[{\"page_index\": \"x\"}]").is_err());
    }

    #[test]
    fn csv_has_one_row_per_record_and_escapes() {
        let csv = failures_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 records");
        assert!(lines[0].starts_with("page_index,error,outcome"));
        assert!(lines[0].ends_with(",salvage_covered,salvage_tokens,partial_roots,arrangements"));
        assert!(lines[1].starts_with("7,truncated,recovered,2,4000,,"));
        assert!(
            lines[1].ends_with(",,,\"\",\"\""),
            "no salvage or induction columns: {}",
            lines[1]
        );
        assert!(lines[2].contains("\"\""), "quotes doubled: {}", lines[2]);
        assert!(!lines[2].contains('\n'));
        assert!(lines[3].starts_with("12,cancelled,cancelled,1,2000,250,"));
        assert!(lines[4].starts_with("19,truncated,salvaged,2,4000,,"));
        assert!(
            lines[4].ends_with(",17,22,\"HQI;CP\",\"tb attr\""),
            "coverage pair + induction evidence: {}",
            lines[4]
        );
    }

    #[test]
    fn kinds_and_outcomes_round_trip_by_name() {
        for kind in [
            ErrorKind::Panicked,
            ErrorKind::Truncated,
            ErrorKind::Timeout,
            ErrorKind::EmptyForm,
            ErrorKind::Cancelled,
        ] {
            assert_eq!(ErrorKind::parse(kind.as_str()).unwrap(), kind);
        }
        assert!(ErrorKind::parse("nope").is_err());
        for outcome in [
            FailureOutcome::Recovered,
            FailureOutcome::Salvaged,
            FailureOutcome::Degraded,
            FailureOutcome::Cancelled,
        ] {
            assert_eq!(FailureOutcome::parse(outcome.as_str()).unwrap(), outcome);
        }
        assert!(FailureOutcome::parse("nope").is_err());
    }

    #[test]
    fn batch_stats_round_trip_through_json() {
        let stats = BatchStats {
            pages: 33,
            workers: 4,
            tokens: 1_234,
            created: 56_789,
            invalidated: 321,
            trees: 99,
            schedules_built: 0,
            panicked: 1,
            truncated: 2,
            timed_out: 3,
            empty: 4,
            cancelled: 5,
            degraded: 15,
            salvaged: 11,
            retried: 6,
            recovered: 7,
            cache_hits: 8,
            cache_delta: 9,
            cache_misses: 10,
            elapsed: Duration::from_micros(8_675_309),
        };
        let json = stats_to_json(&stats);
        let parsed = stats_from_json(&json).expect("parses");
        assert_eq!(parsed, stats, "whole-microsecond stats are lossless");
        assert_eq!(stats_to_json(&parsed), json, "serialization is a fixpoint");
        assert!(json.starts_with("{\"pages\": 33, "), "{json}");
        assert!(json.ends_with("\"elapsed_us\": 8675309}"), "{json}");
        // Defaults round-trip too, and garbage is rejected.
        let empty = BatchStats::default();
        assert_eq!(stats_from_json(&stats_to_json(&empty)).unwrap(), empty);
        assert!(stats_from_json("").is_err());
        assert!(stats_from_json("[]").is_err(), "must be an object");
        assert!(stats_from_json("{\"pages\": 1}").is_err(), "missing fields");
        assert!(stats_from_json(&format!("{json} trailing")).is_err());
    }

    #[test]
    fn normalized_masks_only_wall_clock() {
        let r = &sample()[0];
        let n = r.normalized();
        assert_eq!(n.attempt_log[0].elapsed_us, 0);
        assert_eq!(n.attempt_log[0].created, r.attempt_log[0].created);
        assert_eq!(n.page_index, r.page_index);
    }
}
