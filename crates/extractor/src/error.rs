//! The extraction error taxonomy — what can go wrong with *one page*
//! of a batch, kept page-local so a poison page never takes down its
//! neighbours.
//!
//! The paper's thesis is best-effort understanding: an incomplete
//! grammar still yields a maximal interpretation. This module extends
//! that stance to the serving path. Every failure mode of the pipeline
//! is named, carries the index of the page it happened on, and maps to
//! a defined degradation (see `FormExtractor::extract_batch`): the
//! caller always learns *which* page failed, *how*, and still receives
//! a capability description for every other page.

use std::fmt;

/// Why one page failed (or was budget-limited) during extraction.
///
/// Returned per page by `FormExtractor::try_extract` and
/// `FormExtractor::extract_batch_results`. The infallible APIs degrade
/// each of these to the proximity-baseline extractor instead and count
/// them in `BatchStats`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtractError {
    /// The pipeline panicked on this page. The panic was caught at the
    /// page boundary; the rest of the batch is unaffected.
    Panicked {
        /// Index of the page within the batch (0 for single-page APIs).
        page_index: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The parse hit the configured instance cap
    /// (`ParserOptions::max_instances`) and was cut short.
    Truncated {
        /// Index of the page within the batch (0 for single-page APIs).
        page_index: usize,
    },
    /// The parse blew its per-page wall-clock deadline
    /// (`ParserOptions::deadline`).
    Timeout {
        /// Index of the page within the batch (0 for single-page APIs).
        page_index: usize,
    },
    /// The page tokenized to nothing — no form content to interpret.
    EmptyForm {
        /// Index of the page within the batch (0 for single-page APIs).
        page_index: usize,
    },
    /// The batch-level cancel token fired before or while this page
    /// parsed. Unlike the budget failures this says nothing about the
    /// page itself — the caller aborted the batch — so it is never
    /// retried by the adaptive driver.
    Cancelled {
        /// Index of the page within the batch (0 for single-page APIs).
        page_index: usize,
    },
}

impl ExtractError {
    /// Index of the page this error is about.
    pub fn page_index(&self) -> usize {
        match self {
            ExtractError::Panicked { page_index, .. }
            | ExtractError::Truncated { page_index }
            | ExtractError::Timeout { page_index }
            | ExtractError::EmptyForm { page_index }
            | ExtractError::Cancelled { page_index } => *page_index,
        }
    }

    /// True for the budget failures (`Truncated`/`Timeout`) a larger
    /// budget might fix — the only errors the adaptive escalation loop
    /// ever retries. `Panicked`, `EmptyForm`, and `Cancelled` are not
    /// budget failures: re-running them with a bigger budget reproduces
    /// the same verdict (or, for `Cancelled`, fights the caller).
    pub fn is_budget_limited(&self) -> bool {
        matches!(
            self,
            ExtractError::Truncated { .. } | ExtractError::Timeout { .. }
        )
    }

    /// The same error re-attributed to `page_index` — for callers that
    /// run single-page extractions (which report page 0) inside their
    /// own batch loop.
    pub fn with_page_index(self, page_index: usize) -> Self {
        match self {
            ExtractError::Panicked { message, .. } => ExtractError::Panicked {
                page_index,
                message,
            },
            ExtractError::Truncated { .. } => ExtractError::Truncated { page_index },
            ExtractError::Timeout { .. } => ExtractError::Timeout { page_index },
            ExtractError::EmptyForm { .. } => ExtractError::EmptyForm { page_index },
            ExtractError::Cancelled { .. } => ExtractError::Cancelled { page_index },
        }
    }
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Panicked {
                page_index,
                message,
            } => {
                write!(f, "page {page_index}: pipeline panicked: {message}")
            }
            ExtractError::Truncated { page_index } => {
                write!(f, "page {page_index}: instance budget exhausted")
            }
            ExtractError::Timeout { page_index } => {
                write!(f, "page {page_index}: wall-clock deadline exceeded")
            }
            ExtractError::EmptyForm { page_index } => {
                write!(f, "page {page_index}: no form content")
            }
            ExtractError::Cancelled { page_index } => {
                write!(f, "page {page_index}: batch cancelled")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else is reported opaquely).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_page_index_and_render() {
        let e = ExtractError::Panicked {
            page_index: 7,
            message: "boom".into(),
        };
        assert_eq!(e.page_index(), 7);
        assert_eq!(e.to_string(), "page 7: pipeline panicked: boom");
        assert_eq!(ExtractError::Truncated { page_index: 1 }.page_index(), 1);
        assert!(ExtractError::Timeout { page_index: 2 }
            .to_string()
            .contains("deadline"));
        assert!(ExtractError::EmptyForm { page_index: 3 }
            .to_string()
            .contains("no form"));
        assert_eq!(e.with_page_index(9).page_index(), 9);
        assert_eq!(
            ExtractError::Timeout { page_index: 0 }.with_page_index(4),
            ExtractError::Timeout { page_index: 4 }
        );
        let c = ExtractError::Cancelled { page_index: 5 };
        assert_eq!(c.page_index(), 5);
        assert!(c.to_string().contains("cancelled"));
        assert_eq!(
            c.with_page_index(8),
            ExtractError::Cancelled { page_index: 8 }
        );
    }

    #[test]
    fn only_budget_failures_are_retryable() {
        assert!(ExtractError::Truncated { page_index: 0 }.is_budget_limited());
        assert!(ExtractError::Timeout { page_index: 0 }.is_budget_limited());
        assert!(!ExtractError::Panicked {
            page_index: 0,
            message: String::new()
        }
        .is_budget_limited());
        assert!(!ExtractError::EmptyForm { page_index: 0 }.is_budget_limited());
        assert!(!ExtractError::Cancelled { page_index: 0 }.is_budget_limited());
    }

    #[test]
    fn panic_payloads_become_text() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }
}
