//! Parallel batch extraction — the parse-many workload the
//! compile-once split exists for, with per-page fault isolation and an
//! adaptive retry driver.
//!
//! [`FormExtractor::extract_batch`] fans a slice of HTML pages out
//! over scoped worker threads. Each worker owns one
//! [`metaform_parser::ParseSession`] (recycling its chart and scratch
//! across the pages it claims) while all workers share the extractor's
//! one `Arc<CompiledGrammar>`. Pages are claimed from an atomic
//! cursor, so workers self-balance; results are written back by input
//! index, so the output order is the input order and is identical to a
//! sequential run — parallelism changes wall-clock time, nothing else.
//!
//! **Fault isolation.** Each page runs behind its own panic boundary
//! and budget checks ([`crate::ExtractError`]): a poison page — one
//! that panics the pipeline, exhausts its instance cap, or blows its
//! wall-clock deadline — yields an error slot (or a degraded
//! baseline report, on the infallible APIs) while the other N−1 pages
//! complete normally. No page can abort the batch.
//!
//! **Adaptive escalation.** A budget failure is a verdict on the
//! *budget*, not the page: the same page parses fine under a larger
//! instance cap or deadline. [`FormExtractor::extract_batch_adaptive`]
//! therefore runs a bounded escalation loop — first pass under the
//! configured budgets, then up to [`AdaptiveOptions::max_retries`]
//! retry rounds re-running *only* the budget-limited pages
//! (`Truncated`/`Timeout`) with both budgets multiplied by
//! [`AdaptiveOptions::budget_growth`] each round. `Panicked` and
//! `EmptyForm` pages are never retried (a bigger budget reproduces the
//! same verdict) and neither are `Cancelled` ones (retrying would
//! fight the caller). Pages still failing after the last round settle
//! down the degradation ladder exactly like
//! [`FormExtractor::extract_batch`]: the maximized partial
//! grammar-path report when it dominates the proximity baseline
//! ([`Provenance::PartialSalvage`]), the baseline otherwise. Because
//! the parser is deterministic, a retried page's output is
//! byte-identical to a one-shot run at the retry's budget.
//!
//! **Cancellation.** An extractor built with
//! [`FormExtractor::cancel_token`] threads the token into every parse;
//! firing it aborts in-flight parses at the next sampled budget poll
//! and makes the batch drivers skip pages not yet started. Completed
//! pages keep their results; the rest come back as
//! [`crate::ExtractError::Cancelled`] (degraded to baseline on the
//! infallible APIs).

use crate::error::ExtractError;
use crate::pipeline::{token_coverage, Attempt, Extraction, FormExtractor, Provenance};
use crate::telemetry::{
    duration_to_ms, AttemptRecord, CacheOutcome, ErrorKind, FailureOutcome, FailureRecord,
};
use metaform_parser::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Rollup of one [`FormExtractor::extract_batch_stats`] or
/// [`FormExtractor::extract_batch_adaptive`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pages extracted.
    pub pages: usize,
    /// Worker threads used (0 for an empty batch — no worker is
    /// spawned when there is nothing to claim).
    pub workers: usize,
    /// Total tokens across all pages.
    pub tokens: usize,
    /// Total instances created across all parses.
    pub created: usize,
    /// Total instances invalidated by preference enforcement.
    pub invalidated: usize,
    /// Total maximal trees selected.
    pub trees: usize,
    /// Schedules built during the batch — 0 under the compile-once
    /// contract, since every session parses under the already-compiled
    /// grammar.
    pub schedules_built: usize,
    /// Pages whose pipeline panicked (caught at the page boundary).
    pub panicked: usize,
    /// Pages whose *final* attempt hit the instance cap.
    pub truncated: usize,
    /// Pages whose *final* attempt blew the wall-clock deadline.
    pub timed_out: usize,
    /// Pages that tokenized to nothing (no form content).
    pub empty: usize,
    /// Pages abandoned because the batch-level cancel token fired.
    pub cancelled: usize,
    /// Pages served by the proximity-baseline fallback instead of the
    /// grammar pipeline (every page that still failed after retries
    /// *and* whose salvaged partial did not dominate the baseline, on
    /// the infallible APIs).
    pub degraded: usize,
    /// Pages whose final attempt was budget-limited or cancelled
    /// mid-parse but whose maximized partial grammar-path report
    /// dominated the proximity baseline and was served instead
    /// ([`Provenance::PartialSalvage`]).
    pub salvaged: usize,
    /// Retry attempts run by the adaptive driver (page-attempts, not
    /// pages: one page retried twice counts 2). Always 0 on the
    /// non-adaptive APIs.
    pub retried: usize,
    /// Pages that failed their first attempt but completed on the
    /// grammar path under an escalated budget. Always 0 on the
    /// non-adaptive APIs.
    pub recovered: usize,
    /// Pages whose report was replayed from the parse cache without
    /// parsing ([`Provenance::CacheHit`]). Always 0 without an
    /// attached [`crate::ParseCache`].
    pub cache_hits: usize,
    /// Pages parsed seeded from a similar cached visit
    /// ([`Provenance::DeltaReparse`]). Always 0 without a cache.
    pub cache_delta: usize,
    /// Pages that consulted the cache but parsed cold (grammar path
    /// with a cache attached). Always 0 without a cache.
    pub cache_misses: usize,
    /// Wall-clock time for the whole batch, retries included.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Pages that failed the grammar path, by any cause (after
    /// retries, on the adaptive API).
    pub fn failed(&self) -> usize {
        self.panicked + self.truncated + self.timed_out + self.empty + self.cancelled
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "pages={} workers={} tokens={} instances={} invalidated={} trees={} schedules_built={} panicked={} truncated={} timed_out={} empty={} cancelled={} degraded={} salvaged={} retried={} recovered={} cache_hits={} cache_delta={} cache_misses={} time={:?}",
            self.pages,
            self.workers,
            self.tokens,
            self.created,
            self.invalidated,
            self.trees,
            self.schedules_built,
            self.panicked,
            self.truncated,
            self.timed_out,
            self.empty,
            self.cancelled,
            self.degraded,
            self.salvaged,
            self.retried,
            self.recovered,
            self.cache_hits,
            self.cache_delta,
            self.cache_misses,
            self.elapsed
        )
    }
}

/// Knobs of the bounded escalation loop in
/// [`FormExtractor::extract_batch_adaptive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveOptions {
    /// Retry rounds after the first pass (0 = first pass only; the
    /// adaptive API then equals [`FormExtractor::extract_batch_stats`]
    /// plus telemetry).
    pub max_retries: usize,
    /// Multiplier applied to both per-page budgets (`max_instances`
    /// and `deadline`) each retry round, saturating. 0 is treated
    /// as 1 — budgets never shrink.
    pub budget_growth: u32,
}

impl Default for AdaptiveOptions {
    /// Two retries at doubling budgets: a page must be 4× over its
    /// first-pass budget to still fail the last round.
    fn default() -> Self {
        AdaptiveOptions {
            max_retries: 2,
            budget_growth: 2,
        }
    }
}

/// Result of one [`FormExtractor::extract_batch_adaptive`] run: the
/// per-page extractions (input order, infallible by degradation), the
/// batch rollup, and the machine-readable story of every page that
/// failed at least once.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveBatch {
    /// One extraction per input page, in input order. Pages that
    /// exhausted their retries (or were cancelled) carry
    /// [`Provenance::PartialSalvage`] when their partial report
    /// dominated the proximity baseline,
    /// [`Provenance::BaselineFallback`] otherwise.
    pub extractions: Vec<Extraction>,
    /// The rollup, including retry/recovery/cancellation counters.
    pub stats: BatchStats,
    /// One record per page that failed at least once, ordered by page
    /// index. Empty for a clean batch.
    pub failures: Vec<FailureRecord>,
}

/// One page's in-progress story while the adaptive driver runs:
/// the latest attempt (verdict, stats, salvage candidate) plus the
/// attempt trail behind it.
struct PageState {
    attempt: Attempt,
    story: PageStory,
}

/// The telemetry half of a [`PageState`] — split out so the final
/// result can be moved out while the story is still sealed into a
/// [`FailureRecord`].
struct PageStory {
    attempts: Vec<AttemptRecord>,
    /// Kind of the most recent *failed* attempt — kept separately
    /// because a recovered page's final result is `Ok`.
    last_error: Option<ErrorKind>,
    message: Option<String>,
    final_budgets: (usize, Option<Duration>),
}

impl FormExtractor {
    /// Extracts every page, in parallel, returning results in input
    /// order. Infallible by graceful degradation: a page that panics,
    /// blows a budget, or has no form comes back as a
    /// proximity-baseline report marked
    /// [`Provenance::BaselineFallback`] — one poison page never kills
    /// the batch. See the module docs for the execution model; see
    /// [`FormExtractor::extract_batch_results`] for the fallible
    /// per-page form, [`FormExtractor::extract_batch_stats`] for the
    /// rollup-reporting form, and
    /// [`FormExtractor::extract_batch_adaptive`] for the
    /// retry-escalating form.
    pub fn extract_batch(&self, pages: &[&str]) -> Vec<Extraction> {
        self.extract_batch_stats(pages).0
    }

    /// Extracts every page, in parallel, returning one
    /// `Result<Extraction, ExtractError>` per page in input order —
    /// the fault-isolated API for callers that want to see failures
    /// instead of degraded reports (e.g. to retry with a larger
    /// budget).
    pub fn extract_batch_results(&self, pages: &[&str]) -> Vec<Result<Extraction, ExtractError>> {
        let jobs: Vec<(usize, &str)> = pages.iter().copied().enumerate().collect();
        self.run_jobs(&jobs)
            .into_iter()
            .map(|attempt| attempt.result)
            .collect()
    }

    /// The batch core every driver runs on: extracts each `(page_index,
    /// html)` job in parallel, returning one [`Attempt`] per job —
    /// verdict, per-attempt parse stats, and the salvage candidate on
    /// budget failures — aligned with `jobs`. The page index travels
    /// *inside* the job, not as the slot position — retry rounds pass
    /// sparse subsets of the original batch, and every error and stat
    /// they produce must name the page's index in the original input,
    /// never its position in the subset.
    pub(crate) fn run_jobs(&self, jobs: &[(usize, &str)]) -> Vec<Attempt> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.batch_workers(jobs.len());
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Attempt>> = Vec::new();
        slots.resize_with(jobs.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut session = self.session();
                        let mut out = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= jobs.len() {
                                break;
                            }
                            let (page_index, html) = jobs[slot];
                            out.push((slot, self.attempt_in(&mut session, page_index, html)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                // Per-page panics are caught inside attempt_in, so a
                // worker-level panic should be impossible; if one
                // happens anyway, its claimed-but-unfilled slots are
                // reported as Panicked below rather than killing the
                // batch here.
                if let Ok(filled) = handle.join() {
                    for (slot, result) in filled {
                        slots[slot] = Some(result);
                    }
                }
            }
        });

        slots
            .into_iter()
            .zip(jobs)
            .map(|(slot, &(page_index, _))| {
                slot.unwrap_or_else(|| {
                    Attempt::failed(ExtractError::Panicked {
                        page_index,
                        message: "batch worker died outside the page boundary".to_string(),
                    })
                })
            })
            .collect()
    }

    /// [`FormExtractor::extract_batch`] plus a [`BatchStats`] rollup
    /// with per-cause failure accounting.
    pub fn extract_batch_stats(&self, pages: &[&str]) -> (Vec<Extraction>, BatchStats) {
        let started = Instant::now();
        if pages.is_empty() {
            // No pages, no workers: the empty batch short-circuits
            // instead of spinning up a thread with nothing to claim.
            return (Vec::new(), BatchStats::default());
        }
        let workers = self.batch_workers(pages.len());
        let jobs: Vec<(usize, &str)> = pages.iter().copied().enumerate().collect();
        let attempts = self.run_jobs(&jobs);

        let mut stats = BatchStats {
            pages: pages.len(),
            workers,
            ..Default::default()
        };
        let extractions: Vec<Extraction> = attempts
            .into_iter()
            .zip(pages)
            .map(|(attempt, page)| match attempt.result {
                Ok(extraction) => extraction,
                Err(err) => self.settle_failed(page, &err, attempt.partial, &mut stats),
            })
            .collect();
        self.roll_up(&extractions, &mut stats);
        stats.elapsed = started.elapsed();
        (extractions, stats)
    }

    /// Extracts every page under the bounded escalation loop described
    /// in the module docs: first pass at the configured budgets, then
    /// up to [`AdaptiveOptions::max_retries`] rounds re-running only
    /// the budget-limited pages (`Truncated`/`Timeout`) with budgets
    /// multiplied by [`AdaptiveOptions::budget_growth`] each round.
    /// Pages still failing after the last round degrade to the
    /// proximity baseline. Every page that failed at least once gets a
    /// [`FailureRecord`] in [`AdaptiveBatch::failures`], and every
    /// error and record names the page's index in the *input* slice,
    /// however many retry subsets it passed through.
    pub fn extract_batch_adaptive(&self, pages: &[&str], opts: &AdaptiveOptions) -> AdaptiveBatch {
        let started = Instant::now();
        if pages.is_empty() {
            return AdaptiveBatch::default();
        }
        let workers = self.batch_workers(pages.len());
        let mut stats = BatchStats {
            pages: pages.len(),
            workers,
            ..Default::default()
        };

        // First pass: the whole batch at the configured budgets.
        let jobs: Vec<(usize, &str)> = pages.iter().copied().enumerate().collect();
        let first = self.run_jobs(&jobs);
        let mut states: Vec<PageState> = first
            .into_iter()
            .map(|attempt| {
                let mut state = PageState {
                    attempt,
                    story: PageStory {
                        attempts: Vec::new(),
                        last_error: None,
                        message: None,
                        final_budgets: self.budgets(),
                    },
                };
                let cache = self.attempt_cache_outcome(&state.attempt.result);
                state.log_attempt(0, self.budgets(), cache);
                state
            })
            .collect();

        // Escalation rounds: only budget failures are worth a bigger
        // budget. Cancellation ends the loop — pages not retried keep
        // their first verdict.
        let mut round_extractor = self.clone();
        for round in 1..=opts.max_retries {
            if self.cancel().is_some_and(CancelToken::is_cancelled) {
                break;
            }
            let pending: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.attempt
                        .result
                        .as_ref()
                        .is_err_and(ExtractError::is_budget_limited)
                })
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            round_extractor = round_extractor.escalated(opts.budget_growth);
            let retry_jobs: Vec<(usize, &str)> = pending.iter().map(|&i| (i, pages[i])).collect();
            let retried = round_extractor.run_jobs(&retry_jobs);
            stats.retried += retry_jobs.len();
            for (&i, attempt) in pending.iter().zip(retried) {
                let state = &mut states[i];
                state.attempt = attempt;
                state.story.final_budgets = round_extractor.budgets();
                let cache = round_extractor.attempt_cache_outcome(&state.attempt.result);
                state.log_attempt(round, round_extractor.budgets(), cache);
            }
        }

        // Settle every page: salvage-or-degrade the still-failing
        // ones, collect the failure stories, count recoveries.
        let mut extractions = Vec::with_capacity(pages.len());
        let mut failures = Vec::new();
        for (i, state) in states.into_iter().enumerate() {
            let (attempt, story) = state.seal();
            match attempt.result {
                Ok(extraction) => {
                    if story.attempts.len() > 1 {
                        stats.recovered += 1;
                        failures.push(story.record(i, FailureOutcome::Recovered));
                    }
                    extractions.push(extraction);
                }
                Err(err) => {
                    let settled = self.settle_failed(pages[i], &err, attempt.partial, &mut stats);
                    let outcome = if settled.via == Provenance::PartialSalvage {
                        FailureOutcome::Salvaged
                    } else if matches!(err, ExtractError::Cancelled { .. }) {
                        FailureOutcome::Cancelled
                    } else {
                        FailureOutcome::Degraded
                    };
                    let mut record = story.record(i, outcome);
                    if settled.via == Provenance::PartialSalvage {
                        record.salvage_covered =
                            Some(token_coverage(&settled.report, settled.tokens.len()));
                        record.salvage_tokens = Some(settled.tokens.len());
                    }
                    // Induction evidence: how far the partial parse got
                    // and which token arrangements it left unexplained.
                    record.partial_roots = settled.partial_roots.clone();
                    record.arrangements = metaform_grammar::mine_page(
                        &settled.tokens,
                        &settled.report.missing,
                        &settled.pattern_spans,
                        &self.grammar().proximity,
                    )
                    .into_iter()
                    .map(|a| a.signature)
                    .collect();
                    extractions.push(settled);
                    failures.push(record);
                }
            }
        }
        self.roll_up(&extractions, &mut stats);
        stats.elapsed = started.elapsed();
        AdaptiveBatch {
            extractions,
            stats,
            failures,
        }
    }

    /// The single settlement site of the batch drivers for failed
    /// pages: counts the failure cause in `stats`, then serves the
    /// page via [`FormExtractor::salvage_or_degrade`] — the salvaged
    /// partial grammar-path report when it dominates the proximity
    /// baseline, the baseline otherwise. The salvaged/degraded split
    /// itself is counted in `roll_up` from the provenance marks.
    fn settle_failed(
        &self,
        page: &str,
        err: &ExtractError,
        partial: Option<Extraction>,
        stats: &mut BatchStats,
    ) -> Extraction {
        match err {
            ExtractError::Panicked { .. } => stats.panicked += 1,
            ExtractError::Truncated { .. } => stats.truncated += 1,
            ExtractError::Timeout { .. } => stats.timed_out += 1,
            ExtractError::EmptyForm { .. } => stats.empty += 1,
            ExtractError::Cancelled { .. } => stats.cancelled += 1,
        }
        self.salvage_or_degrade(page, partial)
    }

    /// Sums per-page counters into the batch rollup (shared by the
    /// stats and adaptive drivers). Cache misses are counted only when
    /// a cache is actually attached — a plain grammar extraction is
    /// not a "miss" on an extractor that never consulted anything.
    fn roll_up(&self, extractions: &[Extraction], stats: &mut BatchStats) {
        let cached = self.cache().is_some();
        for ex in extractions {
            match ex.via {
                Provenance::BaselineFallback => stats.degraded += 1,
                Provenance::PartialSalvage => stats.salvaged += 1,
                Provenance::CacheHit => stats.cache_hits += 1,
                Provenance::DeltaReparse => stats.cache_delta += 1,
                Provenance::Grammar if cached => stats.cache_misses += 1,
                Provenance::Grammar => {}
            }
            stats.tokens += ex.stats.tokens;
            stats.created += ex.stats.created;
            stats.invalidated += ex.stats.invalidated;
            stats.trees += ex.stats.trees;
            stats.schedules_built += ex.stats.schedules_built;
        }
    }

    /// The cache interaction of one settled attempt, for the per-page
    /// telemetry trail: `None` without a cache, on failures, and on
    /// degraded pages.
    fn attempt_cache_outcome(
        &self,
        result: &Result<Extraction, ExtractError>,
    ) -> Option<CacheOutcome> {
        self.cache()?;
        match result {
            Ok(ex) => match ex.via {
                Provenance::CacheHit => Some(CacheOutcome::Hit),
                Provenance::DeltaReparse => Some(CacheOutcome::Delta),
                Provenance::Grammar => Some(CacheOutcome::Miss),
                Provenance::BaselineFallback | Provenance::PartialSalvage => None,
            },
            Err(_) => None,
        }
    }

    /// Worker count for a batch of `pages` pages: the configured
    /// override or the machine's parallelism, capped by the page count.
    fn batch_workers(&self, pages: usize) -> usize {
        self.workers()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, pages)
    }
}

impl PageState {
    /// Appends this round's attempt to the trail — but only once the
    /// page has failed at least once: clean pages (the common case)
    /// carry no telemetry at all, and a recovered page's final, clean
    /// attempt is logged because a failed one precedes it.
    fn log_attempt(
        &mut self,
        round: usize,
        budgets: (usize, Option<Duration>),
        cache: Option<CacheOutcome>,
    ) {
        let error = self.attempt.result.as_ref().err().map(ErrorKind::of);
        if error.is_none() && self.story.attempts.is_empty() {
            return;
        }
        if let Some(kind) = error {
            self.story.last_error = Some(kind);
        }
        if let Err(ExtractError::Panicked { message, .. }) = &self.attempt.result {
            self.story.message = Some(message.clone());
        }
        let (tokens, created, elapsed_us) = match &self.attempt.stats {
            Some(s) => (
                s.tokens,
                s.created,
                u64::try_from(s.elapsed.as_micros()).unwrap_or(u64::MAX),
            ),
            None => (0, 0, 0),
        };
        self.story.attempts.push(AttemptRecord {
            attempt: round,
            max_instances: budgets.0,
            deadline_ms: duration_to_ms(budgets.1),
            error,
            cache,
            tokens,
            created,
            covered: self.attempt.covered(),
            elapsed_us,
        });
    }

    /// Splits the final attempt from the telemetry trail.
    fn seal(self) -> (Attempt, PageStory) {
        (self.attempt, self.story)
    }
}

impl PageStory {
    /// Seals the story into the record handed to telemetry consumers.
    fn record(self, page_index: usize, outcome: FailureOutcome) -> FailureRecord {
        FailureRecord {
            page_index,
            error: self
                .last_error
                .expect("a failure record exists only for a page that failed"),
            message: self.message,
            attempts: self.attempts.len(),
            outcome,
            final_max_instances: self.final_budgets.0,
            final_deadline_ms: duration_to_ms(self.final_budgets.1),
            salvage_covered: None,
            salvage_tokens: None,
            partial_roots: Vec::new(),
            arrangements: Vec::new(),
            attempt_log: self.attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::QAM;

    fn pages() -> Vec<String> {
        (0..12)
            .map(|i| {
                format!(
                    "<form>Field{i} <input type=text name=f{i}>\
                     <input type=submit value=Go></form>"
                )
            })
            .chain(std::iter::once(QAM.to_string()))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_in_input_order() {
        let pages = pages();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new().worker_threads(4);
        let sequential: Vec<Extraction> = refs.iter().map(|p| extractor.extract(p)).collect();
        let (batch, stats) = extractor.extract_batch_stats(&refs);
        assert_eq!(batch.len(), sequential.len());
        assert_eq!(stats.pages, refs.len());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.schedules_built, 0, "compile-once violated");
        assert_eq!(stats.failed(), 0);
        assert_eq!(stats.degraded, 0);
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(format!("{:?}", b.report), format!("{:?}", s.report));
            assert_eq!(b.tokens, s.tokens);
            assert_eq!(b.stats.created, s.stats.created);
            assert_eq!(b.via, Provenance::Grammar);
        }
    }

    #[test]
    fn single_worker_and_empty_batch_are_fine() {
        let extractor = FormExtractor::new().worker_threads(1);
        let (none, stats) = extractor.extract_batch_stats(&[]);
        assert!(none.is_empty());
        assert_eq!(stats.pages, 0);
        assert_eq!(stats.workers, 0, "empty batch spawns no worker");
        assert!(extractor.extract_batch_results(&[]).is_empty());
        let adaptive = extractor.extract_batch_adaptive(&[], &AdaptiveOptions::default());
        assert!(adaptive.extractions.is_empty());
        assert!(adaptive.failures.is_empty());
        let one = extractor.extract_batch(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].report.conditions[0].attribute, "A");
    }

    #[test]
    fn worker_count_is_capped_by_page_count() {
        let extractor = FormExtractor::new().worker_threads(64);
        let (_, stats) =
            extractor.extract_batch_stats(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn poison_page_is_isolated_and_counted() {
        let mut pages = pages();
        pages.insert(
            5,
            "<form>POISON <input type=text name=p></form>".to_string(),
        );
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new()
            .worker_threads(4)
            .inject_panic_marker("POISON");
        let results = extractor.extract_batch_results(&refs);
        assert!(matches!(
            &results[5],
            Err(ExtractError::Panicked { page_index: 5, .. })
        ));
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);

        let (batch, stats) = extractor.extract_batch_stats(&refs);
        assert_eq!(batch.len(), refs.len());
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.degraded, 1);
        assert_eq!(
            stats.truncated + stats.timed_out + stats.empty + stats.cancelled,
            0
        );
        assert_eq!(batch[5].via, Provenance::BaselineFallback);
        assert!(
            !batch[5].report.conditions.is_empty(),
            "the baseline still reads the poison page's form"
        );
    }

    #[test]
    fn adaptive_on_a_clean_batch_is_the_plain_batch() {
        let pages = pages();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new().worker_threads(2);
        let (plain, _) = extractor.extract_batch_stats(&refs);
        let adaptive = extractor.extract_batch_adaptive(&refs, &AdaptiveOptions::default());
        assert_eq!(adaptive.stats.retried, 0, "no failure, no retry");
        assert_eq!(adaptive.stats.recovered, 0);
        assert_eq!(adaptive.stats.failed(), 0);
        assert!(adaptive.failures.is_empty());
        assert_eq!(adaptive.extractions.len(), plain.len());
        for (a, p) in adaptive.extractions.iter().zip(&plain) {
            assert_eq!(format!("{:?}", a.report), format!("{:?}", p.report));
            assert_eq!(a.via, Provenance::Grammar);
        }
    }

    #[test]
    fn batch_counts_cache_outcomes() {
        use crate::cache::LruParseCache;
        let pages = pages();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        // Without a cache, the counters stay zero.
        let plain = FormExtractor::new().worker_threads(2);
        let (_, stats) = plain.extract_batch_stats(&refs);
        assert_eq!(
            (stats.cache_hits, stats.cache_delta, stats.cache_misses),
            (0, 0, 0)
        );
        // With one: the first pass misses everywhere, the revisit pass
        // hits everywhere, and the reports agree byte for byte.
        let extractor = FormExtractor::new()
            .worker_threads(2)
            .parse_cache(LruParseCache::shared());
        let (first, s1) = extractor.extract_batch_stats(&refs);
        assert_eq!(s1.cache_misses, refs.len());
        assert_eq!((s1.cache_hits, s1.cache_delta), (0, 0));
        let (second, s2) = extractor.extract_batch_stats(&refs);
        assert_eq!(s2.cache_hits, refs.len());
        assert_eq!((s2.cache_delta, s2.cache_misses), (0, 0));
        assert!(s2.summary().contains("cache_hits="));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report.to_string(), b.report.to_string());
        }
    }

    #[test]
    fn adaptive_attempt_log_carries_cache_outcomes() {
        use crate::cache::LruParseCache;
        // QAM creates ~82 instances: a cap of 50 truncates the first
        // pass and the doubled retry budget recovers it.
        let extractor = FormExtractor::new()
            .worker_threads(1)
            .max_instances(50)
            .parse_cache(LruParseCache::shared());
        let adaptive = extractor.extract_batch_adaptive(&[QAM], &AdaptiveOptions::default());
        assert_eq!(adaptive.stats.recovered, 1, "escalation recovers QAM");
        let log = &adaptive.failures[0].attempt_log;
        assert_eq!(log.first().unwrap().cache, None, "failed attempt");
        assert_eq!(
            log.last().unwrap().cache,
            Some(CacheOutcome::Miss),
            "the recovering attempt parsed cold under a cache"
        );
    }

    #[test]
    fn zero_retries_still_reports_failures() {
        let extractor = FormExtractor::new().worker_threads(1).max_instances(3);
        let adaptive = extractor.extract_batch_adaptive(
            &[QAM],
            &AdaptiveOptions {
                max_retries: 0,
                budget_growth: 2,
            },
        );
        assert_eq!(adaptive.stats.retried, 0);
        assert_eq!(adaptive.stats.truncated, 1);
        assert_eq!(adaptive.extractions[0].via, Provenance::BaselineFallback);
        assert_eq!(adaptive.failures.len(), 1);
        let record = &adaptive.failures[0];
        assert_eq!(record.attempts, 1);
        assert_eq!(record.error, ErrorKind::Truncated);
        assert_eq!(record.outcome, FailureOutcome::Degraded);
        assert_eq!(record.final_max_instances, 3);
    }
}
