//! Parallel batch extraction — the parse-many workload the
//! compile-once split exists for.
//!
//! [`FormExtractor::extract_batch`] fans a slice of HTML pages out
//! over scoped worker threads. Each worker owns one
//! [`metaform_parser::ParseSession`] (recycling its chart and scratch
//! across the pages it claims) while all workers share the extractor's
//! one `Arc<CompiledGrammar>`. Pages are claimed from an atomic
//! cursor, so workers self-balance; results are written back by input
//! index, so the output order is the input order and is identical to a
//! sequential run — parallelism changes wall-clock time, nothing else.

use crate::pipeline::{Extraction, FormExtractor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Rollup of one [`FormExtractor::extract_batch_stats`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pages extracted.
    pub pages: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Total tokens across all pages.
    pub tokens: usize,
    /// Total instances created across all parses.
    pub created: usize,
    /// Total instances invalidated by preference enforcement.
    pub invalidated: usize,
    /// Total maximal trees selected.
    pub trees: usize,
    /// Schedules built during the batch — 0 under the compile-once
    /// contract, since every session parses under the already-compiled
    /// grammar.
    pub schedules_built: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "pages={} workers={} tokens={} instances={} invalidated={} trees={} schedules_built={} time={:?}",
            self.pages,
            self.workers,
            self.tokens,
            self.created,
            self.invalidated,
            self.trees,
            self.schedules_built,
            self.elapsed
        )
    }
}

impl FormExtractor {
    /// Extracts every page, in parallel, returning results in input
    /// order. See the module docs for the execution model; see
    /// [`FormExtractor::extract_batch_stats`] for the rollup-reporting
    /// form and [`FormExtractor::worker_threads`] to fix the worker
    /// count.
    pub fn extract_batch(&self, pages: &[&str]) -> Vec<Extraction> {
        self.extract_batch_stats(pages).0
    }

    /// [`FormExtractor::extract_batch`] plus a [`BatchStats`] rollup.
    pub fn extract_batch_stats(&self, pages: &[&str]) -> (Vec<Extraction>, BatchStats) {
        let started = Instant::now();
        let workers = self
            .workers()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, pages.len().max(1));

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Extraction>> = Vec::new();
        slots.resize_with(pages.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut session = self.session();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= pages.len() {
                                break;
                            }
                            out.push((i, self.extract_in(&mut session, pages[i])));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, extraction) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(extraction);
                }
            }
        });

        let results: Vec<Extraction> = slots
            .into_iter()
            .map(|s| s.expect("every page extracted"))
            .collect();
        let mut stats = BatchStats {
            pages: pages.len(),
            workers,
            elapsed: started.elapsed(),
            ..Default::default()
        };
        for ex in &results {
            stats.tokens += ex.stats.tokens;
            stats.created += ex.stats.created;
            stats.invalidated += ex.stats.invalidated;
            stats.trees += ex.stats.trees;
            stats.schedules_built += ex.stats.schedules_built;
        }
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::QAM;

    fn pages() -> Vec<String> {
        (0..12)
            .map(|i| {
                format!(
                    "<form>Field{i} <input type=text name=f{i}>\
                     <input type=submit value=Go></form>"
                )
            })
            .chain(std::iter::once(QAM.to_string()))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_in_input_order() {
        let pages = pages();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new().worker_threads(4);
        let sequential: Vec<Extraction> = refs.iter().map(|p| extractor.extract(p)).collect();
        let (batch, stats) = extractor.extract_batch_stats(&refs);
        assert_eq!(batch.len(), sequential.len());
        assert_eq!(stats.pages, refs.len());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.schedules_built, 0, "compile-once violated");
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(format!("{:?}", b.report), format!("{:?}", s.report));
            assert_eq!(b.tokens, s.tokens);
            assert_eq!(b.stats.created, s.stats.created);
        }
    }

    #[test]
    fn single_worker_and_empty_batch_are_fine() {
        let extractor = FormExtractor::new().worker_threads(1);
        let (none, stats) = extractor.extract_batch_stats(&[]);
        assert!(none.is_empty());
        assert_eq!(stats.pages, 0);
        let one = extractor.extract_batch(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].report.conditions[0].attribute, "A");
    }

    #[test]
    fn worker_count_is_capped_by_page_count() {
        let extractor = FormExtractor::new().worker_threads(64);
        let (_, stats) =
            extractor.extract_batch_stats(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(stats.workers, 1);
    }
}
