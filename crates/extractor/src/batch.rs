//! Parallel batch extraction — the parse-many workload the
//! compile-once split exists for, with per-page fault isolation.
//!
//! [`FormExtractor::extract_batch`] fans a slice of HTML pages out
//! over scoped worker threads. Each worker owns one
//! [`metaform_parser::ParseSession`] (recycling its chart and scratch
//! across the pages it claims) while all workers share the extractor's
//! one `Arc<CompiledGrammar>`. Pages are claimed from an atomic
//! cursor, so workers self-balance; results are written back by input
//! index, so the output order is the input order and is identical to a
//! sequential run — parallelism changes wall-clock time, nothing else.
//!
//! **Fault isolation.** Each page runs behind its own panic boundary
//! and budget checks ([`crate::ExtractError`]): a poison page — one
//! that panics the pipeline, exhausts its instance cap, or blows its
//! wall-clock deadline — yields an error slot (or a degraded
//! baseline report, on the infallible APIs) while the other N−1 pages
//! complete normally. No page can abort the batch.

use crate::error::ExtractError;
use crate::pipeline::{Extraction, FormExtractor, Provenance};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Rollup of one [`FormExtractor::extract_batch_stats`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pages extracted.
    pub pages: usize,
    /// Worker threads used (0 for an empty batch — no worker is
    /// spawned when there is nothing to claim).
    pub workers: usize,
    /// Total tokens across all pages.
    pub tokens: usize,
    /// Total instances created across all parses.
    pub created: usize,
    /// Total instances invalidated by preference enforcement.
    pub invalidated: usize,
    /// Total maximal trees selected.
    pub trees: usize,
    /// Schedules built during the batch — 0 under the compile-once
    /// contract, since every session parses under the already-compiled
    /// grammar.
    pub schedules_built: usize,
    /// Pages whose pipeline panicked (caught at the page boundary).
    pub panicked: usize,
    /// Pages whose parse hit the instance cap.
    pub truncated: usize,
    /// Pages whose parse blew the wall-clock deadline.
    pub timed_out: usize,
    /// Pages that tokenized to nothing (no form content).
    pub empty: usize,
    /// Pages served by the proximity-baseline fallback instead of the
    /// grammar pipeline (every failed page, on the infallible APIs).
    pub degraded: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Pages that failed the grammar path, by any cause.
    pub fn failed(&self) -> usize {
        self.panicked + self.truncated + self.timed_out + self.empty
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "pages={} workers={} tokens={} instances={} invalidated={} trees={} schedules_built={} panicked={} truncated={} timed_out={} empty={} degraded={} time={:?}",
            self.pages,
            self.workers,
            self.tokens,
            self.created,
            self.invalidated,
            self.trees,
            self.schedules_built,
            self.panicked,
            self.truncated,
            self.timed_out,
            self.empty,
            self.degraded,
            self.elapsed
        )
    }
}

impl FormExtractor {
    /// Extracts every page, in parallel, returning results in input
    /// order. Infallible by graceful degradation: a page that panics,
    /// blows a budget, or has no form comes back as a
    /// proximity-baseline report marked
    /// [`Provenance::BaselineFallback`] — one poison page never kills
    /// the batch. See the module docs for the execution model; see
    /// [`FormExtractor::extract_batch_results`] for the fallible
    /// per-page form and [`FormExtractor::extract_batch_stats`] for
    /// the rollup-reporting form.
    pub fn extract_batch(&self, pages: &[&str]) -> Vec<Extraction> {
        self.extract_batch_stats(pages).0
    }

    /// Extracts every page, in parallel, returning one
    /// `Result<Extraction, ExtractError>` per page in input order —
    /// the fault-isolated API for callers that want to see failures
    /// instead of degraded reports (e.g. to retry with a larger
    /// budget).
    pub fn extract_batch_results(&self, pages: &[&str]) -> Vec<Result<Extraction, ExtractError>> {
        if pages.is_empty() {
            return Vec::new();
        }
        let workers = self.batch_workers(pages.len());
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<Extraction, ExtractError>>> = Vec::new();
        slots.resize_with(pages.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut session = self.session();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= pages.len() {
                                break;
                            }
                            out.push((i, self.try_extract_in(&mut session, i, pages[i])));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                // Per-page panics are caught inside try_extract_in, so
                // a worker-level panic should be impossible; if one
                // happens anyway, its claimed-but-unfilled slots are
                // reported as Panicked below rather than killing the
                // batch here.
                if let Ok(filled) = handle.join() {
                    for (i, result) in filled {
                        slots[i] = Some(result);
                    }
                }
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(page_index, slot)| {
                slot.unwrap_or_else(|| {
                    Err(ExtractError::Panicked {
                        page_index,
                        message: "batch worker died outside the page boundary".to_string(),
                    })
                })
            })
            .collect()
    }

    /// [`FormExtractor::extract_batch`] plus a [`BatchStats`] rollup
    /// with per-cause failure accounting.
    pub fn extract_batch_stats(&self, pages: &[&str]) -> (Vec<Extraction>, BatchStats) {
        let started = Instant::now();
        if pages.is_empty() {
            // No pages, no workers: the empty batch short-circuits
            // instead of spinning up a thread with nothing to claim.
            return (Vec::new(), BatchStats::default());
        }
        let workers = self.batch_workers(pages.len());
        let results = self.extract_batch_results(pages);

        let mut stats = BatchStats {
            pages: pages.len(),
            workers,
            ..Default::default()
        };
        let extractions: Vec<Extraction> = results
            .into_iter()
            .zip(pages)
            .map(|(result, page)| match result {
                Ok(extraction) => extraction,
                Err(err) => {
                    match err {
                        ExtractError::Panicked { .. } => stats.panicked += 1,
                        ExtractError::Truncated { .. } => stats.truncated += 1,
                        ExtractError::Timeout { .. } => stats.timed_out += 1,
                        ExtractError::EmptyForm { .. } => stats.empty += 1,
                    }
                    self.degrade(page)
                }
            })
            .collect();
        for ex in &extractions {
            if ex.via == Provenance::BaselineFallback {
                stats.degraded += 1;
            }
            stats.tokens += ex.stats.tokens;
            stats.created += ex.stats.created;
            stats.invalidated += ex.stats.invalidated;
            stats.trees += ex.stats.trees;
            stats.schedules_built += ex.stats.schedules_built;
        }
        stats.elapsed = started.elapsed();
        (extractions, stats)
    }

    /// Worker count for a batch of `pages` pages: the configured
    /// override or the machine's parallelism, capped by the page count.
    fn batch_workers(&self, pages: usize) -> usize {
        self.workers()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::QAM;

    fn pages() -> Vec<String> {
        (0..12)
            .map(|i| {
                format!(
                    "<form>Field{i} <input type=text name=f{i}>\
                     <input type=submit value=Go></form>"
                )
            })
            .chain(std::iter::once(QAM.to_string()))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_in_input_order() {
        let pages = pages();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new().worker_threads(4);
        let sequential: Vec<Extraction> = refs.iter().map(|p| extractor.extract(p)).collect();
        let (batch, stats) = extractor.extract_batch_stats(&refs);
        assert_eq!(batch.len(), sequential.len());
        assert_eq!(stats.pages, refs.len());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.schedules_built, 0, "compile-once violated");
        assert_eq!(stats.failed(), 0);
        assert_eq!(stats.degraded, 0);
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(format!("{:?}", b.report), format!("{:?}", s.report));
            assert_eq!(b.tokens, s.tokens);
            assert_eq!(b.stats.created, s.stats.created);
            assert_eq!(b.via, Provenance::Grammar);
        }
    }

    #[test]
    fn single_worker_and_empty_batch_are_fine() {
        let extractor = FormExtractor::new().worker_threads(1);
        let (none, stats) = extractor.extract_batch_stats(&[]);
        assert!(none.is_empty());
        assert_eq!(stats.pages, 0);
        assert_eq!(stats.workers, 0, "empty batch spawns no worker");
        assert!(extractor.extract_batch_results(&[]).is_empty());
        let one = extractor.extract_batch(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].report.conditions[0].attribute, "A");
    }

    #[test]
    fn worker_count_is_capped_by_page_count() {
        let extractor = FormExtractor::new().worker_threads(64);
        let (_, stats) =
            extractor.extract_batch_stats(&["<form>A <input type=text name=a></form>"]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn poison_page_is_isolated_and_counted() {
        let mut pages = pages();
        pages.insert(
            5,
            "<form>POISON <input type=text name=p></form>".to_string(),
        );
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let extractor = FormExtractor::new()
            .worker_threads(4)
            .inject_panic_marker("POISON");
        let results = extractor.extract_batch_results(&refs);
        assert!(matches!(
            &results[5],
            Err(ExtractError::Panicked { page_index: 5, .. })
        ));
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);

        let (batch, stats) = extractor.extract_batch_stats(&refs);
        assert_eq!(batch.len(), refs.len());
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.truncated + stats.timed_out + stats.empty, 0);
        assert_eq!(batch[5].via, Provenance::BaselineFallback);
        assert!(
            !batch[5].report.conditions.is_empty(),
            "the baseline still reads the poison page's form"
        );
    }
}
