//! The form extractor pipeline (paper Figure 2):
//!
//! ```text
//! HTML query form → [layout engine] → [tokenizer] →
//!   [best-effort parser ⟲ 2P grammar] → [merger] → query capabilities
//! ```

use crate::cache::{CachedVisit, ParseCache};
use crate::error::{panic_message, ExtractError};
use metaform_core::{ExtractionReport, Token, TokenFingerprint};
use metaform_grammar::{global_compiled, CompiledGrammar, Grammar, GrammarError, PatternSpan};
use metaform_html::parse as parse_html;
use metaform_layout::{layout_with, LayoutOptions};
use metaform_parser::{
    merge, salvage_merge, BudgetOutcome, CancelToken, ChartSnapshot, ParseSession, ParseStats,
    ParserOptions,
};
use metaform_tokenizer::tokenize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Which extractor produced a report — the provenance mark of the
/// graceful-degradation contract: when the grammar path fails or blows
/// a budget, the infallible APIs fall back to the pairwise-proximity
/// baseline ([`crate::extract_baseline`]) so the caller always gets
/// *some* capability description.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Provenance {
    /// The full hidden-syntax pipeline (layout → tokenize → 2P parse →
    /// merge).
    #[default]
    Grammar,
    /// The proximity-baseline heuristic, used because the grammar path
    /// failed (see [`ExtractError`] for why).
    BaselineFallback,
    /// The report was replayed from an attached [`ParseCache`] — the
    /// page's tokens matched a prior visit exactly, so no parse ran.
    CacheHit,
    /// The full pipeline ran, but the parse was seeded from a similar
    /// cached visit's chart snapshot
    /// ([`metaform_parser::ParseSession::parse_seeded`]) instead of
    /// starting cold. Byte-identical to [`Provenance::Grammar`] output
    /// by the cache-parity invariant.
    DeltaReparse,
    /// The parse hit a budget (or was cancelled mid-flight), but the
    /// maximized partial trees it had already built interpret the form
    /// better than the proximity baseline would, so the partial
    /// grammar-path report is served instead of degrading all the way.
    /// The salvage rung of the degradation ladder: chosen iff the
    /// partial report *dominates* the baseline under the deterministic
    /// metric of [`token_coverage`] (tokens the report accounts for),
    /// then [`condition_coverage`] (tokens claimed by conditions),
    /// then tree count, then a lexicographic tie-break on the rendered
    /// report — gated on the partial claiming at least half as many
    /// tokens as the baseline, so a parse cut before any semantics
    /// materialized can never displace a claiming baseline.
    PartialSalvage,
}

/// Tokens the report accounts for — claimed by a condition or covered
/// by a maximal grammar-path tree (the page total minus the report's
/// `missing` list). The salvage dominance rule's primary axis: the
/// best-effort promise is to explain as much of the page as possible,
/// and a partial parse whose maximal trees reach tokens the proximity
/// pairing strands is a better interpretation even when both claim
/// the same conditions. On its own this metric would be gameable —
/// wide structural derivations span tokens without interpreting them
/// — which is why the dominance rule pairs it with
/// [`condition_coverage`] as the tie-break and the eligibility gate.
pub fn token_coverage(report: &ExtractionReport, total_tokens: usize) -> usize {
    total_tokens.saturating_sub(report.missing.len())
}

/// Tokens claimed by at least one extracted condition — the semantic
/// half of the salvage dominance metric. [`token_coverage`] alone
/// would be the wrong gate: bare structural trees "cover" tokens
/// while interpreting none of them, so claims gate eligibility and
/// break coverage ties. Only tokens a condition actually claims
/// measure how much of the form was *understood*.
pub fn condition_coverage(report: &ExtractionReport) -> usize {
    let mut claimed: Vec<metaform_core::TokenId> = report
        .conditions
        .iter()
        .flat_map(|c| c.tokens.iter().copied())
        .collect();
    claimed.sort_unstable();
    claimed.dedup();
    claimed.len()
}

/// One injectable fault — what goes wrong on a chosen page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The pipeline panics inside the tokenize stage, exactly where a
    /// real defect would (caught at the page boundary →
    /// [`ExtractError::Panicked`]).
    Panic,
    /// The page behaves as if it stalled until its wall-clock deadline
    /// passed: its parse runs under a zeroed deadline and ends at the
    /// first budget poll with [`ExtractError::Timeout`]. Deterministic —
    /// no sleeping, no timing race — while exercising the same code
    /// path a genuinely slow page would.
    Stall,
    /// The extractor's batch-level cancel token fires just before this
    /// page's parse starts (no-op without an attached
    /// [`FormExtractor::cancel_token`]), giving a deterministic
    /// mid-batch cancellation point.
    Cancel,
}

impl Fault {
    /// Stable spec-string name (see [`FaultPlan::parse`]).
    pub fn as_str(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Stall => "stall",
            Fault::Cancel => "cancel",
        }
    }
}

/// A deterministic, option-gated fault plan: which batch page indices
/// fail, and how. Attached via [`FormExtractor::fault_plan`] (or
/// `metaformd --fault-plan`), it makes the whole degradation ladder —
/// panic isolation, retry escalation, salvage, cancellation — testable
/// without timing races or `cfg(test)`-only paths. Production
/// extractors simply never attach one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<(usize, Fault)>,
}

impl FaultPlan {
    /// The empty plan (no page faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// This plan with `fault` injected at batch page `page_index`
    /// (builder style). A later entry for the same index replaces the
    /// earlier one.
    pub fn with(mut self, page_index: usize, fault: Fault) -> Self {
        self.entries.retain(|&(i, _)| i != page_index);
        self.entries.push((page_index, fault));
        self.entries.sort_unstable_by_key(|&(i, _)| i);
        self
    }

    /// A pseudo-random plan over `pages` page slots: each page faults
    /// with probability `rate_pct`/100, the kind chosen by the same
    /// hash. Fully determined by `seed` — two runs with the same seed
    /// build the same plan, so seeded chaos runs are reproducible.
    pub fn seeded(seed: u64, pages: usize, rate_pct: u32) -> Self {
        let mut plan = FaultPlan::new();
        for page in 0..pages {
            let h = splitmix64(seed ^ (page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if (h % 100) < rate_pct as u64 {
                let fault = match (h >> 8) % 3 {
                    0 => Fault::Panic,
                    1 => Fault::Stall,
                    _ => Fault::Cancel,
                };
                plan = plan.with(page, fault);
            }
        }
        plan
    }

    /// Parses a flag-style spec: comma-separated `kind@page` entries,
    /// e.g. `panic@3,stall@5,cancel@7` — the format `metaformd
    /// --fault-plan` takes.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let (kind, page) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?} is not kind@page"))?;
            let fault = match kind {
                "panic" => Fault::Panic,
                "stall" => Fault::Stall,
                "cancel" => Fault::Cancel,
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            let page: usize = page
                .parse()
                .map_err(|_| format!("bad page index {page:?} in fault entry {entry:?}"))?;
            plan = plan.with(page, fault);
        }
        Ok(plan)
    }

    /// The fault injected at `page_index`, if any.
    pub fn fault_for(&self, page_index: usize) -> Option<Fault> {
        self.entries
            .iter()
            .find(|&&(i, _)| i == page_index)
            .map(|&(_, f)| f)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The planned faults, ordered by page index.
    pub fn entries(&self) -> &[(usize, Fault)] {
        &self.entries
    }
}

/// SplitMix64 — the same mixer the job store shards with; enough
/// avalanche for reproducible fault sampling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Result of extracting one query interface.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The semantic model plus conflict/missing reports.
    pub report: ExtractionReport,
    /// Parser counters (instances, pruning, timing).
    pub stats: ParseStats,
    /// The visual tokens the interface was reduced to.
    pub tokens: Vec<Token>,
    /// Which extractor produced [`Extraction::report`].
    pub via: Provenance,
    /// Which grammar pattern claimed which tokens, one entry per
    /// pattern-level instance in the maximal trees — the induction
    /// loop's mining evidence ([`metaform_parser::pattern_spans`]).
    /// Empty on the baseline path, where no grammar ran.
    pub pattern_spans: Vec<PatternSpan>,
    /// The maximal partial trees' root symbols — the coarse
    /// how-far-did-the-parse-get telemetry degraded pages record.
    pub partial_roots: Vec<String>,
}

/// End-to-end form extractor with a configurable grammar, layout, and
/// parser.
///
/// The extractor holds its grammar in compiled form behind an `Arc`,
/// so it is `Send + Sync` and cheap to clone: every extraction reuses
/// the one validated schedule, and [`FormExtractor::extract_batch`]
/// fans pages out across worker threads sharing the same artifact.
#[derive(Clone, Debug)]
pub struct FormExtractor {
    grammar: Arc<CompiledGrammar>,
    layout: LayoutOptions,
    parser: ParserOptions,
    workers: Option<usize>,
    fault_marker: Option<String>,
    cancel_marker: Option<String>,
    fault_plan: Option<Arc<FaultPlan>>,
    cache: Option<Arc<dyn ParseCache>>,
}

/// What one page attempt produces: the page's verdict, the parse stats
/// of the attempt (absent when the pipeline never reached the parser),
/// and — when the parse was budget-limited or cancelled mid-flight —
/// the partial grammar-path extraction it still built, carried as the
/// salvage candidate instead of being thrown away with the error.
pub(crate) struct Attempt {
    pub(crate) result: Result<Extraction, ExtractError>,
    pub(crate) stats: Option<ParseStats>,
    pub(crate) partial: Option<Extraction>,
}

impl Attempt {
    pub(crate) fn failed(result: ExtractError) -> Self {
        Attempt {
            result: Err(result),
            stats: None,
            partial: None,
        }
    }

    /// Token coverage of whatever report this attempt produced — the
    /// full extraction on success, the salvage candidate on a budget
    /// failure, nothing when no parse ran. This is the per-attempt
    /// coverage trajectory the control plane fits budgets from.
    pub(crate) fn covered(&self) -> Option<usize> {
        match (&self.result, &self.partial) {
            (Ok(ex), _) => Some(token_coverage(&ex.report, ex.tokens.len())),
            (Err(_), Some(partial)) => Some(token_coverage(&partial.report, partial.tokens.len())),
            (Err(_), None) => None,
        }
    }
}

impl FormExtractor {
    /// Extractor over the derived global grammar (the configuration
    /// evaluated in the paper's experiments). Shares the process-wide
    /// compiled artifact — no grammar is built, validated, or
    /// scheduled here, however many extractors are created.
    pub fn new() -> Self {
        Self::with_compiled(global_compiled())
    }

    /// Extractor over a custom grammar — the extensibility story of
    /// §4.1: change the grammar, keep the machinery.
    ///
    /// Compiles the grammar, panicking on the (builder-rejected)
    /// unschedulable case; use [`FormExtractor::try_with_grammar`] to
    /// handle compilation errors — e.g. for grammars loaded from DSL
    /// files — without panicking.
    pub fn with_grammar(grammar: Grammar) -> Self {
        Self::try_with_grammar(grammar).expect("grammar compiles")
    }

    /// Fallible form of [`FormExtractor::with_grammar`]: surfaces the
    /// schedule-graph diagnostic instead of panicking.
    pub fn try_with_grammar(grammar: Grammar) -> Result<Self, GrammarError> {
        Ok(Self::with_compiled(Arc::new(grammar.compile()?)))
    }

    /// Extractor over an already-compiled grammar, sharing it with
    /// whatever else holds the `Arc`.
    pub fn with_compiled(grammar: Arc<CompiledGrammar>) -> Self {
        FormExtractor {
            grammar,
            layout: LayoutOptions::default(),
            parser: ParserOptions::default(),
            workers: None,
            fault_marker: None,
            cancel_marker: None,
            fault_plan: None,
            cache: None,
        }
    }

    /// Overrides layout options (builder style).
    pub fn layout_options(mut self, layout: LayoutOptions) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides parser options (builder style).
    pub fn parser_options(mut self, parser: ParserOptions) -> Self {
        self.parser = parser;
        self
    }

    /// Replaces the compiled grammar while keeping every other knob —
    /// layout, parser options, workers, fault plan, parse cache —
    /// untouched (builder style). This is how the daemon hot-adds
    /// induced productions: cache entries recorded under the old
    /// grammar degrade to misses automatically because cached visits
    /// are gated on `Arc::ptr_eq` with the live grammar.
    pub fn with_grammar_swapped(mut self, grammar: Arc<CompiledGrammar>) -> Self {
        self.grammar = grammar;
        self
    }

    /// Fixes the number of worker threads batch extraction uses
    /// (builder style). Defaults to the machine's available
    /// parallelism, capped by the number of pages.
    pub fn worker_threads(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the per-page wall-clock parse budget (builder style).
    /// A page whose parse exceeds it fails with
    /// [`ExtractError::Timeout`] on the fallible APIs and degrades to
    /// the proximity baseline on the infallible ones.
    pub fn page_deadline(mut self, deadline: Duration) -> Self {
        self.parser.deadline = Some(deadline);
        self
    }

    /// Caps the instances one page's parse may create (builder style) —
    /// the safety valve against adversarial, ambiguity-bomb forms.
    /// Exceeding it fails with [`ExtractError::Truncated`] on the
    /// fallible APIs and degrades to the baseline on the infallible
    /// ones.
    pub fn max_instances(mut self, cap: usize) -> Self {
        self.parser.max_instances = cap.max(1);
        self
    }

    /// Fault injection for exercising the isolation path (builder
    /// style): any page whose HTML contains `marker` panics inside the
    /// pipeline, exactly where a real defect would. Used by the
    /// panic-isolation tests and available for chaos-style batch
    /// testing; production extractors simply never set it.
    pub fn inject_panic_marker(mut self, marker: impl Into<String>) -> Self {
        self.fault_marker = Some(marker.into());
        self
    }

    /// Attaches a batch-level cancel token (builder style). Every
    /// parse run by this extractor polls the token at the parser's
    /// sampled budget check; calling [`CancelToken::cancel`] on any
    /// clone aborts in-flight parses with [`ExtractError::Cancelled`]
    /// and makes batch drivers skip pages not yet started — pages
    /// already completed keep their results.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.parser.cancel = Some(token);
        self
    }

    /// Fault injection for exercising the cancellation path (builder
    /// style): any page whose HTML contains `marker` fires this
    /// extractor's cancel token just before its parse starts, giving
    /// tests a deterministic mid-batch cancellation point. No-op
    /// unless a [`FormExtractor::cancel_token`] is attached;
    /// production extractors simply never set it.
    pub fn inject_cancel_marker(mut self, marker: impl Into<String>) -> Self {
        self.cancel_marker = Some(marker.into());
        self
    }

    /// Attaches a deterministic fault plan (builder style): pages at
    /// the planned batch indices panic, stall past their deadline, or
    /// fire the cancel token, per [`FaultPlan`]. Index-addressed where
    /// the marker injectors are content-addressed, so chaos suites can
    /// plan faults without editing page HTML. Production extractors
    /// simply never attach one.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = (!plan.is_empty()).then(|| Arc::new(plan));
        self
    }

    /// Attaches a parse cache (builder style) — the two-tier revisit
    /// path for crawler-scale traffic. A page whose tokens match a
    /// cached visit exactly replays the cached report in O(hash)
    /// ([`Provenance::CacheHit`]); a near-match seeds the parse from
    /// the cached chart snapshot ([`Provenance::DeltaReparse`]);
    /// anything else parses cold and, when it completes on the grammar
    /// path, is stored for the next visit. Both cached tiers are
    /// byte-identical to a cold parse (the cache-parity invariant).
    /// The cache is shared: clones of this extractor, batch workers,
    /// and other extractors holding the same `Arc` all feed and serve
    /// from it. Entries from a different compiled grammar are ignored,
    /// so cross-grammar sharing is safe, just useless.
    pub fn parse_cache(mut self, cache: Arc<dyn ParseCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached parse cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn ParseCache>> {
        self.cache.as_ref()
    }

    /// The grammar in use.
    pub fn grammar(&self) -> &Grammar {
        self.grammar.grammar()
    }

    /// The configured worker-thread override, if any.
    pub(crate) fn workers(&self) -> Option<usize> {
        self.workers
    }

    /// The attached cancel token, if any.
    pub(crate) fn cancel(&self) -> Option<&CancelToken> {
        self.parser.cancel.as_ref()
    }

    /// The per-page budgets extractions currently run under:
    /// `(max_instances, deadline)`. Telemetry records these per
    /// attempt so a failure log names the budget that failed.
    pub fn budgets(&self) -> (usize, Option<Duration>) {
        (self.parser.max_instances, self.parser.deadline)
    }

    /// This extractor with both per-page budgets multiplied by
    /// `growth` (saturating) — one escalation step of the adaptive
    /// retry loop. A `growth` of 0 is treated as 1 (no shrink).
    pub(crate) fn escalated(&self, growth: u32) -> Self {
        let growth = growth.max(1);
        let mut next = self.clone();
        next.parser.max_instances = next.parser.max_instances.saturating_mul(growth as usize);
        next.parser.deadline = next.parser.deadline.map(|d| d.saturating_mul(growth));
        next
    }

    /// The compiled artifact extractions parse under.
    pub fn compiled(&self) -> &Arc<CompiledGrammar> {
        &self.grammar
    }

    /// A parse session over this extractor's grammar and parser
    /// options — for callers that drive parsing themselves.
    pub fn session(&self) -> ParseSession {
        ParseSession::with_options(self.grammar.clone(), self.parser.clone())
    }

    /// Runs the full pipeline on an HTML page containing a query form.
    ///
    /// Infallible by graceful degradation: a panic, budget blow-out, or
    /// empty form yields a proximity-baseline report marked
    /// [`Provenance::BaselineFallback`] instead of an error — callers
    /// always get some capability description. Use
    /// [`FormExtractor::try_extract`] to observe the failure instead.
    pub fn extract(&self, html: &str) -> Extraction {
        self.extract_in(&mut self.session(), 0, html)
    }

    /// Fallible form of [`FormExtractor::extract`]: surfaces the
    /// page's failure as a typed [`ExtractError`] (with `page_index`
    /// 0) instead of degrading to the baseline.
    pub fn try_extract(&self, html: &str) -> Result<Extraction, ExtractError> {
        self.try_extract_in(&mut self.session(), 0, html)
    }

    /// Extracts every `<form>` on the page separately, in document
    /// order — entry pages often pair a site-wide keyword box with the
    /// main query form.
    pub fn extract_all(&self, html: &str) -> Vec<Extraction> {
        let doc = parse_html(html);
        let lay = layout_with(&doc, &self.layout);
        let mut session = self.session();
        metaform_tokenizer::tokenize_all_forms(&doc, &lay)
            .into_iter()
            .map(|t| self.extract_tokens_in(&mut session, &t.tokens))
            .collect()
    }

    /// Runs parsing + merging on pre-tokenized input (useful for tests
    /// and for the paper's walk-through figures).
    pub fn extract_tokens(&self, tokens: &[Token]) -> Extraction {
        self.extract_tokens_in(&mut self.session(), tokens)
    }

    /// [`FormExtractor::extract`] through a caller-owned session —
    /// the parse-many path batch workers run on. Degrades failures to
    /// the baseline like [`FormExtractor::extract`].
    pub(crate) fn extract_in(
        &self,
        session: &mut ParseSession,
        page_index: usize,
        html: &str,
    ) -> Extraction {
        let attempt = self.attempt_in(session, page_index, html);
        match attempt.result {
            Ok(extraction) => extraction,
            Err(_) => self.salvage_or_degrade(html, attempt.partial),
        }
    }

    /// The fallible core: [`FormExtractor::attempt_in`] without the
    /// per-attempt stats side channel.
    pub(crate) fn try_extract_in(
        &self,
        session: &mut ParseSession,
        page_index: usize,
        html: &str,
    ) -> Result<Extraction, ExtractError> {
        self.attempt_in(session, page_index, html).result
    }

    /// One extraction attempt: tokenizes and parses one page with
    /// every pipeline stage behind a panic boundary, and maps budget
    /// blow-outs and cancellation to typed errors. The second return
    /// slot carries the parse stats even when the attempt *failed* a
    /// budget (the parse ran, just not to completion) — the adaptive
    /// telemetry records them per attempt; it is `None` when no parse
    /// ran (panic, empty form, pre-parse cancellation). A panic
    /// mid-parse may leave the session's recycled chart un-recycled —
    /// that only costs the next parse a fresh allocation, never
    /// correctness, because `ParseSession::parse` resets the chart for
    /// each input.
    pub(crate) fn attempt_in(
        &self,
        session: &mut ParseSession,
        page_index: usize,
        html: &str,
    ) -> Attempt {
        // A batch already cancelled skips the whole pipeline — pages
        // not yet started cost nothing.
        if self.cancel().is_some_and(CancelToken::is_cancelled) {
            return Attempt::failed(ExtractError::Cancelled { page_index });
        }
        let fault = self
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.fault_for(page_index));
        let tokens = catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(Fault::Panic) {
                panic!("injected fault: plan panics page {page_index}");
            }
            if let Some(marker) = &self.fault_marker {
                assert!(
                    !html.contains(marker.as_str()),
                    "injected fault: page contains {marker:?}"
                );
            }
            let doc = parse_html(html);
            let lay = layout_with(&doc, &self.layout);
            tokenize(&doc, &lay).tokens
        }));
        let tokens = match tokens {
            Ok(tokens) => tokens,
            Err(payload) => {
                return Attempt::failed(ExtractError::Panicked {
                    page_index,
                    message: panic_message(payload),
                })
            }
        };
        if tokens.is_empty() {
            return Attempt::failed(ExtractError::EmptyForm { page_index });
        }
        // Deterministic cancellation points for tests: the marker page
        // (or planned Cancel page) fires the token right before its own
        // parse, which then observes the cancellation at its first poll.
        if let Some(token) = self.cancel() {
            let marker_hit = self
                .cancel_marker
                .as_ref()
                .is_some_and(|marker| html.contains(marker.as_str()));
            if marker_hit || fault == Some(Fault::Cancel) {
                token.cancel();
            }
        }
        let extraction = catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(Fault::Stall) {
                // The stalled page's parse runs under a zeroed deadline
                // and ends at its first budget poll — the deterministic
                // equivalent of stalling until the deadline passed.
                let mut opts = self.parser.clone();
                opts.deadline = Some(Duration::ZERO);
                let mut stalled = ParseSession::with_options(self.grammar.clone(), opts);
                self.extract_tokens_in(&mut stalled, &tokens)
            } else {
                self.extract_tokens_in(session, &tokens)
            }
        }));
        let extraction = match extraction {
            Ok(extraction) => extraction,
            Err(payload) => {
                return Attempt::failed(ExtractError::Panicked {
                    page_index,
                    message: panic_message(payload),
                })
            }
        };
        let stats = extraction.stats.clone();
        match extraction.stats.budget {
            BudgetOutcome::Completed => Attempt {
                result: Ok(extraction),
                stats: Some(stats),
                partial: None,
            },
            exhausted => {
                // The budget-limited parse still maximized whatever it
                // built (best-effort end to end) — keep the partial as
                // the salvage candidate alongside the typed error.
                let error = match exhausted {
                    BudgetOutcome::TruncatedInstances => ExtractError::Truncated { page_index },
                    BudgetOutcome::DeadlineExceeded => ExtractError::Timeout { page_index },
                    _ => ExtractError::Cancelled { page_index },
                };
                Attempt {
                    result: Err(error),
                    stats: Some(stats),
                    partial: Some(extraction),
                }
            }
        }
    }

    /// The settlement site of the degradation ladder's last two rungs:
    /// serves the salvaged partial grammar-path report when it
    /// dominates the proximity baseline, the baseline otherwise. The
    /// dominance metric is deterministic and total — token coverage
    /// ([`token_coverage`]), then claimed tokens
    /// ([`condition_coverage`]), then maximal tree count, then a
    /// lexicographic tie-break on the rendered report, gated on the
    /// partial claiming at least half the baseline's tokens — so the
    /// choice is identical across worker counts and batch orders. This
    /// is the one place [`Provenance::PartialSalvage`] is constructed,
    /// as [`FormExtractor::degrade`] is for
    /// [`Provenance::BaselineFallback`].
    pub(crate) fn salvage_or_degrade(&self, html: &str, partial: Option<Extraction>) -> Extraction {
        let baseline = self.degrade(html);
        let Some(mut partial) = partial else {
            return baseline;
        };
        let partial_claims = condition_coverage(&partial.report);
        let baseline_claims = condition_coverage(&baseline.report);
        // Eligibility gate: structural trees cover tokens without
        // interpreting them, so a partial that claims less than half
        // of what the baseline claims never dominates, whatever its
        // raw coverage.
        if partial_claims * 2 < baseline_claims {
            return baseline;
        }
        let partial_key = (
            token_coverage(&partial.report, partial.tokens.len()),
            partial_claims,
            partial.stats.trees,
        );
        let baseline_key = (
            token_coverage(&baseline.report, baseline.tokens.len()),
            baseline_claims,
            baseline.stats.trees,
        );
        let dominates = match partial_key.cmp(&baseline_key) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => partial.report.to_string() < baseline.report.to_string(),
        };
        if dominates {
            partial.via = Provenance::PartialSalvage;
            partial
        } else {
            baseline
        }
    }

    /// The degradation path: re-tokenizes the page (behind its own
    /// panic boundary) and runs the proximity baseline over whatever
    /// tokens that yields, marking the provenance. The parse counters
    /// are zeroed — the page-level reason lives in the
    /// [`ExtractError`] the fallible APIs return and in the
    /// [`crate::BatchStats`] failure counters.
    pub(crate) fn degrade(&self, html: &str) -> Extraction {
        let tokens = catch_unwind(AssertUnwindSafe(|| {
            let doc = parse_html(html);
            let lay = layout_with(&doc, &self.layout);
            tokenize(&doc, &lay).tokens
        }))
        .unwrap_or_default();
        let report = crate::baseline::extract_baseline(&tokens);
        Extraction {
            report,
            stats: ParseStats {
                tokens: tokens.len(),
                ..Default::default()
            },
            tokens,
            via: Provenance::BaselineFallback,
            pattern_spans: Vec::new(),
            partial_roots: Vec::new(),
        }
    }

    fn extract_tokens_in(&self, session: &mut ParseSession, tokens: &[Token]) -> Extraction {
        // One fingerprint serves the exact-hit lookup and the store.
        let fingerprint = self.cache.as_ref().map(|_| TokenFingerprint::of(tokens));
        if let Some(hit) = self.replay_cached(tokens, fingerprint.as_ref()) {
            return hit;
        }
        let seed = self.seed_visit(tokens);
        let result = match &seed {
            Some(visit) => session.parse_seeded(tokens, &visit.snapshot),
            None => session.parse(tokens),
        };
        // A budget-limited chart gets the salvage merge — the regular
        // union over maximal trees plus the sweep that recovers
        // conditions stranded below the truncation point. Completed
        // parses keep the plain merge byte-for-byte.
        let report = match result.stats.budget {
            BudgetOutcome::Completed => merge(&result.chart, &result.trees),
            _ => salvage_merge(&result.chart, &result.trees),
        };
        let stats = result.stats.clone();
        // Mining evidence must come off the chart before the store
        // consumes the result into a snapshot.
        let grammar = self.grammar.grammar();
        let pattern_spans = metaform_parser::pattern_spans(&result.chart, &result.trees, grammar);
        let partial_roots = metaform_parser::tree_symbols(&result.chart, &result.trees, grammar);
        if let Some(spare) = self.store_visit(
            tokens,
            fingerprint,
            &report,
            &pattern_spans,
            &partial_roots,
            result,
        ) {
            session.recycle(spare);
        }
        Extraction {
            report,
            stats,
            tokens: tokens.to_vec(),
            via: if seed.is_some() {
                Provenance::DeltaReparse
            } else {
                Provenance::Grammar
            },
            pattern_spans,
            partial_roots,
        }
    }

    /// Tier A: replays the cached report when the page's tokens match
    /// a prior visit exactly. The fingerprint addresses the entry; the
    /// full token comparison rules out collisions. The synthesized
    /// stats carry only the token count — no parse ran.
    fn replay_cached(
        &self,
        tokens: &[Token],
        fingerprint: Option<&TokenFingerprint>,
    ) -> Option<Extraction> {
        let cache = self.cache.as_ref()?;
        let visit = cache.lookup(fingerprint?)?;
        (Arc::ptr_eq(&visit.grammar, &self.grammar) && visit.tokens == tokens).then(|| Extraction {
            report: visit.report.clone(),
            stats: ParseStats {
                tokens: tokens.len(),
                ..Default::default()
            },
            tokens: tokens.to_vec(),
            via: Provenance::CacheHit,
            pattern_spans: visit.pattern_spans.clone(),
            partial_roots: visit.partial_roots.clone(),
        })
    }

    /// Tier B candidate: the cached visit to seed a delta re-parse
    /// from, if one parsed under this grammar and shares at least half
    /// of `tokens` as a content-equal prefix+suffix. Below that the
    /// carried region is too small for seeding to beat a cold parse.
    fn seed_visit(&self, tokens: &[Token]) -> Option<Arc<CachedVisit>> {
        let (visit, shared) = self.cache.as_ref()?.nearest(tokens)?;
        (Arc::ptr_eq(&visit.grammar, &self.grammar) && shared * 2 >= tokens.len()).then_some(visit)
    }

    /// Retains a finished grammar-path parse for future revisits,
    /// moving the result's chart into the cached snapshot (no deep
    /// copy). Only completed parses are stored —
    /// [`ChartSnapshot::take`] refuses truncated/timed-out/cancelled
    /// charts, whose unexplored combinations would break the
    /// seeded-watermark soundness argument — and a refused (or
    /// uncached) result is handed back for the session to recycle.
    fn store_visit(
        &self,
        tokens: &[Token],
        fingerprint: Option<TokenFingerprint>,
        report: &ExtractionReport,
        pattern_spans: &[PatternSpan],
        partial_roots: &[String],
        result: metaform_parser::ParseResult,
    ) -> Option<metaform_parser::ParseResult> {
        let Some(cache) = &self.cache else {
            return Some(result);
        };
        let snapshot = match ChartSnapshot::take(result) {
            Ok(snapshot) => snapshot,
            Err(result) => return Some(result),
        };
        cache.store(
            fingerprint.expect("fingerprint exists whenever a cache is attached"),
            Arc::new(CachedVisit {
                tokens: tokens.to_vec(),
                report: report.clone(),
                snapshot,
                grammar: self.grammar.clone(),
                pattern_spans: pattern_spans.to_vec(),
                partial_roots: partial_roots.to_vec(),
            }),
        );
        None
    }
}

impl Default for FormExtractor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use metaform_core::DomainKind;

    /// The paper's running example Qam (amazon.com, Figure 3(a)),
    /// reduced to its author/title/subject rows.
    pub const QAM: &str = r#"
    <form action="/search">
      <b>Author</b> <input type="text" name="query-0" size="30"><br>
      <input type="radio" name="field-0" value="1"> first name/initials and last name
      <input type="radio" name="field-0" value="2"> start of last name
      <input type="radio" name="field-0" value="3" checked> exact name<br>
      <b>Title</b> <input type="text" name="query-1" size="30"><br>
      <input type="radio" name="field-1" value="1"> title word(s)
      <input type="radio" name="field-1" value="2"> start(s) of title word(s)
      <input type="radio" name="field-1" value="3"> exact start of title<br>
      <b>Subject</b> <input type="text" name="query-2" size="30"><br>
      <input type="submit" value="Search Now">
    </form>"#;

    #[test]
    fn qam_extracts_three_operator_conditions() {
        let extraction = FormExtractor::new().extract(QAM);
        let conds = &extraction.report.conditions;
        assert_eq!(conds.len(), 3, "{:#?}", conds);
        assert_eq!(conds[0].attribute, "Author");
        assert_eq!(conds[0].operators.len(), 3);
        assert!(conds[0].operators[2].contains("exact name"));
        assert_eq!(conds[1].attribute, "Title");
        assert_eq!(conds[1].operators.len(), 3);
        assert_eq!(conds[2].attribute, "Subject");
        assert_eq!(conds[2].domain.kind, DomainKind::Text);
        assert!(
            extraction.report.missing.is_empty(),
            "submit covered by ActionRow"
        );
        assert!(extraction.report.conflicts.is_empty());
    }

    #[test]
    fn aa_style_flight_form() {
        // Paper Figure 3(b), Qaa: round-trip radios, city pairs, dates,
        // passenger count.
        let html = r#"
        <form>
          <input type="radio" name="trip" checked> Round Trip
          <input type="radio" name="trip"> One Way<br>
          <table>
            <tr><td>From</td><td><input type="text" name="orig" size="18"></td>
                <td>To</td><td><input type="text" name="dest" size="18"></td></tr>
          </table>
          Departing <select name="dm"><option>January<option>February<option>March<option>April<option>May<option>June<option>July<option>August<option>September<option>October<option>November<option>December</select>
          <select name="dd"><option>1<option>2<option>3<option>4<option>5<option>6<option>7<option>8<option>9<option>10<option>11<option>12<option>13<option>14<option>15<option>16<option>17<option>18<option>19<option>20<option>21<option>22<option>23<option>24<option>25<option>26<option>27<option>28<option>29<option>30<option>31</select><br>
          Number of passengers <select name="pax"><option>1<option>2<option>3<option>4<option>5<option>6</select><br>
          <input type="submit" value="GO">
        </form>"#;
        let extraction = FormExtractor::new().extract(html);
        let conds = &extraction.report.conditions;
        let attrs: Vec<&str> = conds.iter().map(|c| c.attribute.as_str()).collect();
        assert!(attrs.contains(&"From"), "{attrs:?}");
        assert!(attrs.contains(&"To"), "{attrs:?}");
        assert!(attrs.contains(&"Departing"), "{attrs:?}");
        assert!(attrs.contains(&"Number of passengers"), "{attrs:?}");
        let trip = conds
            .iter()
            .find(|c| c.domain.values.contains(&"Round Trip".to_string()))
            .expect("trip-type enumeration");
        assert_eq!(trip.domain.values.len(), 2);
        let dep = conds.iter().find(|c| c.attribute == "Departing").unwrap();
        assert_eq!(dep.domain.kind, DomainKind::Date);
        let pax = conds
            .iter()
            .find(|c| c.attribute == "Number of passengers")
            .unwrap();
        assert_eq!(pax.domain.kind, DomainKind::Numeric);
    }

    #[test]
    fn price_range_and_checkbox_form() {
        let html = r#"
        <form>
          Price range <input type="text" name="lo" size="6"> to <input type="text" name="hi" size="6"><br>
          Format: <input type="checkbox" name="hc"> Hardcover
                  <input type="checkbox" name="pb"> Paperback
                  <input type="checkbox" name="ab"> Audio<br>
          <input type="submit" value="Find">
        </form>"#;
        let extraction = FormExtractor::new().extract(html);
        let conds = &extraction.report.conditions;
        let range = conds
            .iter()
            .find(|c| c.attribute.contains("Price"))
            .expect("price range extracted");
        assert_eq!(range.domain.kind, DomainKind::Range);
        let format = conds
            .iter()
            .find(|c| c.attribute.starts_with("Format"))
            .expect("format enumeration");
        assert_eq!(format.domain.kind, DomainKind::Enumerated);
        assert_eq!(
            format.domain.values,
            vec!["Hardcover", "Paperback", "Audio"]
        );
    }

    #[test]
    fn custom_grammar_swaps_in() {
        let custom = metaform_grammar::paper_example_grammar();
        let ex = FormExtractor::with_grammar(custom)
            .extract("<form>Author <input type=text name=q></form>");
        assert_eq!(ex.report.conditions.len(), 1);
        assert_eq!(ex.report.conditions[0].attribute, "Author");
    }

    #[test]
    fn empty_form_is_fine() {
        let ex = FormExtractor::new().extract("<form></form>");
        assert!(ex.report.conditions.is_empty());
        assert!(ex.tokens.is_empty());
    }

    #[test]
    fn extract_all_handles_multi_form_pages() {
        let html = "<form>Site search <input type=text name=q></form>\n\
                    <form>Author <input type=text name=a></form>";
        let all = FormExtractor::new().extract_all(html);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].report.conditions[0].attribute, "Site search");
        assert_eq!(all[1].report.conditions[0].attribute, "Author");
        assert!(FormExtractor::new().extract_all("no forms").is_empty());
    }

    #[test]
    fn stats_flow_through() {
        let ex = FormExtractor::new().extract(QAM);
        assert!(ex.stats.created > ex.tokens.len());
        assert!(ex.stats.invalidated > 0, "preferences fired");
        assert_eq!(ex.via, Provenance::Grammar);
    }

    #[test]
    fn try_extract_names_the_failure() {
        let ex = FormExtractor::new();
        assert!(matches!(
            ex.try_extract("<form></form>"),
            Err(ExtractError::EmptyForm { page_index: 0 })
        ));
        let poisoned = FormExtractor::new().inject_panic_marker("POISON");
        match poisoned.try_extract("<form>POISON <input type=text name=q></form>") {
            Err(ExtractError::Panicked {
                page_index,
                message,
            }) => {
                assert_eq!(page_index, 0);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        let rushed = FormExtractor::new().page_deadline(Duration::ZERO);
        assert!(matches!(
            rushed.try_extract(QAM),
            Err(ExtractError::Timeout { page_index: 0 })
        ));
        let capped = FormExtractor::new().max_instances(3);
        assert!(matches!(
            capped.try_extract(QAM),
            Err(ExtractError::Truncated { page_index: 0 })
        ));
        assert!(FormExtractor::new().try_extract(QAM).is_ok());
    }

    #[test]
    fn parse_cache_serves_exact_and_delta_revisits() {
        use crate::cache::LruParseCache;
        let cache = LruParseCache::shared();
        let extractor = FormExtractor::new().parse_cache(cache.clone());
        let cold = extractor.extract(QAM);
        assert_eq!(cold.via, Provenance::Grammar);
        assert_eq!(cache.len(), 1, "completed parse stored");
        // Unchanged revisit: replayed, not re-parsed.
        let hit = extractor.extract(QAM);
        assert_eq!(hit.via, Provenance::CacheHit);
        assert_eq!(hit.report.to_string(), cold.report.to_string());
        assert_eq!(hit.tokens, cold.tokens);
        assert_eq!(hit.stats.created, 0, "no parse ran");
        // Edited revisit: seeded from the cached chart, byte-identical
        // to a cold parse of the edited page.
        let edited = QAM.replace("<b>Subject</b>", "<b>Keywords</b>");
        let delta = extractor.extract(&edited);
        assert_eq!(delta.via, Provenance::DeltaReparse);
        let cold_edited = FormExtractor::new().extract(&edited);
        assert_eq!(delta.report.to_string(), cold_edited.report.to_string());
        // The edited visit was stored too: revisiting it hits.
        assert_eq!(extractor.extract(&edited).via, Provenance::CacheHit);
    }

    #[test]
    fn uncacheable_outcomes_are_not_stored() {
        use crate::cache::LruParseCache;
        let cache = LruParseCache::shared();
        // A truncated parse must not seed future revisits: its chart
        // is incomplete, and its baseline report is not a parse.
        let capped = FormExtractor::new()
            .max_instances(3)
            .parse_cache(cache.clone());
        let degraded = capped.extract(QAM);
        assert_eq!(degraded.via, Provenance::BaselineFallback);
        assert!(cache.is_empty(), "nothing cached from a failed parse");
    }

    #[test]
    fn failed_pages_degrade_to_nonempty_baseline_reports() {
        // Deadline blown: the infallible API still produces a usable
        // capability description, via the proximity baseline.
        let rushed = FormExtractor::new().page_deadline(Duration::ZERO);
        let degraded = rushed.extract(QAM);
        assert_eq!(degraded.via, Provenance::BaselineFallback);
        assert!(
            !degraded.report.conditions.is_empty(),
            "degraded but nonempty: the baseline still reads the form"
        );
        assert!(!degraded.tokens.is_empty());
        // Same for a panicking page.
        let poisoned = FormExtractor::new().inject_panic_marker("Subject");
        let degraded = poisoned.extract(QAM);
        assert_eq!(degraded.via, Provenance::BaselineFallback);
        assert!(!degraded.report.conditions.is_empty());
    }
}
