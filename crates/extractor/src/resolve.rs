//! Client-side error resolution — the paper's §7 future work, built
//! out: "to resolve the conflict in a specific query interface, we can
//! leverage the correctly parsed conditions from other query
//! interfaces of the same domain … to handle missing elements, we find
//! it promising to explore matching non-associated tokens by their
//! textual similarity."

use metaform_core::{
    normalize_label, relations, Condition, ExtractionReport, Proximity, Token, TokenKind,
};
use std::collections::BTreeMap;

/// Attribute vocabulary accumulated from extractions across sources of
/// one domain (e.g. using flyairnorth.com's parse to help aa.com's).
#[derive(Clone, Debug, Default)]
pub struct DomainKnowledge {
    attr_counts: BTreeMap<String, usize>,
}

impl DomainKnowledge {
    /// Empty knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one extraction's *non-conflicting* conditions into the
    /// vocabulary.
    pub fn learn(&mut self, report: &ExtractionReport) {
        let contested: Vec<usize> = report
            .conflicts
            .iter()
            .flat_map(|c| [c.kept, c.dropped])
            .collect();
        for (i, cond) in report.conditions.iter().enumerate() {
            if contested.contains(&i) {
                continue;
            }
            let key = cond.normalized_attribute();
            if !key.is_empty() {
                *self.attr_counts.entry(key).or_default() += 1;
            }
        }
    }

    /// How many sources support this attribute label.
    pub fn support(&self, attribute: &str) -> usize {
        self.attr_counts
            .get(&normalize_label(attribute))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct attributes learned.
    pub fn len(&self) -> usize {
        self.attr_counts.len()
    }

    /// True when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.attr_counts.is_empty()
    }

    /// The known attribute most similar to `text`, with its similarity
    /// in `[0, 1]`, if any scores at least `min`. Equally similar
    /// candidates tie-break to the lexicographically smallest key, so
    /// resolution is deterministic across runs and platforms.
    pub fn best_match(&self, text: &str, min: f64) -> Option<(&str, f64)> {
        let norm = normalize_label(text);
        if norm.is_empty() {
            return None;
        }
        self.attr_counts
            .keys()
            .map(|k| (k.as_str(), similarity(&norm, k)))
            .filter(|(_, s)| *s >= min)
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
    }
}

/// Normalized textual similarity in `[0, 1]`: 1 − Levenshtein distance
/// over the longer length.
pub fn similarity(a: &str, b: &str) -> f64 {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Resolves conflicting token claims using domain knowledge: of the
/// two claimants, the condition whose attribute has *less* support
/// across the domain is dropped from the model. Ties keep the
/// merger's primary claimant. Returns the refined report (conflicts
/// consumed in the process are removed).
pub fn resolve_conflicts(
    report: &ExtractionReport,
    knowledge: &DomainKnowledge,
) -> ExtractionReport {
    if report.conflicts.is_empty() {
        return report.clone();
    }
    let mut drop = vec![false; report.conditions.len()];
    for conflict in &report.conflicts {
        let kept = &report.conditions[conflict.kept];
        let dropped = &report.conditions[conflict.dropped];
        let (sk, sd) = (
            knowledge.support(&kept.attribute),
            knowledge.support(&dropped.attribute),
        );
        if sd > sk {
            drop[conflict.kept] = true;
        } else {
            drop[conflict.dropped] = true;
        }
    }
    rebuild(report, &drop)
}

/// Attaches missing text tokens as attributes of nearby unlabeled
/// conditions when the text is similar to a known domain attribute.
/// `tokens` is the tokenized interface the report came from.
pub fn attach_missing(
    report: &ExtractionReport,
    tokens: &[Token],
    knowledge: &DomainKnowledge,
) -> ExtractionReport {
    let prox = Proximity::default();
    let mut out = report.clone();
    out.missing.retain(|&missing_id| {
        let token = &tokens[missing_id.index()];
        if token.kind != TokenKind::Text {
            return true;
        }
        // The text must resemble an attribute the domain is known for.
        if knowledge.best_match(&token.sval, 0.7).is_none() {
            return true;
        }
        // Find an adjacent condition that lacks a visible label (its
        // attribute came from a control name or is empty).
        let candidate = out.conditions.iter_mut().find(|c| {
            let unlabeled = c.attribute.is_empty() || knowledge.support(&c.attribute) == 0;
            unlabeled
                && c.tokens.iter().any(|&t| {
                    let wb = &tokens[t.index()].pos;
                    relations::left(&token.pos, wb, &prox)
                        || relations::above(&token.pos, wb, &prox)
                })
        });
        match candidate {
            Some(cond) => {
                cond.attribute = token.sval.clone();
                cond.tokens.push(missing_id);
                cond.tokens.sort_unstable();
                false // consumed: no longer missing
            }
            None => true,
        }
    });
    out
}

/// Drops flagged conditions and remaps/recomputes the error lists.
fn rebuild(report: &ExtractionReport, drop: &[bool]) -> ExtractionReport {
    let mut kept: Vec<Condition> = Vec::new();
    let mut remap = vec![usize::MAX; report.conditions.len()];
    for (i, cond) in report.conditions.iter().enumerate() {
        if !drop[i] {
            remap[i] = kept.len();
            kept.push(cond.clone());
        }
    }
    let conflicts = report
        .conflicts
        .iter()
        .filter(|c| !drop[c.kept] && !drop[c.dropped])
        .map(|c| metaform_core::Conflict {
            token: c.token,
            kept: remap[c.kept],
            dropped: remap[c.dropped],
        })
        .collect();
    ExtractionReport {
        conditions: kept,
        conflicts,
        missing: report.missing.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{BBox, Conflict, DomainSpec, TokenId};

    fn cond(attr: &str, tokens: &[u32]) -> Condition {
        Condition::new(
            attr,
            vec![],
            DomainSpec::text(),
            tokens.iter().map(|&t| TokenId(t)).collect(),
        )
    }

    fn learned(attrs: &[(&str, usize)]) -> DomainKnowledge {
        let mut k = DomainKnowledge::new();
        for (a, n) in attrs {
            for _ in 0..*n {
                k.learn(&ExtractionReport {
                    conditions: vec![cond(a, &[])],
                    conflicts: vec![],
                    missing: vec![],
                });
            }
        }
        k
    }

    #[test]
    fn similarity_basics() {
        assert_eq!(similarity("adults", "adults"), 1.0);
        assert!(similarity("adult", "adults") > 0.8);
        assert!(similarity("adults", "price") < 0.4);
        assert_eq!(similarity("", ""), 1.0);
    }

    #[test]
    fn knowledge_counts_and_matches() {
        let k = learned(&[("Adults", 3), ("Departing", 2)]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.support("adults"), 3);
        assert_eq!(k.support("ADULTS:"), 3, "normalized");
        assert_eq!(k.support("children"), 0);
        let (m, s) = k.best_match("Adult", 0.7).expect("close match");
        assert_eq!(m, "adults");
        assert!(s > 0.8);
        assert!(k.best_match("zzz", 0.7).is_none());
    }

    #[test]
    fn best_match_breaks_similarity_ties_lexicographically() {
        // "dates" and "rates" are both one substitution from "gates":
        // equal similarity. The winner must be the lexicographically
        // smaller key, every run, regardless of map iteration order.
        let k = learned(&[("rates", 1), ("dates", 1)]);
        assert_eq!(similarity("gates", "rates"), similarity("gates", "dates"));
        let (m, s) = k.best_match("gates", 0.5).expect("both candidates pass");
        assert_eq!(m, "dates", "ties must resolve to the smaller key");
        assert!(s > 0.5);
        // Insertion order must not matter either.
        let k2 = learned(&[("dates", 1), ("rates", 1)]);
        assert_eq!(k2.best_match("gates", 0.5).expect("match").0, "dates");
    }

    #[test]
    fn learn_skips_contested_conditions() {
        let mut k = DomainKnowledge::new();
        k.learn(&ExtractionReport {
            conditions: vec![cond("Good", &[0]), cond("Bad", &[1]), cond("AlsoBad", &[1])],
            conflicts: vec![Conflict {
                token: TokenId(1),
                kept: 1,
                dropped: 2,
            }],
            missing: vec![],
        });
        assert_eq!(k.support("good"), 1);
        assert_eq!(k.support("bad"), 0);
    }

    #[test]
    fn conflicts_resolved_toward_domain_support() {
        // Figure 14's case: "Adults" is a common airfare attribute,
        // "Number of passengers" much rarer — but the merger happened
        // to keep the rare one first. Knowledge flips it.
        let report = ExtractionReport {
            conditions: vec![
                cond("Number of passengers", &[3, 6]),
                cond("Adults", &[5, 6]),
            ],
            conflicts: vec![Conflict {
                token: TokenId(6),
                kept: 0,
                dropped: 1,
            }],
            missing: vec![],
        };
        let k = learned(&[("Adults", 5), ("Number of passengers", 1)]);
        let resolved = resolve_conflicts(&report, &k);
        assert_eq!(resolved.conditions.len(), 1);
        assert_eq!(resolved.conditions[0].attribute, "Adults");
        assert!(resolved.conflicts.is_empty());
    }

    #[test]
    fn unknown_attributes_keep_merger_primary() {
        let report = ExtractionReport {
            conditions: vec![cond("Alpha", &[0, 2]), cond("Beta", &[1, 2])],
            conflicts: vec![Conflict {
                token: TokenId(2),
                kept: 0,
                dropped: 1,
            }],
            missing: vec![],
        };
        let resolved = resolve_conflicts(&report, &DomainKnowledge::new());
        assert_eq!(resolved.conditions.len(), 1);
        assert_eq!(resolved.conditions[0].attribute, "Alpha");
    }

    #[test]
    fn missing_text_attaches_to_adjacent_unlabeled_condition() {
        // "Departing" label left of a widget whose condition came out
        // unlabeled (control-name fallback).
        let tokens = vec![
            Token::text(0, "Departing", BBox::new(10, 10, 75, 26)),
            Token::widget(1, TokenKind::Textbox, "f3", BBox::new(82, 8, 200, 28)),
        ];
        let mut c = cond("f3", &[1]);
        c.attribute = "f3".into();
        let report = ExtractionReport {
            conditions: vec![c],
            conflicts: vec![],
            missing: vec![TokenId(0)],
        };
        let k = learned(&[("Departing", 4)]);
        let refined = attach_missing(&report, &tokens, &k);
        assert!(refined.missing.is_empty());
        assert_eq!(refined.conditions[0].attribute, "Departing");
        assert_eq!(refined.conditions[0].tokens.len(), 2);
    }

    #[test]
    fn unrelated_missing_text_stays_missing() {
        let tokens = vec![
            Token::text(0, "best prices guaranteed", BBox::new(10, 10, 160, 26)),
            Token::widget(1, TokenKind::Textbox, "f3", BBox::new(170, 8, 300, 28)),
        ];
        let report = ExtractionReport {
            conditions: vec![cond("f3", &[1])],
            conflicts: vec![],
            missing: vec![TokenId(0)],
        };
        let k = learned(&[("Departing", 4)]);
        let refined = attach_missing(&report, &tokens, &k);
        assert_eq!(refined.missing.len(), 1);
        assert_eq!(refined.conditions[0].attribute, "f3");
    }

    #[test]
    fn labeled_conditions_never_overwritten() {
        let tokens = vec![
            Token::text(0, "Adults", BBox::new(10, 10, 52, 26)),
            Token::widget(1, TokenKind::Textbox, "a", BBox::new(60, 8, 200, 28)),
        ];
        let k = learned(&[("Adults", 2), ("Children", 2)]);
        let report = ExtractionReport {
            conditions: vec![cond("Children", &[1])], // labeled & known
            conflicts: vec![],
            missing: vec![TokenId(0)],
        };
        let refined = attach_missing(&report, &tokens, &k);
        assert_eq!(refined.conditions[0].attribute, "Children");
        assert_eq!(refined.missing.len(), 1);
    }
}
