//! The proximity baseline.
//!
//! Prior work associated form elements "pairwise" using "simple
//! heuristics such as proximity and alignment" (paper §2, re Raghavan &
//! Garcia-Molina's HiWE, the paper's reference 21). This module
//! implements that comparator: each input field is paired with its
//! closest text label; radio and
//! checkbox groups are joined by their HTML control names. It has the
//! failure modes the paper motivates the parsing paradigm with — no
//! global context, no operator recognition, no composite (range/date)
//! conditions.

use metaform_core::{
    relations, Condition, DomainKind, DomainSpec, ExtractionReport, Proximity, Token, TokenId,
    TokenKind,
};
use std::collections::BTreeMap;

/// Extracts conditions from tokens with pairwise proximity matching.
pub fn extract_baseline(tokens: &[Token]) -> ExtractionReport {
    let prox = Proximity::default();
    let texts: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Text)
        .collect();
    let mut used_text: Vec<bool> = vec![false; texts.len()];
    let mut conditions: Vec<Condition> = Vec::new();

    // Radio/checkbox groups by control name: caption = nearest text to
    // the right of each glyph.
    let mut groups: BTreeMap<(TokenKind, &str), Vec<&Token>> = BTreeMap::new();
    for t in tokens {
        if matches!(t.kind, TokenKind::Radiobutton | TokenKind::Checkbox) {
            groups.entry((t.kind, t.name.as_str())).or_default().push(t);
        }
    }
    for ((_, _), glyphs) in &groups {
        let mut values = Vec::new();
        let mut member_tokens: Vec<TokenId> = Vec::new();
        for g in glyphs {
            member_tokens.push(g.id);
            if let Some((idx, caption)) = nearest_text(&texts, g, &prox, |a, b, p| {
                relations::left(&a.pos, &b.pos, p) // caption sits right of the glyph
            }) {
                values.push(caption.sval.clone());
                used_text[idx] = true;
                member_tokens.push(caption.id);
            }
        }
        // Attribute: nearest unused text left of / above the group box.
        let group_box = glyphs
            .iter()
            .map(|g| g.pos)
            .reduce(|a, b| a.union(&b))
            .expect("group nonempty");
        let attr = texts
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                !used_text[*i]
                    && (relations::left(&t.pos, &group_box, &prox)
                        || relations::above(&t.pos, &group_box, &prox))
            })
            .min_by_key(|(_, t)| t.pos.distance(&group_box));
        let attribute = match attr {
            Some((i, t)) => {
                used_text[i] = true;
                member_tokens.push(t.id);
                t.sval.clone()
            }
            None => String::new(),
        };
        let domain = if glyphs.len() == 1 && glyphs[0].kind == TokenKind::Checkbox {
            DomainSpec::of(DomainKind::Boolean)
        } else {
            DomainSpec::enumerated(values)
        };
        conditions.push(Condition::new(attribute, vec![], domain, member_tokens));
    }

    // Every other input field: nearest text, preferring left then above.
    for t in tokens {
        if !t.kind.is_input_field()
            || matches!(t.kind, TokenKind::Radiobutton | TokenKind::Checkbox)
        {
            continue;
        }
        let mut member_tokens = vec![t.id];
        let attribute = {
            let pick = texts
                .iter()
                .enumerate()
                .filter(|(i, label)| {
                    !used_text[*i]
                        && (relations::left(&label.pos, &t.pos, &prox)
                            || relations::above(&label.pos, &t.pos, &prox)
                            || relations::right(&label.pos, &t.pos, &prox))
                })
                .min_by_key(|(_, label)| label.pos.distance(&t.pos));
            match pick {
                Some((i, label)) => {
                    used_text[i] = true;
                    member_tokens.push(label.id);
                    label.sval.clone()
                }
                None => String::new(),
            }
        };
        let domain = match t.kind {
            TokenKind::SelectionList => DomainSpec::enumerated(t.options.clone()),
            TokenKind::NumberList => DomainSpec {
                kind: DomainKind::Numeric,
                values: t.options.clone(),
            },
            TokenKind::MonthList | TokenKind::DayList | TokenKind::YearList => DomainSpec {
                kind: DomainKind::Enumerated,
                values: t.options.clone(),
            },
            _ => DomainSpec::text(),
        };
        conditions.push(Condition::new(attribute, vec![], domain, member_tokens));
    }

    let claimed: Vec<TokenId> = conditions.iter().flat_map(|c| c.tokens.clone()).collect();
    let missing = tokens
        .iter()
        .map(|t| t.id)
        .filter(|id| !claimed.contains(id))
        .collect();
    ExtractionReport {
        conditions,
        conflicts: Vec::new(),
        missing,
    }
}

/// Nearest text satisfying a relation to the anchor.
fn nearest_text<'t>(
    texts: &[&'t Token],
    anchor: &Token,
    prox: &Proximity,
    relation: impl Fn(&Token, &Token, &Proximity) -> bool,
) -> Option<(usize, &'t Token)> {
    texts
        .iter()
        .enumerate()
        .filter(|(_, t)| relation(anchor, t, prox))
        .min_by_key(|(_, t)| t.pos.distance(&anchor.pos))
        .map(|(i, t)| (i, *t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::BBox;

    fn label(id: u32, s: &str, x: i32, y: i32) -> Token {
        Token::text(id, s, BBox::new(x, y + 4, x + s.len() as i32 * 7, y + 20))
    }

    fn textbox(id: u32, name: &str, x: i32, y: i32) -> Token {
        Token::widget(
            id,
            TokenKind::Textbox,
            name,
            BBox::new(x, y, x + 140, y + 20),
        )
    }

    #[test]
    fn pairs_label_with_adjacent_box() {
        let tokens = vec![label(0, "Author", 10, 0), textbox(1, "q", 70, 0)];
        let report = extract_baseline(&tokens);
        assert_eq!(report.conditions.len(), 1);
        assert_eq!(report.conditions[0].attribute, "Author");
        assert_eq!(report.conditions[0].domain.kind, DomainKind::Text);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn groups_radios_by_name() {
        let tokens = vec![
            label(0, "Trip", 10, 0),
            Token::widget(1, TokenKind::Radiobutton, "t", BBox::new(60, 2, 73, 15)),
            label(2, "Round Trip", 78, 0),
            Token::widget(3, TokenKind::Radiobutton, "t", BBox::new(170, 2, 183, 15)),
            label(4, "One Way", 188, 0),
        ];
        let report = extract_baseline(&tokens);
        assert_eq!(report.conditions.len(), 1);
        let c = &report.conditions[0];
        assert_eq!(c.attribute, "Trip");
        assert_eq!(c.domain.values, vec!["Round Trip", "One Way"]);
    }

    #[test]
    fn single_checkbox_is_boolean() {
        let tokens = vec![
            Token::widget(0, TokenKind::Checkbox, "hc", BBox::new(10, 2, 23, 15)),
            label(1, "Hardcover only", 28, 0),
        ];
        let report = extract_baseline(&tokens);
        assert_eq!(report.conditions[0].domain.kind, DomainKind::Boolean);
    }

    #[test]
    fn known_failure_mode_operator_captions_absorbed_as_values() {
        // The amazon author row: the baseline reads the radio list as
        // an enumerated condition instead of operators — exactly the
        // kind of misreading the hidden-syntax parser fixes.
        let tokens = vec![
            label(0, "Author", 10, 0),
            textbox(1, "q", 70, 0),
            Token::widget(2, TokenKind::Radiobutton, "f", BBox::new(70, 26, 83, 39)),
            label(3, "exact name", 88, 24),
        ];
        let report = extract_baseline(&tokens);
        assert_eq!(report.conditions.len(), 2, "split into two conditions");
        assert!(
            report.conditions.iter().all(|c| c.operators.is_empty()),
            "no operator recognition"
        );
    }

    #[test]
    fn unpaired_tokens_reported_missing() {
        let tokens = vec![
            label(0, "A banner far away", 10, 0),
            Token::widget(
                1,
                TokenKind::SubmitButton,
                "go",
                BBox::new(10, 300, 60, 322),
            ),
        ];
        let report = extract_baseline(&tokens);
        assert!(report.conditions.is_empty());
        assert_eq!(report.missing.len(), 2);
    }

    #[test]
    fn select_domains_copied() {
        let tokens = vec![
            label(0, "Class", 10, 0),
            Token::widget(1, TokenKind::SelectionList, "c", BBox::new(60, 0, 160, 20))
                .with_options(vec!["Coach".into(), "First".into()]),
        ];
        let report = extract_baseline(&tokens);
        assert_eq!(report.conditions[0].domain.values, vec!["Coach", "First"]);
    }
}
