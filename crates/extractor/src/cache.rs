//! Content-addressed parse cache for crawler-scale revisit traffic.
//!
//! A crawler revisiting a query interface usually finds it unchanged
//! (tier A) or nearly so (tier B). The cache serves both tiers:
//!
//! * **Exact hit** — [`ParseCache::lookup`] keys on the page's
//!   [`TokenFingerprint`]; an unchanged page returns its cached
//!   [`ExtractionReport`] in O(hash), marked
//!   [`crate::Provenance::CacheHit`].
//! * **Delta re-parse** — on an exact miss, [`ParseCache::nearest`]
//!   finds the prior visit sharing the longest content-equal
//!   prefix+suffix with the new token stream; its retained
//!   [`ChartSnapshot`] seeds
//!   [`metaform_parser::ParseSession::parse_seeded`], which re-derives
//!   only what the edit could have changed and is marked
//!   [`crate::Provenance::DeltaReparse`]. The cache-parity suite
//!   enforces that both tiers are byte-identical to a cold parse.
//!
//! The cache sits behind a trait ([`ParseCache`]) with `&self`
//! methods, so one instance — typically the bounded-LRU
//! [`LruParseCache`] — can be shared across extractors, batch workers,
//! and service jobs via `Arc<dyn ParseCache>`. Entries remember the
//! compiled grammar they were parsed under; an extractor ignores
//! entries from a different grammar, so sharing a cache across
//! differently-configured extractors degrades to misses instead of
//! wrong answers.

use metaform_core::{ExtractionReport, Token, TokenFingerprint};
use metaform_grammar::CompiledGrammar;
use metaform_parser::ChartSnapshot;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// One finished grammar-path visit retained for future revisits: the
/// exact tokens, the merged report to replay on an exact hit, and the
/// chart snapshot to seed a delta re-parse from.
#[derive(Clone, Debug)]
pub struct CachedVisit {
    /// The visit's token stream, ids included (exact hits must match
    /// it in full; the fingerprint alone could collide).
    pub tokens: Vec<Token>,
    /// The merged report the visit produced.
    pub report: ExtractionReport,
    /// The finished chart, for seeding a delta re-parse.
    pub snapshot: ChartSnapshot,
    /// The compiled grammar the visit parsed under. Consumers must
    /// ignore visits from a different artifact (`Arc::ptr_eq`).
    pub grammar: Arc<CompiledGrammar>,
    /// Which pattern claimed which tokens in the visit's maximal
    /// trees — replayed on exact hits so cached pages feed the
    /// induction loop's mining evidence like cold ones.
    pub pattern_spans: Vec<metaform_grammar::PatternSpan>,
    /// The maximal trees' root symbols, replayed alongside.
    pub partial_roots: Vec<String>,
}

/// A shareable store of finished visits, keyed by token fingerprint.
///
/// All methods take `&self` (implementations synchronize internally)
/// so one cache can back concurrent batch workers and service jobs.
pub trait ParseCache: Send + Sync + std::fmt::Debug {
    /// The visit stored under `key`, if any. Implementations should
    /// treat a lookup as a use for eviction purposes.
    fn lookup(&self, key: &TokenFingerprint) -> Option<Arc<CachedVisit>>;

    /// The stored visit sharing the longest content-equal
    /// prefix+suffix with `tokens` (ties: most recently used),
    /// together with that shared length — or `None` when nothing
    /// overlaps at all. The candidate pool for a delta re-parse;
    /// callers apply their own similarity threshold to the returned
    /// length.
    fn nearest(&self, tokens: &[Token]) -> Option<(Arc<CachedVisit>, usize)>;

    /// Stores a finished visit under its fingerprint, evicting as
    /// needed.
    fn store(&self, key: TokenFingerprint, visit: Arc<CachedVisit>);

    /// Number of visits currently held.
    fn len(&self) -> usize;

    /// Whether the cache holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Content equality of two tokens, ids aside — the comparison the
/// revisit tiers are defined over (same fields the
/// [`TokenFingerprint`] hashes).
pub fn token_content_eq(a: &Token, b: &Token) -> bool {
    token_content_eq_translated(a, b, 0, 0)
}

/// [`token_content_eq`] with `a`'s position translated by `(dx, dy)`
/// before comparing — how the parser's revisit diff matches a suffix
/// that an earlier edit shifted wholesale.
fn token_content_eq_translated(a: &Token, b: &Token, dx: i32, dy: i32) -> bool {
    a.kind == b.kind
        && b.pos == a.pos.translated(dx, dy)
        && a.checked == b.checked
        && a.sval == b.sval
        && a.name == b.name
        && a.options == b.options
}

/// Length of the longest content-equal prefix plus suffix between two
/// token streams (ids ignored; the two never overlap) — the shared
/// region a delta re-parse would carry.
///
/// Mirrors the parser's diff: the prefix must match geometry-exactly,
/// while the suffix may match modulo the uniform translation implied
/// by the final token pair. Without the translated probe, any edit
/// that changes rendered length (a reworded label, an inserted row)
/// shifts every later token and collapses the scored suffix to zero —
/// so `nearest` would pass over exactly the visits the delta re-parse
/// handles best.
///
/// The translated probe requires at least one exactly-anchored
/// prefix token. With no anchor, "this page shifted wholesale" is
/// indistinguishable from "a *different* page that happens to be a
/// translated subsequence of a cached one" — the survey corpus
/// contains such pairs, and matching them would make a page's
/// provenance depend on which of its siblings a concurrent batch
/// worker stored first. Anchored matches can only be the same page
/// edited below the anchor, so scoring stays deterministic.
///
/// Deliberately NOT covered: edits that realign one layout column
/// (e.g. rewording a label widens its column, shifting only the
/// widgets aligned under it while interleaved labels stay put). The
/// shifted and unshifted tokens alternate, so no contiguous affix —
/// translated or not — can span them; and absolute distances between
/// the two classes genuinely change, so proximity predicates must be
/// re-evaluated. Those visits correctly score below the seeding
/// threshold and re-parse cold.
pub fn shared_affix(old: &[Token], new: &[Token]) -> usize {
    let limit = old.len().min(new.len());
    let mut prefix = 0;
    while prefix < limit && token_content_eq(&old[prefix], &new[prefix]) {
        prefix += 1;
    }
    let suffix_at = |dx: i32, dy: i32| -> usize {
        let mut suffix = 0;
        while suffix < limit - prefix
            && token_content_eq_translated(
                &old[old.len() - 1 - suffix],
                &new[new.len() - 1 - suffix],
                dx,
                dy,
            )
        {
            suffix += 1;
        }
        suffix
    };
    let mut suffix = suffix_at(0, 0);
    if prefix > 0 && prefix < limit {
        let (op, np) = (old[old.len() - 1].pos, new[new.len() - 1].pos);
        let (dx, dy) = (np.left - op.left, np.top - op.top);
        if (dx, dy) != (0, 0) {
            suffix = suffix.max(suffix_at(dx, dy));
        }
    }
    prefix + suffix
}

/// Bounded LRU [`ParseCache`]: a fingerprint-keyed map with a
/// monotone use tick; inserting past capacity evicts the
/// least-recently-used entry. Lock poisoning is shrugged off (the
/// cache holds immutable `Arc`s, so a panicked holder cannot leave a
/// half-written entry behind).
#[derive(Debug)]
pub struct LruParseCache {
    capacity: usize,
    inner: Mutex<LruInner>,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<TokenFingerprint, (u64, Arc<CachedVisit>)>,
    tick: u64,
}

impl LruParseCache {
    /// Default [`LruParseCache::new`] capacity.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A cache holding at most `capacity` visits (0 is treated as 1).
    pub fn new(capacity: usize) -> Self {
        LruParseCache {
            capacity: capacity.max(1),
            inner: Mutex::new(LruInner::default()),
        }
    }

    /// A default-capacity cache behind the `Arc<dyn ParseCache>`
    /// handle extractors and services share.
    pub fn shared() -> Arc<dyn ParseCache> {
        Arc::new(Self::new(Self::DEFAULT_CAPACITY))
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, LruInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for LruParseCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl ParseCache for LruParseCache {
    fn lookup(&self, key: &TokenFingerprint) -> Option<Arc<CachedVisit>> {
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|entry| {
            entry.0 = tick;
            entry.1.clone()
        })
    }

    fn nearest(&self, tokens: &[Token]) -> Option<(Arc<CachedVisit>, usize)> {
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        // Deterministic despite HashMap iteration: the max is taken
        // over (shared, tick), and ticks are unique. An entry whose
        // shorter stream cannot beat the best shared length so far is
        // skipped without comparing a single token.
        let mut best: Option<(usize, u64, TokenFingerprint)> = None;
        for (k, (tick, visit)) in inner.map.iter() {
            let ceiling = visit.tokens.len().min(tokens.len());
            if ceiling < best.map_or(1, |(shared, _, _)| shared) {
                continue;
            }
            let candidate = (shared_affix(&visit.tokens, tokens), *tick, *k);
            if candidate.0 > 0 && best.is_none_or(|b| candidate > b) {
                best = Some(candidate);
            }
        }
        let (shared, _, key) = best?;
        let entry = inner.map.get_mut(&key).expect("key just found");
        entry.0 = tick;
        Some((entry.1.clone(), shared))
    }

    fn store(&self, key: TokenFingerprint, visit: Arc<CachedVisit>) {
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, visit));
        if inner.map.len() > self.capacity {
            // Evict the least-recently-used entry (unique ticks make
            // the min unambiguous).
            let lru = inner
                .map
                .iter()
                .map(|(k, (tick, _))| (*tick, *k))
                .min()
                .map(|(_, k)| k)
                .expect("cache over capacity is nonempty");
            inner.map.remove(&lru);
        }
    }

    fn len(&self) -> usize {
        self.locked().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::BBox;

    fn tok(i: u32, s: &str) -> Token {
        Token::text(i, s, BBox::new(0, i as i32 * 20, 40, i as i32 * 20 + 16))
    }

    fn visit(tokens: Vec<Token>) -> Arc<CachedVisit> {
        let grammar = metaform_grammar::global_compiled();
        let session = &mut metaform_parser::ParseSession::new(grammar.clone());
        let result = session.parse(&tokens);
        let snapshot = ChartSnapshot::of(&result).expect("unbudgeted parse completes");
        Arc::new(CachedVisit {
            tokens,
            report: metaform_parser::merge(&result.chart, &result.trees),
            snapshot,
            grammar,
            pattern_spans: Vec::new(),
            partial_roots: Vec::new(),
        })
    }

    #[test]
    fn lookup_round_trips_and_misses() {
        let cache = LruParseCache::new(4);
        let v = visit(vec![tok(0, "Author")]);
        let key = TokenFingerprint::of(&v.tokens);
        assert!(cache.lookup(&key).is_none());
        assert!(cache.is_empty());
        cache.store(key, v.clone());
        assert_eq!(cache.len(), 1);
        let back = cache.lookup(&key).expect("stored");
        assert_eq!(back.tokens, v.tokens);
        let other = TokenFingerprint::of(&[tok(0, "Title")]);
        assert!(cache.lookup(&other).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = LruParseCache::new(2);
        let visits: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|s| visit(vec![tok(0, s)]))
            .collect();
        let keys: Vec<_> = visits
            .iter()
            .map(|v| TokenFingerprint::of(&v.tokens))
            .collect();
        cache.store(keys[0], visits[0].clone());
        cache.store(keys[1], visits[1].clone());
        // Touch "a" so "b" is the LRU when "c" arrives.
        assert!(cache.lookup(&keys[0]).is_some());
        cache.store(keys[2], visits[2].clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&keys[0]).is_some(), "recently used survives");
        assert!(cache.lookup(&keys[1]).is_none(), "LRU evicted");
        assert!(cache.lookup(&keys[2]).is_some());
    }

    #[test]
    fn nearest_prefers_the_longest_shared_affix() {
        let cache = LruParseCache::new(4);
        let far = visit(vec![tok(0, "x"), tok(1, "y")]);
        let near = visit(vec![tok(0, "a"), tok(1, "b"), tok(2, "c")]);
        cache.store(TokenFingerprint::of(&far.tokens), far);
        cache.store(TokenFingerprint::of(&near.tokens), near.clone());
        // Edit the middle of the near stream: prefix 1 + suffix 1.
        let probe = vec![tok(0, "a"), tok(1, "B"), tok(2, "c")];
        let (found, shared) = cache.nearest(&probe).expect("overlap exists");
        assert_eq!(found.tokens, near.tokens);
        assert_eq!(shared, 2, "prefix 1 + suffix 1");
        // A stream sharing nothing finds nothing.
        let alien = vec![tok(5, "zzz")];
        assert!(cache.nearest(&alien).is_none());
    }

    #[test]
    fn shared_affix_counts_a_uniformly_translated_suffix() {
        // A middle edit that grows by one row shifts every later token
        // down by 20px. Geometry-exact matching would score suffix 0;
        // the translated probe recovers the tail, mirroring what the
        // parser's delta re-parse actually carries.
        let old = vec![tok(0, "a"), tok(1, "edited"), tok(2, "c"), tok(3, "d")];
        let mut new = old.clone();
        new[1].sval = "now two lines".into();
        for t in &mut new[2..] {
            t.pos = t.pos.translated(0, 20);
        }
        assert_eq!(
            shared_affix(&old, &new),
            3,
            "prefix 1 + translated suffix 2"
        );
        // A tail that shifted non-uniformly stays unmatched.
        let mut skewed = new.clone();
        skewed[2].pos = skewed[2].pos.translated(0, 5);
        assert_eq!(shared_affix(&old, &skewed), 2, "prefix 1 + suffix 1");
    }

    #[test]
    fn translated_suffix_requires_an_anchored_prefix() {
        // A page that is exactly another page's tail, translated
        // wholesale (the survey corpus contains such sibling pairs).
        // With no exactly-matching prefix token there is no anchor
        // tying the two streams to the same page, so the translated
        // probe must not fire — otherwise a cold visit's provenance
        // would depend on which sibling a concurrent worker cached
        // first.
        let old = vec![tok(0, "from"), tok(1, "to"), tok(2, "go")];
        let subsequence: Vec<Token> = old[1..]
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.pos = t.pos.translated(0, -20);
                t
            })
            .collect();
        assert_eq!(shared_affix(&old, &subsequence), 0, "no anchor, no match");
    }

    #[test]
    fn shared_affix_ignores_ids_and_never_overlaps() {
        let old = vec![tok(0, "a"), tok(1, "b")];
        let mut renumbered = old.clone();
        renumbered[0].id = metaform_core::TokenId(7);
        renumbered[1].id = metaform_core::TokenId(8);
        assert_eq!(shared_affix(&old, &renumbered), 2, "ids excluded");
        // Repeated identical tokens: prefix + suffix stays bounded by
        // the shorter stream.
        let rep = vec![tok(0, "a"), tok(0, "a")];
        let longer = vec![tok(0, "a"), tok(0, "a"), tok(0, "a")];
        assert!(shared_affix(&rep, &longer) <= 2);
    }
}
