//! # metaform-extractor
//!
//! The end-to-end **form extractor** (paper Figure 2): given an HTML
//! query form, produce its query capabilities — the set of conditions
//! `[attribute; operators; domain]` — by running the layout engine,
//! tokenizer, best-effort parser (under the derived 2P grammar), and
//! merger in sequence.
//!
//! ```
//! use metaform_extractor::FormExtractor;
//!
//! let html = "<form>Author <input type=text name=q>\
//!             <input type=submit value=Search></form>";
//! let extraction = FormExtractor::new().extract(html);
//! assert_eq!(extraction.report.conditions.len(), 1);
//! assert_eq!(extraction.report.conditions[0].attribute, "Author");
//! ```
//!
//! Also includes the pairwise-proximity [`baseline`] comparator used in
//! the evaluation.
//!
//! ## Compile once, parse many
//!
//! A `FormExtractor` compiles its grammar exactly once (the global
//! grammar is compiled once *per process*) and shares the artifact
//! behind an `Arc`. Single pages go through [`FormExtractor::extract`];
//! whole corpora go through [`FormExtractor::extract_batch`], which
//! fans pages out over worker threads — one parse session per worker,
//! deterministic input-order results (see [`batch`]).
//!
//! ## Fault isolation and graceful degradation
//!
//! Extraction is best-effort end to end: every page runs behind its
//! own panic boundary and per-page budgets (instance cap and
//! wall-clock deadline). The fallible APIs
//! ([`FormExtractor::try_extract`],
//! [`FormExtractor::extract_batch_results`]) surface failures as a
//! typed [`ExtractError`]; the infallible APIs settle failed pages
//! down a degradation ladder and mark the provenance: the maximized
//! partial grammar-path report when it dominates the proximity
//! baseline ([`Provenance::PartialSalvage`], scored by
//! [`condition_coverage`]), the [`baseline`] extractor otherwise
//! ([`Provenance::BaselineFallback`]). One poison page never kills a
//! batch and callers always get *some* capability description. A
//! deterministic [`FaultPlan`] can inject panic/stall/cancel faults at
//! chosen page indices to exercise the whole ladder without timing
//! races.
//!
//! ## Adaptive retries, cancellation, telemetry
//!
//! Budget failures are verdicts on the budget, not the page:
//! [`FormExtractor::extract_batch_adaptive`] re-runs only the
//! `Truncated`/`Timeout` pages under escalating budgets
//! ([`AdaptiveOptions`]) before degrading the survivors. A
//! [`metaform_parser::CancelToken`] attached via
//! [`FormExtractor::cancel_token`] aborts a whole batch mid-flight
//! while keeping completed pages. Every page that failed at least once
//! is narrated as a [`FailureRecord`] — JSON/CSV-serializable via
//! [`telemetry`] — so corpus runs leave a machine-readable failure
//! trail instead of log lines.
//!
//! ## Revisit path: parse cache + incremental re-parse
//!
//! Crawler-scale deployments re-extract pages that are identical or
//! nearly identical to a prior visit. An extractor built with
//! [`FormExtractor::parse_cache`] serves those revisits in two tiers:
//! an unchanged page replays its cached report in O(hash)
//! ([`Provenance::CacheHit`]); a near-identical page seeds its parse
//! from the cached chart snapshot and re-derives only the changed
//! region ([`Provenance::DeltaReparse`]). Both tiers are
//! byte-identical to a cold parse — the cache-parity invariant the
//! `cache_parity` suite enforces — and [`BatchStats`] counts
//! hits/deltas/misses per batch (see [`cache`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod cache;
pub mod error;
pub mod pipeline;
pub mod resolve;
pub mod telemetry;

pub use baseline::extract_baseline;
pub use batch::{AdaptiveBatch, AdaptiveOptions, BatchStats};
pub use cache::{CachedVisit, LruParseCache, ParseCache};
pub use error::ExtractError;
pub use pipeline::{
    condition_coverage, token_coverage, Extraction, Fault, FaultPlan, FormExtractor, Provenance,
};
pub use resolve::{attach_missing, resolve_conflicts, DomainKnowledge};
pub use telemetry::{
    failures_from_json, failures_to_csv, failures_to_json, stats_from_json, stats_to_json,
    AttemptRecord, CacheOutcome, ErrorKind, FailureOutcome, FailureRecord,
};
