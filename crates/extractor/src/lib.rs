//! # metaform-extractor
//!
//! The end-to-end **form extractor** (paper Figure 2): given an HTML
//! query form, produce its query capabilities — the set of conditions
//! `[attribute; operators; domain]` — by running the layout engine,
//! tokenizer, best-effort parser (under the derived 2P grammar), and
//! merger in sequence.
//!
//! ```
//! use metaform_extractor::FormExtractor;
//!
//! let html = "<form>Author <input type=text name=q>\
//!             <input type=submit value=Search></form>";
//! let extraction = FormExtractor::new().extract(html);
//! assert_eq!(extraction.report.conditions.len(), 1);
//! assert_eq!(extraction.report.conditions[0].attribute, "Author");
//! ```
//!
//! Also includes the pairwise-proximity [`baseline`] comparator used in
//! the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod pipeline;
pub mod resolve;

pub use baseline::extract_baseline;
pub use pipeline::{Extraction, FormExtractor};
pub use resolve::{attach_missing, resolve_conflicts, DomainKnowledge};
