//! Exercises the rollback path end-to-end: when a preference's r-edge
//! cannot be scheduled (even after transformation), losers are pruned
//! *late* — after their parents already instantiated — and the parser
//! must erase those false ancestors (paper §5.1: "rollback is used to
//! remove all those false ancestors").

use metaform_core::{BBox, Token, TokenKind};
use metaform_grammar::{
    build_schedule, ConflictCond, Constraint, Constructor, Grammar, GrammarBuilder, WinCriteria,
};
use metaform_parser::{parse, parse_with, ParserOptions};

/// A grammar engineered so the preference `C > B` cannot keep any
/// r-edge: `B`'s parent `P` feeds `C` (`A → B → P → C`), so both the
/// direct edge (C before B) and the transformed edge (C before P)
/// close cycles. The schedule must mark the preference for rollback.
fn rollback_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("C");
    let text = b.t(TokenKind::Text);
    let textbox = b.t(TokenKind::Textbox);
    let a = b.nt("A");
    let bb = b.nt("B");
    let p = b.nt("P");
    let c = b.nt("C");
    b.production("A", a, vec![text], Constraint::True, Constructor::Group);
    b.production("B", bb, vec![a], Constraint::True, Constructor::Group);
    b.production("P", p, vec![bb], Constraint::True, Constructor::Group);
    b.production(
        "C",
        c,
        vec![p, textbox],
        Constraint::SameRow(0, 1),
        Constructor::Group,
    );
    b.preference("RC>B", c, bb, ConflictCond::Overlap, WinCriteria::Always);
    b.build().expect("valid grammar")
}

fn tokens() -> Vec<Token> {
    vec![
        Token::text(0, "Author", BBox::new(10, 10, 52, 26)),
        Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 8, 200, 28)),
    ]
}

#[test]
fn schedule_marks_the_preference_for_rollback() {
    let g = rollback_grammar();
    let s = build_schedule(&g).expect("schedulable");
    assert_eq!(s.rollback_prefs().count(), 1);
}

#[test]
fn rollback_erases_false_ancestors() {
    let g = rollback_grammar();
    let result = parse(&g, &tokens());
    assert!(result.stats.invalidated >= 1, "{:?}", result.stats);
    assert!(
        result.stats.rolled_back >= 1,
        "ancestors of the loser must be rolled back: {:?}",
        result.stats
    );
    // Consistency: no valid instance may rest on an invalid child.
    for id in result.chart.ids() {
        if result.chart.is_valid(id) {
            for &child in result.chart.children(id) {
                assert!(
                    result.chart.is_valid(child),
                    "valid {id:?} has invalid child {child:?}"
                );
            }
        }
    }
    // The loser symbol has no valid survivors.
    let b_sym = g.symbols.lookup("B").unwrap();
    assert!(result.chart.valid_of_symbol(b_sym).is_empty());
}

#[test]
fn disabling_rollback_leaves_false_ancestors() {
    let g = rollback_grammar();
    let opts = ParserOptions {
        rollback: false,
        ..ParserOptions::default()
    };
    let result = parse_with(&g, &tokens(), &opts);
    assert_eq!(result.stats.rolled_back, 0);
    // Without compensation, the false parent of the pruned loser
    // survives — exactly the "negative effect" the paper describes.
    let p_sym = g.symbols.lookup("P").unwrap();
    assert!(
        !result.chart.valid_of_symbol(p_sym).is_empty(),
        "false ancestor lingers when rollback is off"
    );
}
