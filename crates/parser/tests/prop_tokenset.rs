//! Property tests: `TokenSet` against a `BTreeSet<u32>` model.
//!
//! The span bitset has two representations — two inline words for
//! interfaces of at most [`INLINE_TOKENS`] tokens, a heap spill above
//! that — and every operation carries dual code paths plus an
//! incrementally-maintained cardinality. These tests pin both paths,
//! and their interaction across the boundary, to the one obviously
//! correct model: an ordered set of ids.

use metaform_core::TokenId;
use metaform_parser::{TokenSet, INLINE_TOKENS};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

fn build(capacity: usize, ids: &[u32]) -> (TokenSet, BTreeSet<u32>) {
    let mut set = TokenSet::new(capacity);
    let mut model = BTreeSet::new();
    for &id in ids {
        set.insert(TokenId(id));
        model.insert(id);
    }
    (set, model)
}

fn ids_list(set: &TokenSet) -> Vec<u32> {
    set.iter().map(|t| t.0).collect()
}

fn model_list(model: &BTreeSet<u32>) -> Vec<u32> {
    model.iter().copied().collect()
}

fn fnv_hash(set: &TokenSet) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    set.hash(&mut h);
    h.finish()
}

/// One capacity spanning inline, boundary, and spilled regimes, with
/// two id samples drawn below it. Duplicated inserts are deliberate:
/// the incremental `len` must not double-count.
fn capacity_and_ids() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>)> {
    prop_oneof![
        1usize..3 * INLINE_TOKENS + 1,
        // Extra weight right at the inline/spill boundary.
        (INLINE_TOKENS - 2)..(INLINE_TOKENS + 3),
    ]
    .prop_flat_map(|cap| {
        let ids = || proptest::collection::vec(0..cap as u32, 0..cap.min(96) + 1);
        (Just(cap), ids(), ids())
    })
}

proptest! {
    #[test]
    fn observations_match_the_model((cap, a_ids, b_ids) in capacity_and_ids()) {
        let (a, ma) = build(cap, &a_ids);
        let (b, mb) = build(cap, &b_ids);

        prop_assert_eq!(a.count(), ma.len());
        prop_assert_eq!(a.is_empty(), ma.is_empty());
        prop_assert_eq!(a.min_id().map(|t| t.0), ma.first().copied());
        prop_assert_eq!(a.max_id().map(|t| t.0), ma.last().copied());
        prop_assert_eq!(ids_list(&a), model_list(&ma));
        for id in 0..cap as u32 {
            prop_assert_eq!(a.contains(TokenId(id)), ma.contains(&id));
        }

        prop_assert_eq!(a.intersects(&b), !ma.is_disjoint(&mb));
        prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb));
        prop_assert_eq!(
            a.is_strict_subset(&b),
            ma.is_subset(&mb) && ma.len() < mb.len()
        );

        let mut u = a.clone();
        u.union_with(&b);
        let mu: BTreeSet<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(u.count(), mu.len());
        prop_assert_eq!(ids_list(&u), model_list(&mu));
    }

    #[test]
    fn equality_and_hash_track_content_not_representation(
        ids in proptest::collection::vec(0..INLINE_TOKENS as u32, 0..INLINE_TOKENS + 1),
    ) {
        // The same ids at the two capacities that straddle the
        // boundary: one set stays inline, the other spills. `Eq` and
        // `Hash` are defined over logical bit content, so the pair
        // must be interchangeable.
        let (inline_set, model) = build(INLINE_TOKENS, &ids);
        let (spilled, _) = build(INLINE_TOKENS + 1, &ids);
        prop_assert_eq!(&inline_set, &spilled);
        prop_assert_eq!(fnv_hash(&inline_set), fnv_hash(&spilled));

        // Cross-representation queries agree with self-queries.
        prop_assert!(inline_set.is_subset(&spilled));
        prop_assert!(spilled.is_subset(&inline_set));
        prop_assert!(!inline_set.is_strict_subset(&spilled));
        prop_assert_eq!(inline_set.intersects(&spilled), !model.is_empty());

        // Union across representations is idempotent on equal content.
        let mut u = spilled.clone();
        u.union_with(&inline_set);
        prop_assert_eq!(&u, &inline_set);
        prop_assert_eq!(u.count(), model.len());
    }
}

#[test]
fn boundary_ids_at_127_and_128() {
    // Highest inline id.
    let s = TokenSet::singleton(INLINE_TOKENS, TokenId(127));
    assert!(s.contains(TokenId(127)));
    assert_eq!(s.count(), 1);
    assert_eq!(s.min_id(), Some(TokenId(127)));
    assert_eq!(s.max_id(), Some(TokenId(127)));

    // First id that forces the spill representation.
    let mut big = TokenSet::new(INLINE_TOKENS + 1);
    big.insert(TokenId(128));
    big.insert(TokenId(128)); // duplicate must not double-count
    assert!(big.contains(TokenId(128)));
    assert!(!big.contains(TokenId(127)));
    assert_eq!(big.count(), 1);
    assert_eq!(big.max_id(), Some(TokenId(128)));

    // The two cannot intersect, and the empty inline set is a strict
    // subset of the spilled singleton.
    let empty = TokenSet::new(INLINE_TOKENS);
    assert!(!s.intersects(&big));
    assert!(empty.is_subset(&big));
    assert!(empty.is_strict_subset(&big));
}
