//! Property tests: best-effort parser invariants under randomized
//! token layouts.
//!
//! The defining property of a *best-effort* parser is totality: no
//! token arrangement, however chaotic, may be rejected or crash it —
//! "our parser cannot reject any input query form, even if not fully
//! parsed, as illegal" (paper §3.3).

use metaform_core::{BBox, Token, TokenKind};
use metaform_grammar::{global_grammar, paper_example_grammar, Grammar};
use metaform_parser::{parse, parse_with, ParserOptions};
use proptest::prelude::*;

/// Random token soup: text/widget tokens at arbitrary positions.
fn token_soup(max: usize) -> impl Strategy<Value = Vec<Token>> {
    let kinds = prop_oneof![
        Just(TokenKind::Text),
        Just(TokenKind::Textbox),
        Just(TokenKind::SelectionList),
        Just(TokenKind::Radiobutton),
        Just(TokenKind::Checkbox),
        Just(TokenKind::SubmitButton),
        Just(TokenKind::NumberList),
        Just(TokenKind::MonthList),
    ];
    proptest::collection::vec((kinds, 0i32..600, 0i32..400, "[a-zA-Z ]{0,20}"), 0..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (kind, x, y, s))| {
                    let (w, h) = match kind {
                        TokenKind::Text => ((s.len() as i32 * 7).max(7), 16),
                        TokenKind::Radiobutton | TokenKind::Checkbox => (13, 13),
                        _ => (120, 20),
                    };
                    let mut t = Token {
                        id: metaform_core::TokenId(i as u32),
                        kind,
                        pos: BBox::at(x, y, w, h),
                        sval: s,
                        name: format!("f{i}"),
                        options: vec![],
                        checked: false,
                    };
                    if kind == TokenKind::SelectionList {
                        t.options = vec!["alpha".into(), "beta".into()];
                    }
                    if kind == TokenKind::NumberList {
                        t.options = (1..=6).map(|n| n.to_string()).collect();
                    }
                    t
                })
                .collect()
        },
    )
}

fn check_invariants(g: &Grammar, tokens: &[Token]) -> Result<(), TestCaseError> {
    let res = parse(g, tokens);

    // Terminal seeding: exactly one terminal instance per token.
    let terminals = res
        .chart
        .ids()
        .filter(|&i| res.chart.prod(i).is_none())
        .count();
    prop_assert_eq!(terminals, tokens.len());

    // Every tree root is valid and nonterminal; spans within bounds.
    for &t in &res.trees {
        prop_assert!(res.chart.is_valid(t));
        prop_assert!(res.chart.prod(t).is_some());
        prop_assert!(res.chart.span(t).count() <= tokens.len());
        prop_assert!(!res.chart.span(t).is_empty());
    }

    // Maximality: no selected tree strictly subsumed by another valid
    // instance.
    for &t in &res.trees {
        let span = res.chart.span(t);
        for j in res.chart.ids() {
            if res.chart.is_valid(j) && res.chart.prod(j).is_some() {
                prop_assert!(
                    !span.is_strict_subset(res.chart.span(j)),
                    "tree {:?} subsumed by {:?}",
                    t,
                    j
                );
            }
        }
    }

    // Every instance's span equals the union of its children's spans.
    for i in res.chart.ids() {
        if res.chart.prod(i).is_some() {
            let mut union = metaform_parser::TokenSet::new(tokens.len());
            for &c in res.chart.children(i) {
                union.union_with(res.chart.span(c));
            }
            prop_assert_eq!(&union, res.chart.span(i), "instance {:?}", i);
            // Children are pairwise token-disjoint.
            let total: usize = res
                .chart
                .children(i)
                .iter()
                .map(|&c| res.chart.span(c).count())
                .sum();
            prop_assert_eq!(total, res.chart.span(i).count());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paper_grammar_total_and_consistent(tokens in token_soup(12)) {
        check_invariants(&paper_example_grammar(), &tokens)?;
    }

    #[test]
    fn global_grammar_total_and_consistent(tokens in token_soup(10)) {
        check_invariants(&global_grammar(), &tokens)?;
    }

    #[test]
    fn pruning_never_creates_more_instances_than_brute_force(tokens in token_soup(8)) {
        let g = paper_example_grammar();
        let pruned = parse(&g, &tokens);
        let brute = parse_with(&g, &tokens, &ParserOptions::brute_force());
        prop_assert!(pruned.stats.created <= brute.stats.created);
        // Brute force never invalidates anything.
        prop_assert_eq!(brute.stats.invalidated, 0);
        prop_assert_eq!(brute.stats.rolled_back, 0);
    }

    #[test]
    fn merger_total(tokens in token_soup(10)) {
        let g = global_grammar();
        let res = parse(&g, &tokens);
        let report = metaform_parser::merge(&res.chart, &res.trees);
        // Condition tokens refer to real token ids.
        for c in &report.conditions {
            for t in &c.tokens {
                prop_assert!((t.index()) < tokens.len());
            }
        }
        // Missing + covered partitions the token set when there are no
        // overlaps... at minimum, missing tokens are real and unclaimed.
        for m in &report.missing {
            prop_assert!(m.index() < tokens.len());
            for tree in &res.trees {
                prop_assert!(!res.chart.span(*tree).contains(*m));
            }
        }
    }
}
