//! The best-effort parser `2PParser` (paper Figure 11).
//!
//! ```text
//! Proc 2PParser(TS, G):
//!   Y = BldSchldGraph(G); find a topological order of symbols in Y
//!   for each symbol A in order:
//!     I += instantiate(A)                  // fix-point per symbol
//!     for each preference R involving A:
//!       F = enforce(R)                     // just-in-time pruning
//!       for each invalidated instance i ∈ F: Rollback(i)
//!   res = PRHandler()                      // partial tree maximization
//! ```

use crate::cancel::CancelToken;
use crate::instance::{Chart, InstId, SeedInfo};
use crate::maximize::maximize;
use crate::stats::{BudgetOutcome, ParseStats};
use metaform_core::{BBox, Token};
use metaform_grammar::{
    build_schedule, preference_index, ConflictCond, Constructor, DepthTerms, Grammar, Hoisted,
    LastSlotBand, Payload, PrefId, ProdId, Production, Schedule, SymbolId, SymbolKind, WinCriteria,
};
use std::time::{Duration, Instant};

/// Order in which preferences are applied at each enforcement point —
/// §5.2's consistency probe: "different orders of applying the
/// preferences" must "yield the same result" for a well-formed
/// grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PreferenceOrder {
    /// Declaration order (the default).
    #[default]
    Scheduled,
    /// Reverse declaration order (for consistency checking).
    Reversed,
}

/// Fix-point scheduling strategy. Both schedules produce **identical
/// charts** — same instances in the same creation order, same
/// invalidations, same trees (the `seminaive_parity` suite asserts
/// this across the corpus); they differ only in how much redundant
/// work each round performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FixpointMode {
    /// Delta-driven (the default): each round of `apply_production`
    /// only enumerates component combinations containing at least one
    /// instance created since the production's previous application,
    /// and each preference sweep only tests winner/loser pairs where
    /// at least one side is new — the semi-naive evaluation of Datalog
    /// engines, applied to Figure 11's fix-point.
    #[default]
    SemiNaive,
    /// Re-enumerate the full cartesian product every round, relying on
    /// the dedup set to discard repeats, and re-sweep every
    /// enforcement pair — the reference schedule the parity suite and
    /// benches compare against.
    Naive,
}

/// Parser configuration. The defaults give the full best-effort
/// behaviour; the switches exist for the paper's ablations.
#[derive(Clone, Debug)]
pub struct ParserOptions {
    /// Enforce preferences (just-in-time pruning). Off = the basic
    /// "brute-force" fix-point of §4.2.1 that exhausts all
    /// interpretations.
    pub enforce_preferences: bool,
    /// Compensate dropped r-edges by rolling back false ancestors.
    pub rollback: bool,
    /// Hard cap on created instances — a safety valve for the
    /// exponential brute-force mode (visual-language membership is
    /// NP-complete, §5.1). Hitting it ends the parse with
    /// [`BudgetOutcome::TruncatedInstances`].
    pub max_instances: usize,
    /// Wall-clock budget for one parse. `None` (the default) means
    /// unbounded; `Some(d)` aborts instantiation once `d` has elapsed,
    /// ending the parse with [`BudgetOutcome::DeadlineExceeded`].
    /// Whatever the chart holds at that point is still maximized into
    /// partial trees — the parse stays best-effort, just bounded.
    pub deadline: Option<Duration>,
    /// Preference application order (see [`PreferenceOrder`]).
    pub preference_order: PreferenceOrder,
    /// Fix-point scheduling strategy (see [`FixpointMode`]).
    pub fixpoint: FixpointMode,
    /// Batch-level cancel token, observed at the same sampled poll as
    /// the deadline. `None` (the default) means not cancellable. When
    /// the token fires, the parse stops at its next poll — at most one
    /// 64-step enumeration interval away — with
    /// [`BudgetOutcome::Cancelled`], still maximizing whatever the
    /// chart holds. Cancellation wins over the deadline when both
    /// trigger at one poll.
    pub cancel: Option<CancelToken>,
    /// Collect a per-phase wall-clock breakdown into
    /// [`ParseStats::phase`]. Off by default: the extra clock reads are
    /// cheap but not free, and benchmarks want their timed passes
    /// unperturbed — profile in a separate collection pass.
    pub profile: bool,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            enforce_preferences: true,
            rollback: true,
            max_instances: 2_000_000,
            deadline: None,
            preference_order: PreferenceOrder::Scheduled,
            fixpoint: FixpointMode::SemiNaive,
            cancel: None,
            profile: false,
        }
    }
}

impl ParserOptions {
    /// The exhaustive baseline: no pruning at all.
    pub fn brute_force() -> Self {
        ParserOptions {
            enforce_preferences: false,
            rollback: false,
            ..Default::default()
        }
    }
}

/// A finished parse: the chart, the maximal partial trees, and stats.
#[derive(Clone, Debug)]
pub struct ParseResult {
    /// All instances created during parsing.
    pub chart: Chart,
    /// Roots of the maximal partial parse trees, largest span first.
    pub trees: Vec<InstId>,
    /// Counters.
    pub stats: ParseStats,
}

/// Parses tokens under a grammar with default options.
///
/// ```
/// use metaform_core::{BBox, Token, TokenKind};
/// use metaform_grammar::paper_example_grammar;
/// use metaform_parser::{merge, parse};
///
/// // "Author [textbox]" as two visual tokens.
/// let tokens = vec![
///     Token::text(0, "Author", BBox::new(10, 12, 52, 28)),
///     Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 8, 200, 28)),
/// ];
/// let grammar = paper_example_grammar();
/// let result = parse(&grammar, &tokens);
/// assert!(result.stats.complete);
///
/// let report = merge(&result.chart, &result.trees);
/// assert_eq!(report.conditions[0].attribute, "Author");
/// ```
pub fn parse(grammar: &Grammar, tokens: &[Token]) -> ParseResult {
    parse_with(grammar, tokens, &ParserOptions::default())
}

/// Parses tokens under a grammar with explicit options.
///
/// This is the one-shot compatibility path: it rebuilds the schedule
/// and preference index on every call. Workloads that parse many
/// interfaces under one grammar should compile once
/// ([`metaform_grammar::Grammar::compile`]) and reuse a
/// [`crate::ParseSession`] instead.
///
/// Grammars produced by `GrammarBuilder` are already validated, so
/// scheduling cannot fail for them; should an unschedulable grammar
/// reach this function anyway, it degrades to an empty best-effort
/// result (no trees, no instances) rather than panicking. The strict
/// path is `Grammar::compile`, which surfaces the error.
pub fn parse_with(grammar: &Grammar, tokens: &[Token], opts: &ParserOptions) -> ParseResult {
    let Ok(schedule) = build_schedule(grammar) else {
        return empty_result(grammar, tokens);
    };
    let prefs = preference_index(grammar);
    let mut scratch = Scratch::default();
    let chart = Chart::new(tokens.to_vec(), grammar.symbols.len());
    let mut result = run_parse(grammar, &schedule, &prefs, chart, opts, &mut scratch, None);
    result.stats.schedules_built = 1;
    result
}

/// The degenerate result for inputs no parse was attempted on.
fn empty_result(grammar: &Grammar, tokens: &[Token]) -> ParseResult {
    ParseResult {
        chart: Chart::new(tokens.to_vec(), grammar.symbols.len()),
        trees: Vec::new(),
        stats: ParseStats {
            tokens: tokens.len(),
            ..Default::default()
        },
    }
}

/// The parse core (paper Figure 11), shared by the one-shot wrappers
/// and [`crate::ParseSession`]. The caller provides the already-built
/// schedule and per-symbol preference index plus a chart targeted at
/// the tokens; `scratch` buffers are recycled across calls.
///
/// `seed` carries the bookkeeping of a chart pre-populated by
/// [`Chart::carry_from`] (the incremental re-parse path): terminal
/// seeding skips mapped tokens, production watermarks start at each
/// candidate list's carried-valid boundary, preference watermarks
/// start at the per-symbol carried-valid counts, and rollback is
/// forced on for every preference (a revived loser may have carried
/// parents a cold parse would never build — they must be erased).
pub(crate) fn run_parse(
    grammar: &Grammar,
    schedule: &Schedule,
    prefs_by_symbol: &[Vec<PrefId>],
    chart: Chart,
    opts: &ParserOptions,
    scratch: &mut Scratch,
    seed: Option<&SeedInfo>,
) -> ParseResult {
    let started = Instant::now();
    let token_count = chart.tokens().len();
    scratch.reset_for(grammar);
    if let Some(seed) = seed {
        debug_assert!(
            seed.prod_boundary <= seed.boundary,
            "production floor may only stop short of the carried-valid group"
        );
        if opts.fixpoint == FixpointMode::SemiNaive {
            // Pairs of carried old-valid instances both survived the
            // old (completed) parse, so their verdicts are permanent:
            // the sweep can start above them. Naive mode keeps every
            // watermark at zero and re-derives everything — the parity
            // reference.
            for (i, mark) in scratch.pref_marks.iter_mut().enumerate() {
                let pref = grammar.preference(PrefId(i as u32));
                *mark = (
                    seed.valid_counts[pref.winner.index()],
                    seed.valid_counts[pref.loser.index()],
                );
            }
        }
    }
    let mut p = Parser {
        grammar,
        schedule,
        prefs_by_symbol,
        chart,
        opts,
        stats: ParseStats {
            tokens: token_count,
            ..Default::default()
        },
        deadline: opts.deadline.map(|d| started + d),
        deadline_tick: 0,
        scratch,
        seed,
    };
    let profile = opts.profile;
    let t = profile.then(Instant::now);
    p.seed_terminals();
    if let Some(t) = t {
        p.stats.phase.alloc_ns += t.elapsed().as_nanos() as u64;
    }
    for i in 0..schedule.order.len() {
        // The cancel token and deadline are re-checked per symbol
        // (and, cheaply, inside the enumeration fix-point); once
        // either fires, instantiation stops and whatever the chart
        // holds is maximized below.
        if p.interrupted() {
            break;
        }
        let symbol = schedule.order[i];
        let t = profile.then(Instant::now);
        p.instantiate(symbol);
        if let Some(t) = t {
            p.stats.phase.instantiate_ns += t.elapsed().as_nanos() as u64;
        }
        if p.opts.enforce_preferences {
            let t = profile.then(Instant::now);
            p.enforce_involving(symbol);
            if let Some(t) = t {
                p.stats.phase.enforce_ns += t.elapsed().as_nanos() as u64;
            }
        }
    }
    // Final sweep: catches losers of rollback-mode preferences created
    // after the preference's last scheduled enforcement. Skipped past
    // the deadline or a cancellation — enforcement over a large chart
    // is itself costly, and a cancelled batch wants its threads back.
    if p.opts.enforce_preferences
        && !matches!(
            p.stats.budget,
            BudgetOutcome::DeadlineExceeded | BudgetOutcome::Cancelled
        )
    {
        let t = profile.then(Instant::now);
        p.enforce_all();
        if let Some(t) = t {
            p.stats.phase.enforce_ns += t.elapsed().as_nanos() as u64;
        }
    }
    let t = profile.then(Instant::now);
    let trees = maximize(&p.chart, grammar);
    if let Some(t) = t {
        p.stats.phase.maximize_ns += t.elapsed().as_nanos() as u64;
    }
    p.stats.trees = trees.len();
    p.stats.complete =
        trees.len() == 1 && p.chart.span(trees[0]).count() == token_count && token_count > 0;
    p.stats.complete_parses = count_complete_parses(&p.chart, grammar);
    p.stats.temporary = count_temporary(&p.chart, &trees);
    p.stats.created = p.chart.len();
    p.stats.elapsed = started.elapsed();
    ParseResult {
        chart: p.chart,
        trees,
        stats: p.stats,
    }
}

/// Valid start-symbol instances covering every token.
fn count_complete_parses(chart: &Chart, grammar: &Grammar) -> usize {
    chart
        .of_symbol(grammar.start)
        .iter()
        .filter(|&&i| chart.is_valid(i) && chart.span(i).count() == chart.tokens().len())
        .count()
}

/// Instances not reachable from any selected tree.
fn count_temporary(chart: &Chart, trees: &[InstId]) -> usize {
    let mut used = vec![false; chart.len()];
    for &t in trees {
        for n in chart.tree_nodes(t) {
            used[n.index()] = true;
        }
    }
    used.iter().filter(|&&u| !u).count()
}

/// Recycled working memory for the parse core: candidate lists and
/// delta bookkeeping for production enumeration, watermarks for
/// incremental enforcement, and the deferred-creation buffers of one
/// enumeration pass. A [`crate::ParseSession`] keeps one `Scratch`
/// alive across parses so the steady state allocates nothing here.
#[derive(Default)]
pub(crate) struct Scratch {
    /// The combination being enumerated.
    combo: Vec<InstId>,
    /// Deferred creations of one enumeration pass: children flat,
    /// `arity` ids per accepted combo, parallel to `pending_payloads`.
    pending_children: Vec<InstId>,
    pending_payloads: Vec<Payload>,
    /// Per-production per-slot high-water marks: how many valid
    /// candidates the production saw at its previous application.
    /// Pinned at zero under [`FixpointMode::Naive`].
    prod_marks: Vec<Vec<u32>>,
    /// Per-production component-symbol versions
    /// ([`Chart::symbol_version`]) captured at the last application
    /// whose watermarks committed; empty until then. When they still
    /// match the chart, the candidate lists are bit-identical to the
    /// previous pass and the whole application short-circuits before
    /// snapshotting anything.
    prod_vers: Vec<Vec<(u32, u32)>>,
    /// Per-production per-slot cached candidate lists: the valid ids
    /// of the slot's symbol that pass its hoisted unary predicates.
    /// Keyed by `slot_vers`; refreshed only when the symbol changed,
    /// and extended in place (not rebuilt) when the change was pure
    /// append.
    prod_cands: Vec<Vec<Vec<InstId>>>,
    /// The [`Chart::symbol_version`] each `prod_cands` list was built
    /// at (`u32::MAX` components = never built; a chart can't reach
    /// that many changes under any instance cap).
    slot_vers: Vec<Vec<(u32, u32)>>,
    /// Per-production split of the constraint into per-slot unary
    /// predicates (applied once per candidate, filtering the lists
    /// before enumeration) and depth-grouped residual terms (checked
    /// at the shallowest enumeration depth where they are decidable)
    /// — see [`Constraint::hoist`]. Built once: a `Scratch` only ever
    /// serves one grammar.
    hoisted: Vec<Hoisted>,
    /// Per-production last-slot band index (productions with
    /// [`Hoisted::band`] only): the last slot's candidate positions
    /// sorted by bounding-box top edge, plus the tallest candidate
    /// height. Mirrors `prod_cands[pid][arity - 1]` exactly; updated
    /// in the same refresh that updates the list.
    prod_band: Vec<BandIndex>,
    /// Query scratch for banded enumeration: candidate positions
    /// inside the window, re-sorted into list order.
    band_buf: Vec<u32>,
    /// Per-preference `(winner, loser)` index high-water marks over the
    /// chart's per-symbol lists. Pinned at zero under
    /// [`FixpointMode::Naive`].
    pref_marks: Vec<(u32, u32)>,
    /// `suffix_new[d]`: any slot in `d..` of the production being
    /// applied has candidates beyond its watermark.
    suffix_new: Vec<bool>,
    /// Saturating product of candidate-list lengths for slots `d..`.
    suffix_prod: Vec<u64>,
}

/// Smallest last-slot candidate count worth a band query: below this,
/// a linear scan beats the binary searches plus the hit re-sort.
const BAND_MIN_CANDS: usize = 4;

/// Upper bound on production arity, sized for fixed enumeration
/// buffers (the widest global-grammar production has four components).
/// Checked once per parse when the hoisted constraints are built.
const MAX_ARITY: usize = 8;

/// Top-edge-sorted index over one production's last-slot candidate
/// list, for [`LastSlotBand`] window queries.
#[derive(Default)]
struct BandIndex {
    /// `(bbox.top, position in the candidate list)`, sorted.
    sorted: Vec<(i32, u32)>,
    /// Tallest candidate height — the necessary-window slack for
    /// bounds that constrain a candidate's bottom edge.
    max_h: i32,
}

impl Scratch {
    /// Re-targets the recycled buffers at `grammar` and zeroes all
    /// watermarks — called once per parse.
    fn reset_for(&mut self, grammar: &Grammar) {
        self.prod_marks.truncate(grammar.productions.len());
        for marks in &mut self.prod_marks {
            marks.clear();
        }
        self.prod_marks
            .resize_with(grammar.productions.len(), Vec::new);
        self.prod_vers.truncate(grammar.productions.len());
        for vers in &mut self.prod_vers {
            vers.clear();
        }
        self.prod_vers
            .resize_with(grammar.productions.len(), Vec::new);
        self.prod_cands.truncate(grammar.productions.len());
        self.prod_cands
            .resize_with(grammar.productions.len(), Vec::new);
        // Clearing the slot versions (not the lists) is what
        // invalidates the candidate cache across parses: the sentinel
        // forces a refill on first application.
        self.slot_vers.truncate(grammar.productions.len());
        for vers in &mut self.slot_vers {
            vers.clear();
        }
        self.slot_vers
            .resize_with(grammar.productions.len(), Vec::new);
        self.prod_band.truncate(grammar.productions.len());
        for b in &mut self.prod_band {
            b.sorted.clear();
            b.max_h = 0;
        }
        self.prod_band
            .resize_with(grammar.productions.len(), BandIndex::default);
        self.pref_marks.clear();
        self.pref_marks.resize(grammar.preferences.len(), (0, 0));
        self.pending_children.clear();
        self.pending_payloads.clear();
        if self.hoisted.len() != grammar.productions.len() {
            self.hoisted = grammar
                .productions
                .iter()
                .map(|p| {
                    assert!(
                        p.arity() <= MAX_ARITY,
                        "production arity {} exceeds the fixed enumeration buffers",
                        p.arity()
                    );
                    p.constraint.hoist(p.arity(), &grammar.proximity)
                })
                .collect();
        }
    }
}

struct Parser<'a> {
    grammar: &'a Grammar,
    schedule: &'a Schedule,
    prefs_by_symbol: &'a [Vec<PrefId>],
    chart: Chart,
    opts: &'a ParserOptions,
    stats: ParseStats,
    /// Absolute wall-clock deadline derived from
    /// [`ParserOptions::deadline`], if any.
    deadline: Option<Instant>,
    /// Enumeration steps since the last clock read — the deadline is
    /// polled every [`DEADLINE_POLL_MASK`]+1 steps to keep `Instant::now`
    /// off the inner-loop hot path.
    deadline_tick: u32,
    scratch: &'a mut Scratch,
    /// Carry bookkeeping of a seeded (incremental re-parse) run, if
    /// any — see [`run_parse`].
    seed: Option<&'a SeedInfo>,
}

/// Enumeration steps between deadline polls, minus one (used as a
/// bitmask).
const DEADLINE_POLL_MASK: u32 = 0x3F;

impl Parser<'_> {
    /// Creates terminal instances for every token — except, in a
    /// seeded parse, tokens the diff mapped: their terminals were
    /// carried from the snapshot already.
    fn seed_terminals(&mut self) {
        for i in 0..self.chart.tokens().len() {
            if self.seed.is_some_and(|s| s.mapped[i]) {
                continue;
            }
            let kind = self.chart.tokens()[i].kind;
            let sym = self.grammar.symbols.terminal(kind);
            self.chart.add_terminal_index(sym, i);
        }
    }

    /// Enforces the preferences involving `symbol`, in the order the
    /// options dictate — the just-in-time pruning step of Figure 11,
    /// driven by the pre-resolved per-symbol index instead of a scan
    /// over every preference in the grammar.
    fn enforce_involving(&mut self, symbol: SymbolId) {
        let prefs_by_symbol = self.prefs_by_symbol;
        let involving = &prefs_by_symbol[symbol.index()];
        match self.opts.preference_order {
            PreferenceOrder::Scheduled => {
                for &pref in involving.iter() {
                    self.enforce(pref);
                }
            }
            PreferenceOrder::Reversed => {
                for &pref in involving.iter().rev() {
                    self.enforce(pref);
                }
            }
        }
    }

    /// Enforces every preference once, in the configured order.
    fn enforce_all(&mut self) {
        let n = self.grammar.preferences.len() as u32;
        match self.opts.preference_order {
            PreferenceOrder::Scheduled => {
                for i in 0..n {
                    self.enforce(PrefId(i));
                }
            }
            PreferenceOrder::Reversed => {
                for i in (0..n).rev() {
                    self.enforce(PrefId(i));
                }
            }
        }
    }

    /// `instantiate(A)`: apply every production with head `A` until no
    /// new instance can be generated (paper Figure 11, `instantiate`).
    fn instantiate(&mut self, symbol: SymbolId) {
        debug_assert!(matches!(
            self.grammar.symbols.kind(symbol),
            SymbolKind::NonTerminal
        ));
        loop {
            self.stats.fixpoint_rounds += 1;
            let mut added = false;
            for &pid in self.grammar.productions_of(symbol) {
                if self.apply_production(pid) {
                    added = true;
                }
                if self.chart.len() >= self.opts.max_instances {
                    self.stats.budget = BudgetOutcome::TruncatedInstances;
                    return;
                }
                if self.interrupted() {
                    return;
                }
            }
            if !added {
                break;
            }
        }
    }

    /// Polls the batch-level cancel token and the wall-clock deadline
    /// (sets and latches [`BudgetOutcome::Cancelled`] /
    /// [`BudgetOutcome::DeadlineExceeded`]; cancellation wins when both
    /// fire). Truncation does not latch here: hitting the instance cap
    /// only stops *instantiation*, while enforcement still runs,
    /// matching the cap's original semantics.
    fn interrupted(&mut self) -> bool {
        if matches!(
            self.stats.budget,
            BudgetOutcome::DeadlineExceeded | BudgetOutcome::Cancelled
        ) {
            return true;
        }
        if let Some(cancel) = &self.opts.cancel {
            if cancel.is_cancelled() {
                self.stats.budget = BudgetOutcome::Cancelled;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.stats.budget = BudgetOutcome::DeadlineExceeded;
                return true;
            }
        }
        false
    }

    /// Applies one production over all current valid combinations;
    /// returns whether anything new was created.
    ///
    /// Under [`FixpointMode::SemiNaive`] only combinations containing
    /// at least one candidate created since this production's previous
    /// application are enumerated (delta-driven); under
    /// [`FixpointMode::Naive`] the watermarks stay pinned at zero and
    /// the full product is re-walked. Either way, instance creation is
    /// *deferred*: the pass enumerates against an immutable chart
    /// (candidate lists are snapshots, so nothing created this pass
    /// can join a combination until the next round anyway) and flushes
    /// accepted combos afterwards in enumeration order — which lets
    /// one component-views buffer be reused across every combination
    /// of the pass.
    fn apply_production(&mut self, pid: ProdId) -> bool {
        let grammar = self.grammar;
        let prod = grammar.production(pid);
        let arity = prod.arity();
        let delta = self.opts.fixpoint == FixpointMode::SemiNaive;
        let scratch = &mut *self.scratch;

        // Version-gated short-circuit: if no component symbol's valid
        // list changed since this production's last committed
        // application — no instance created, none invalidated, per
        // [`Chart::symbol_version`] — the candidate lists are
        // bit-identical to the previous pass and every combination
        // already carries a permanent verdict. Return before paying
        // for the snapshot copies. This is the common case: inside an
        // `instantiate(A)` fix-point only the productions that just
        // fired (or recurse on `A`) ever see changed inputs, yet every
        // production of `A` is re-applied each round.
        let vers = &scratch.prod_vers[pid.index()];
        if delta
            && !vers.is_empty()
            && prod
                .components
                .iter()
                .zip(vers)
                .all(|(&s, &v)| self.chart.symbol_version(s) == v)
        {
            // Identical lists mean the lengths equal the committed
            // watermarks, so this matches what the slow path's
            // `suffix_prod[0]` would have reported.
            let skipped = scratch.prod_marks[pid.index()]
                .iter()
                .fold(1u64, |acc, &m| acc.saturating_mul(m as u64));
            self.stats.combos_skipped_delta += skipped;
            return false;
        }
        // Refresh the per-slot cached candidate lists: valid ids that
        // pass the slot's hoisted unary predicates (a failing
        // candidate would fail the constraint in every combination,
        // so filtering here shrinks the cartesian product instead of
        // rediscovering the failure once per cell). The cache is
        // keyed by [`Chart::symbol_version`]: a slot whose symbol did
        // not change since its last refresh — by this production or a
        // previous application — keeps its list as-is, no copy and no
        // re-filter. Instances added mid-round are picked up by the
        // enclosing fix-point loop.
        let hoisted = &scratch.hoisted[pid.index()];
        let slot_preds = &hoisted.slot_preds;
        let cands = &mut scratch.prod_cands[pid.index()];
        let slot_vers = &mut scratch.slot_vers[pid.index()];
        cands.resize_with(arity, Vec::new);
        slot_vers.resize(arity, (u32::MAX, u32::MAX));
        let banded = hoisted.band.is_some();
        for d in 0..arity {
            let s = prod.components[d];
            let (len, inv) = self.chart.symbol_version(s);
            let (seen_len, seen_inv) = slot_vers[d];
            if (seen_len, seen_inv) == (len, inv) {
                continue;
            }
            let buf = &mut cands[d];
            let preds = &slot_preds[d];
            let keep = |chart: &Chart, id: InstId| -> bool {
                preds.iter().all(|p| p.eval(&chart.view(id)))
            };
            let index_from = if seen_inv == inv && seen_len < len {
                // Pure append since the last refresh: everything past
                // the old length is valid, so the cached list extends
                // in place — O(new ids), not O(list).
                let old = buf.len();
                for &id in &self.chart.of_symbol(s)[seen_len as usize..] {
                    debug_assert!(self.chart.is_valid(id), "appended id already invalid");
                    if keep(&self.chart, id) {
                        buf.push(id);
                    }
                }
                old
            } else {
                buf.clear();
                for &id in self.chart.of_symbol(s) {
                    if self.chart.is_valid(id) && keep(&self.chart, id) {
                        buf.push(id);
                    }
                }
                0
            };
            slot_vers[d] = (len, inv);
            if banded && d == arity - 1 {
                // Mirror the list change into the band index. Appends
                // land mostly in top-edge order (instances are created
                // roughly top-to-bottom), so the adaptive sort below
                // is near-linear.
                let bi = &mut scratch.prod_band[pid.index()];
                if index_from == 0 {
                    bi.sorted.clear();
                    bi.max_h = 0;
                }
                for (k, &id) in buf[index_from..].iter().enumerate() {
                    let b = self.chart.bbox(id);
                    bi.sorted.push((b.top, (index_from + k) as u32));
                    bi.max_h = bi.max_h.max(b.bottom - b.top);
                }
                bi.sorted.sort();
            }
        }
        let candidates = &cands[..];

        // Delta bookkeeping. `marks[d]` is the candidate count slot `d`
        // saw at the previous application (grammar validation
        // guarantees arity ≥ 1, so a production with no new candidates
        // has nothing left to contribute: every all-old combination was
        // already enumerated — created, deduped, or constraint-failed,
        // all of which are permanent verdicts over immutable spans).
        let marks = &mut scratch.prod_marks[pid.index()];
        let first_application = marks.is_empty();
        marks.resize(arity, 0);
        if first_application && delta {
            if let Some(seed) = self.seed {
                // Seeded floor: candidates below the carried-valid
                // production boundary all survived the old completed
                // parse, where every combination over them was already
                // enumerated with a permanent verdict (under a
                // translated suffix the boundary stops at the
                // prefix-region group — cross-region geometry changed,
                // see [`SeedInfo::prod_boundary`]). Candidate lists are
                // in ascending id order, so the boundary is a partition
                // point. Revived and fresh instances sit above it and
                // count as new.
                for (m, c) in marks.iter_mut().zip(candidates) {
                    *m = c.partition_point(|&id| id.0 < seed.prod_boundary) as u32;
                }
            }
        }
        scratch.suffix_new.clear();
        scratch.suffix_new.resize(arity + 1, false);
        scratch.suffix_prod.clear();
        scratch.suffix_prod.resize(arity + 1, 1);
        for d in (0..arity).rev() {
            scratch.suffix_new[d] =
                scratch.suffix_new[d + 1] || candidates[d].len() > marks[d] as usize;
            scratch.suffix_prod[d] =
                scratch.suffix_prod[d + 1].saturating_mul(candidates[d].len() as u64);
        }

        let runnable = !candidates.iter().any(|c| c.is_empty());
        if runnable && (!delta || scratch.suffix_new[0]) {
            scratch.combo.clear();
            scratch.combo.resize(arity, InstId(0));
            let mut pass = EnumPass {
                chart: &self.chart,
                grammar,
                prod,
                by_depth: &hoisted.by_depth,
                band: hoisted.band.as_ref(),
                band_index: &scratch.prod_band[pid.index()],
                band_buf: &mut scratch.band_buf,
                pid,
                candidates,
                marks: &marks[..],
                suffix_new: &scratch.suffix_new,
                suffix_prod: &scratch.suffix_prod,
                combo: &mut scratch.combo,
                boxes: [BBox::new(0, 0, 0, 0); MAX_ARITY],
                pending_children: &mut scratch.pending_children,
                pending_payloads: &mut scratch.pending_payloads,
                // In a delta pass of an unseeded parse every
                // enumerated combination contains at least one
                // instance created after the previous application
                // (the all-old ones are skipped wholesale), so the
                // dedup probe cannot hit and is elided. Seeded parses
                // keep it: carried instances sit in the dedup table,
                // and revived candidates above the production floor
                // re-enumerate combinations that already exist.
                probe_dedup: !delta || self.seed.is_some(),
                stats: &mut self.stats,
                max_instances: self.opts.max_instances,
                deadline: self.deadline,
                cancel: self.opts.cancel.as_ref(),
                deadline_tick: &mut self.deadline_tick,
            };
            pass.enumerate(0, false);
        } else if runnable {
            // Semi-naive early out: nothing new in any slot.
            self.stats.combos_skipped_delta += scratch.suffix_prod[0];
        }

        // Flush the deferred creations in enumeration order. The
        // children `Vec` is materialized only here — i.e. only for
        // combinations that passed dedup and constraints. Unary
        // `Inherit` productions share the child's payload slot instead
        // of cloning the payload (see
        // [`Chart::add_nonterminal_shared`]); their pending payloads
        // are the `None` placeholders [`EnumPass::try_combo`] pushed.
        let added = !scratch.pending_payloads.is_empty();
        let share = arity == 1 && matches!(prod.constructor, Constructor::Inherit(_));
        for (children, payload) in scratch
            .pending_children
            .chunks_exact(arity)
            .zip(scratch.pending_payloads.drain(..))
        {
            if share {
                self.chart.add_nonterminal_shared(prod.head, pid, children);
            } else {
                self.chart
                    .add_nonterminal(prod.head, pid, children, payload);
            }
        }
        scratch.pending_children.clear();

        // Advance the watermarks to the candidate counts this pass
        // saw. Skipped once a budget cut the pass short: nothing will
        // ever be created again (every later enumeration bails at
        // entry), and freezing the marks keeps them truthful about
        // what was actually enumerated.
        if delta
            && self.stats.budget == BudgetOutcome::Completed
            && self.chart.len() < self.opts.max_instances
        {
            for (m, c) in marks.iter_mut().zip(&scratch.prod_cands[pid.index()]) {
                *m = c.len() as u32;
            }
            // The slot versions were captured at refresh time, before
            // the flush above could bump a component symbol of a
            // recursive production — exactly the reading the skip
            // gate must compare against.
            let vers = &mut scratch.prod_vers[pid.index()];
            vers.clear();
            vers.extend_from_slice(&scratch.slot_vers[pid.index()]);
        }

        added
    }

    /// `enforce(R)`: find conflicting (winner, loser) pairs and
    /// invalidate the losers, rolling back their false ancestors when
    /// this preference's r-edge had to be dropped from the schedule.
    ///
    /// Incremental: the chart's per-symbol id lists are append-only, so
    /// a pair where both sides sit below this preference's previous
    /// watermark re-derives a permanent verdict — spans and spreads are
    /// immutable, and validity only ever goes true→false, so a pair
    /// that invalidated then leaves its loser already invalid now, and
    /// a pair that didn't fire then cannot fire now. Old rows therefore
    /// skip old columns (`l_start`); new rows sweep every column. The
    /// row-major order over the tested pairs is exactly the naive
    /// order's subsequence, preserving the invalidation order (which
    /// matters when the winner and loser symbols coincide). Under
    /// [`FixpointMode::Naive`] the watermarks stay pinned at zero and
    /// every pair is re-tested.
    fn enforce(&mut self, pref_id: PrefId) {
        let pref = self.grammar.preference(pref_id);
        let (w_sym, l_sym) = (pref.winner, pref.loser);
        let w_len = self.chart.of_symbol(w_sym).len();
        let l_len = self.chart.of_symbol(l_sym).len();
        let (w_mark, l_mark) = self.scratch.pref_marks[pref_id.index()];
        let (w_mark, l_mark) = (w_mark as usize, l_mark as usize);
        self.stats.pairs_skipped_delta += w_mark as u64 * l_mark as u64;
        // Seeded parses use the schedule's rollback verdicts unchanged.
        // The tempting "force rollback when seeded" rule is wrong: for
        // a rollback-free preference, invalidating a revived loser must
        // NOT cascade to its carried ancestors — a cold parse keeps
        // them (under JIT order they are built only from survivors).
        // The revived ancestors a cold parse never builds don't need
        // rollback either: an instance ends old-invalid only through
        // some enforcement whose loser also ended old-invalid, so that
        // pair has a revived (above-watermark) member and is
        // re-enforced here, replaying the same invalidation — cascade
        // included for preferences that do carry rollback.
        let needs_rollback = self.opts.rollback && self.schedule.needs_rollback[pref_id.index()];
        if w_len > w_mark || l_len > l_mark {
            for wi in 0..w_len {
                let w = self.chart.of_symbol(w_sym)[wi];
                if !self.chart.is_valid(w) {
                    continue; // may have lost to a peer earlier in this pass
                }
                let l_start = if wi < w_mark { l_mark } else { 0 };
                for li in l_start..l_len {
                    let l = self.chart.of_symbol(l_sym)[li];
                    if w == l || !self.chart.is_valid(l) || !self.chart.is_valid(w) {
                        continue;
                    }
                    if !self.conflicts(w, l, pref.condition) {
                        continue;
                    }
                    if !self.wins(w, l, pref.criteria) {
                        continue;
                    }
                    self.chart.invalidate(l);
                    self.stats.invalidated += 1;
                    if needs_rollback {
                        self.rollback(l);
                    }
                }
            }
        }
        if self.opts.fixpoint == FixpointMode::SemiNaive {
            self.scratch.pref_marks[pref_id.index()] = (w_len as u32, l_len as u32);
        }
    }

    fn conflicts(&self, w: InstId, l: InstId, cond: ConflictCond) -> bool {
        match cond {
            ConflictCond::Overlap => self.chart.span(w).intersects(self.chart.span(l)),
            ConflictCond::LoserSubsumed => self.chart.span(l).is_subset(self.chart.span(w)),
        }
    }

    fn wins(&self, w: InstId, l: InstId, criteria: WinCriteria) -> bool {
        match criteria {
            WinCriteria::Always => true,
            WinCriteria::WinnerLarger => self.chart.span(w).count() > self.chart.span(l).count(),
            WinCriteria::WinnerTighter => self.chart.spread(w) < self.chart.spread(l),
        }
    }

    /// `Rollback(i)`: erase the loser's false ancestors — instances
    /// that were built (transitively) on top of it before the
    /// preference could fire (paper §5.1: "false instances may
    /// participate in further instantiations and in turn generate more
    /// false parents").
    fn rollback(&mut self, loser: InstId) {
        let mut stack: Vec<InstId> = self.chart.parents_of(loser).collect();
        while let Some(p) = stack.pop() {
            if self.chart.invalidate(p) {
                self.stats.rolled_back += 1;
                stack.extend(self.chart.parents_of(p));
            }
        }
    }
}

/// One deferred enumeration pass of a production over an immutable
/// chart — the inner loop of [`Parser::apply_production`].
///
/// Holding the chart by shared reference is what lets component
/// [`View`]s be rebuilt on demand from stack buffers (no per-combo or
/// per-pass heap allocation): nothing is created until the pass ends,
/// so the borrows never conflict. Accepted combinations are buffered
/// flat in `pending_children`/`pending_payloads` and flushed by the
/// caller in enumeration order, which reproduces the eager creation
/// order exactly.
struct EnumPass<'a> {
    chart: &'a Chart,
    grammar: &'a Grammar,
    prod: &'a Production,
    /// Residual constraint terms (what is left after the unary
    /// predicates were hoisted into the candidate-list filters),
    /// grouped by the deepest slot they mention. `by_depth[d]` is
    /// checked the moment slot `d` is filled, pruning every deeper
    /// combination a failing partial prefix would have spawned.
    by_depth: &'a [DepthTerms],
    /// Necessary vertical window for the last slot, with its sorted
    /// index and query buffer — `None` disables banded enumeration.
    band: Option<&'a LastSlotBand>,
    band_index: &'a BandIndex,
    band_buf: &'a mut Vec<u32>,
    pid: ProdId,
    /// Valid candidates per component slot, snapshotted at pass start.
    candidates: &'a [Vec<InstId>],
    /// Per-slot watermarks: candidates below `marks[d]` predate the
    /// production's previous application. All zero under
    /// [`FixpointMode::Naive`].
    marks: &'a [u32],
    /// `suffix_new[d]`: some slot in `d..` has candidates at or beyond
    /// its watermark.
    suffix_new: &'a [bool],
    /// Saturating product of candidate counts for slots `d..`.
    suffix_prod: &'a [u64],
    /// The combination under construction (`arity` slots).
    combo: &'a mut Vec<InstId>,
    /// Bounding boxes of the combo prefix under construction — the
    /// geometry residual terms read these; no view is materialized
    /// for a candidate that fails them. Fixed-size so the pass setup
    /// costs zero heap allocations; only `..=depth` is ever live, and
    /// residual terms at `depth` index no deeper than that.
    boxes: [BBox; MAX_ARITY],
    /// Deferred creations, flat (`arity` ids per accepted combo).
    pending_children: &'a mut Vec<InstId>,
    pending_payloads: &'a mut Vec<Payload>,
    /// Whether completed combinations must be probed against the
    /// dedup table. False only for delta passes of unseeded parses,
    /// where every enumerated combination contains a fresh instance.
    probe_dedup: bool,
    stats: &'a mut ParseStats,
    max_instances: usize,
    deadline: Option<Instant>,
    /// The batch-level cancel token, polled on the same sampled tick
    /// as the deadline.
    cancel: Option<&'a CancelToken>,
    deadline_tick: &'a mut u32,
}

impl<'a> EnumPass<'a> {
    /// Would creating one more instance break the cap? Deferred
    /// creations count: `chart.len() + pending` is exactly the chart
    /// size the eager schedule would have at this point.
    fn over_budget(&self) -> bool {
        self.chart.len() + self.pending_payloads.len() >= self.max_instances
    }

    /// [`Parser::interrupted`], but only actually reading the clock
    /// and the cancel flag every few calls — cheap enough for the
    /// enumeration inner loop. A cancelled batch is therefore observed
    /// within one [`DEADLINE_POLL_MASK`]+1-step interval per worker.
    fn interrupted_sampled(&mut self) -> bool {
        if self.deadline.is_none() && self.cancel.is_none() {
            return false;
        }
        if matches!(
            self.stats.budget,
            BudgetOutcome::DeadlineExceeded | BudgetOutcome::Cancelled
        ) {
            return true;
        }
        *self.deadline_tick = self.deadline_tick.wrapping_add(1);
        if *self.deadline_tick & DEADLINE_POLL_MASK != 0 {
            return false;
        }
        if let Some(cancel) = self.cancel {
            if cancel.is_cancelled() {
                self.stats.budget = BudgetOutcome::Cancelled;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.stats.budget = BudgetOutcome::DeadlineExceeded;
                return true;
            }
        }
        false
    }

    /// Walks the cartesian product of the candidate lists in
    /// lexicographic order, pruning non-disjoint prefixes.
    ///
    /// `has_new` records whether an earlier slot already picked a
    /// candidate beyond its watermark. While it is false and no later
    /// slot can supply one (`suffix_new[depth + 1]`), the current slot
    /// skips straight past its watermark: the skipped combinations are
    /// exactly the all-old ones, whose verdicts — dedup hit, constraint
    /// failure, or prior creation — are permanent. The visited
    /// combinations remain in lexicographic order, so creations happen
    /// in the same order the full walk would produce.
    fn enumerate(&mut self, depth: usize, has_new: bool) {
        if self.over_budget() || self.interrupted_sampled() {
            return;
        }
        if depth == self.candidates.len() {
            self.try_combo();
            return;
        }
        let mark = self.marks[depth] as usize;
        let start = if has_new || self.suffix_new[depth + 1] {
            0
        } else {
            mark
        };
        if start > 0 {
            self.stats.combos_skipped_delta += start as u64 * self.suffix_prod[depth + 1];
        }
        if depth + 1 == self.candidates.len() && self.band_index.sorted.len() >= BAND_MIN_CANDS {
            if let Some(band) = self.band {
                // Banded last slot: only candidates whose top edge
                // falls inside the necessary window derived from the
                // production's own constraint can pass it, so query
                // the sorted index instead of scanning the list. The
                // hits are re-sorted into list order, keeping
                // creations in the exact lexicographic sequence the
                // full scan would produce.
                let (lo, hi) = band.window(&self.boxes[band.anchor], self.band_index.max_h);
                let sorted = &self.band_index.sorted;
                debug_assert_eq!(
                    sorted.len(),
                    self.candidates[depth].len(),
                    "band index out of sync with the candidate list"
                );
                let from = sorted.partition_point(|&(y, _)| y < lo);
                let to = sorted.partition_point(|&(y, _)| y <= hi);
                let mut buf = std::mem::take(self.band_buf);
                buf.clear();
                buf.extend(sorted[from..to].iter().map(|&(_, i)| i));
                buf.sort_unstable();
                for &i in &buf {
                    let i = i as usize;
                    if i >= start {
                        self.visit(depth, i, mark, has_new);
                    }
                }
                *self.band_buf = buf;
                return;
            }
        }
        for i in start..self.candidates[depth].len() {
            self.visit(depth, i, mark, has_new);
        }
    }

    /// One candidate pick at `depth`: disjointness against the prefix,
    /// the depth's residual terms, then recursion into the next slot.
    #[inline]
    fn visit(&mut self, depth: usize, i: usize, mark: usize, has_new: bool) {
        let cand = self.candidates[depth][i];
        // Candidate lists were filtered to valid instances at pass
        // start, and nothing is invalidated during instantiation
        // (enforcement only runs between fix-points), so validity
        // needs no recheck here.
        debug_assert!(
            self.chart.is_valid(cand),
            "candidate invalidated mid-pass: enforcement ran during instantiate?"
        );
        // Distinctness and token-disjointness against earlier picks.
        for &prev in self.combo[..depth].iter() {
            if prev == cand || self.chart.span(prev).intersects(self.chart.span(cand)) {
                return;
            }
        }
        self.combo[depth] = cand;
        self.boxes[depth] = self.chart.bbox(cand);
        // Residual terms whose deepest slot is `depth` are fully
        // determined now; a failure here rejects every completion
        // of this prefix without visiting the deeper slots. The
        // geometry-only terms run on the bare box stack — the
        // common case, leaving views unbuilt for the rejects.
        let terms = &self.by_depth[depth];
        if !terms
            .boxes_only
            .iter()
            .all(|c| c.eval_boxes(&self.boxes, &self.grammar.proximity))
        {
            return;
        }
        if !terms.with_payload.is_empty() {
            let mut views = [self.chart.view(cand); MAX_ARITY];
            for (k, &c) in self.combo[..depth].iter().enumerate() {
                views[k] = self.chart.view(c);
            }
            if !terms
                .with_payload
                .iter()
                .all(|c| c.eval(&views[..=depth], &self.grammar.proximity))
            {
                return;
            }
        }
        self.enumerate(depth + 1, has_new || i >= mark);
    }

    /// Dedup-probes the completed combination and runs the
    /// constructor. Every residual constraint term was already checked
    /// on the way down ([`Self::enumerate`] evaluates each at its
    /// decidable depth), so a combination reaching full depth has
    /// passed the whole constraint. Children are only materialized
    /// into an owned `Vec` at flush time, i.e. for accepted combos.
    fn try_combo(&mut self) {
        self.stats.combos_enumerated += 1;
        if self.probe_dedup {
            if self.chart.seen(self.pid, self.combo) {
                return;
            }
        } else {
            debug_assert!(
                !self.chart.seen(self.pid, self.combo),
                "delta pass re-enumerated an already-created combination"
            );
        }
        let arity = self.combo.len();
        if arity == 1 && matches!(self.prod.constructor, Constructor::Inherit(_)) {
            // Unary `Inherit`: the flush shares the child's payload
            // slot, so no payload is built — push a placeholder to
            // keep the pending columns aligned.
            self.pending_payloads.push(Payload::default());
        } else {
            let mut views = [self.chart.view(self.combo[0]); MAX_ARITY];
            for (k, &c) in self.combo[1..].iter().enumerate() {
                views[k + 1] = self.chart.view(c);
            }
            self.pending_payloads
                .push(self.prod.constructor.eval(&views[..arity]));
        }
        self.pending_children.extend_from_slice(self.combo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{BBox, TokenKind};
    use metaform_grammar::paper_example_grammar;

    /// Tokens for the paper's Figure 5 fragment: one "Author" row —
    /// caption, textbox, three radio buttons with captions (8 tokens).
    fn author_row(y: i32, id0: u32) -> Vec<Token> {
        let mut t = Vec::new();
        t.push(Token::text(id0, "Author", BBox::new(10, y + 4, 52, y + 20)));
        t.push(Token::widget(
            id0 + 1,
            TokenKind::Textbox,
            "query-0",
            BBox::new(60, y, 200, y + 20),
        ));
        let captions = [
            "first name/initials and last name",
            "start of last name",
            "exact name",
        ];
        let mut x = 60;
        for (i, cap) in captions.iter().enumerate() {
            let rx = x;
            t.push(
                Token::widget(
                    id0 + 2 + 2 * i as u32,
                    TokenKind::Radiobutton,
                    "field-0",
                    BBox::new(rx, y + 26, rx + 13, y + 39),
                )
                .with_sval(format!("{i}")),
            );
            let w = cap.len() as i32 * 7;
            t.push(Token::text(
                id0 + 3 + 2 * i as u32,
                *cap,
                BBox::new(rx + 17, y + 25, rx + 17 + w, y + 41),
            ));
            x = rx + 17 + w + 12;
        }
        t
    }

    fn renumber(tokens: Vec<Token>) -> Vec<Token> {
        tokens
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.id = metaform_core::TokenId(i as u32);
                t
            })
            .collect()
    }

    #[test]
    fn parses_author_row_to_single_textop_tree() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let res = parse(&g, &tokens);
        assert_eq!(res.stats.tokens, 8);
        assert_eq!(res.trees.len(), 1, "one maximal tree");
        let root = res.trees[0];
        assert_eq!(g.symbols.name(res.chart.symbol(root)), "QI");
        assert_eq!(res.chart.span(root).count(), 8, "covers the whole row");
        let conds = res.chart.payload(root).conditions();
        assert_eq!(conds.len(), 1);
        assert_eq!(conds[0].attribute, "Author");
        assert_eq!(conds[0].operators.len(), 3, "three radio operators");
        assert!(conds[0].operators.contains(&"exact name".to_string()));
        assert!(res.stats.complete);
    }

    #[test]
    fn two_rows_parse_into_one_interface() {
        let g = paper_example_grammar();
        let mut tokens = author_row(0, 0);
        // The second row starts right below the first (rows touch, as
        // flow layout renders them).
        tokens.extend(author_row(44, 8));
        // Relabel the second row's caption.
        tokens[8].sval = "Title".to_string();
        let tokens = renumber(tokens);
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 1);
        let conds = res.chart.payload(res.trees[0]).conditions();
        assert_eq!(conds.len(), 2);
        assert_eq!(conds[0].attribute, "Author");
        assert_eq!(conds[1].attribute, "Title");
        assert_eq!(res.stats.complete_parses, 1);
    }

    #[test]
    fn brute_force_explodes_where_pruning_does_not() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let pruned = parse(&g, &tokens);
        let brute = parse_with(&g, &tokens, &ParserOptions::brute_force());
        assert!(
            brute.stats.created > pruned.stats.created,
            "brute {} !> pruned {}",
            brute.stats.created,
            pruned.stats.created
        );
        assert!(
            brute.stats.complete_parses > 1,
            "global ambiguity yields multiple complete parses, got {}",
            brute.stats.complete_parses
        );
        assert_eq!(pruned.stats.complete_parses, 1);
        assert!(brute.stats.temporary > pruned.stats.temporary);
        assert!(pruned.stats.invalidated > 0);
        assert_eq!(brute.stats.invalidated, 0);
    }

    #[test]
    fn preference_r1_prunes_caption_attrs() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let res = parse(&g, &tokens);
        let attr_sym = g.symbols.lookup("Attr").unwrap();
        let valid_attrs = res.chart.valid_of_symbol(attr_sym);
        // Only "Author" should survive as an attribute; the three radio
        // captions are claimed by RBUs (paper Example 5).
        assert_eq!(valid_attrs.len(), 1);
        assert_eq!(res.chart.payload(valid_attrs[0]).text(), Some("Author"));
    }

    #[test]
    fn preference_r2_keeps_only_longest_rblist() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let res = parse(&g, &tokens);
        let rblist = g.symbols.lookup("RBList").unwrap();
        let valid: Vec<_> = res.chart.valid_of_symbol(rblist);
        assert_eq!(valid.len(), 1, "paper Figure 8: one list of length 3");
        assert_eq!(res.chart.span(valid[0]).count(), 6);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let g = paper_example_grammar();
        let res = parse(&g, &[]);
        assert_eq!(res.trees.len(), 0);
        assert!(!res.stats.complete);
        assert_eq!(res.stats.created, 0);
    }

    #[test]
    fn instance_cap_truncates_safely() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let res = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                max_instances: 12,
                ..ParserOptions::brute_force()
            },
        );
        assert!(res.stats.truncated());
        assert_eq!(res.stats.budget, crate::BudgetOutcome::TruncatedInstances);
        assert!(res.stats.created <= 13);
    }

    #[test]
    fn zero_deadline_ends_parse_with_typed_outcome() {
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let res = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(res.stats.deadline_exceeded());
        assert_eq!(res.stats.budget, crate::BudgetOutcome::DeadlineExceeded);
        // Terminals are still seeded and maximization still runs: the
        // result is degraded, not poisoned.
        assert_eq!(res.stats.tokens, 8);
        let generous = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                deadline: Some(std::time::Duration::from_secs(600)),
                ..Default::default()
            },
        );
        assert_eq!(generous.stats.budget, crate::BudgetOutcome::Completed);
        assert_eq!(generous.trees.len(), 1, "generous deadline changes nothing");
    }

    #[test]
    fn cancel_token_ends_parse_with_typed_outcome() {
        use crate::cancel::CancelToken;
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));

        // A pre-cancelled token stops the parse at the first poll.
        let token = CancelToken::new();
        token.cancel();
        let res = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                cancel: Some(token),
                ..Default::default()
            },
        );
        assert!(res.stats.cancelled());
        assert_eq!(res.stats.budget, crate::BudgetOutcome::Cancelled);
        // Terminals are still seeded and maximization still runs: the
        // result is degraded, not poisoned.
        assert_eq!(res.stats.tokens, 8);

        // A live token changes nothing versus no token at all.
        let live = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                cancel: Some(CancelToken::new()),
                ..Default::default()
            },
        );
        let plain = parse(&g, &tokens);
        assert_eq!(live.stats.budget, crate::BudgetOutcome::Completed);
        assert_eq!(live.trees, plain.trees);
        assert_eq!(live.stats.created, plain.stats.created);
        assert_eq!(live.stats.invalidated, plain.stats.invalidated);
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        use crate::cancel::CancelToken;
        let g = paper_example_grammar();
        let tokens = renumber(author_row(0, 0));
        let token = CancelToken::new();
        token.cancel();
        let res = parse_with(
            &g,
            &tokens,
            &ParserOptions {
                cancel: Some(token),
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert_eq!(res.stats.budget, crate::BudgetOutcome::Cancelled);
    }

    #[test]
    fn unparseable_tokens_become_trivial_trees_elsewhere() {
        // A lone radio button (no caption): no RBU can form; the token
        // remains uncovered by any nonterminal tree.
        let g = paper_example_grammar();
        let tokens = vec![Token::widget(
            0,
            TokenKind::Radiobutton,
            "r",
            BBox::new(0, 0, 13, 13),
        )];
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 0);
        assert_eq!(
            res.chart.uncovered_tokens(&res.trees),
            vec![metaform_core::TokenId(0)]
        );
    }
}
