//! Partial tree maximization (paper §5.3).
//!
//! "We use *maximum subsumption* to choose parse trees that assemble a
//! maximum set of tokens not subsumed by any other parse." A complete
//! parse is the special case of a single maximal tree covering all
//! tokens. Maximal trees may overlap (Figure 14 trees 2–4), which is
//! what the merger's conflict reporting is for.

use crate::instance::{Chart, InstId};
use metaform_grammar::Grammar;

/// Selects the maximal partial parse trees of a chart: valid
/// nonterminal instances whose token span is not strictly subsumed by
/// another valid instance's span. Among equal-span instances, only the
/// topmost of a unary derivation chain is kept (e.g. `QI ← HQI ← CP`
/// over the same tokens yields one tree rooted at `QI`).
///
/// Returned largest-span first (ties: lower instance id first) so the
/// merger visits broader context earlier.
///
/// Implementation: a subsumption-pruned sweep instead of the all-pairs
/// scan of [`maximize_naive`]. Candidates are visited largest span
/// first; each is tested only against the *already accepted* maximal
/// instances with strictly more tokens. That suffices by transitivity:
/// if some valid instance strictly subsumes `i`, then a *maximal* one
/// does too (follow strict supersets upward — token counts strictly
/// increase, so the chain ends at an accepted instance).
///
/// The accepted set is held as an *interval index*: entries sorted by
/// their span's smallest token id, with a parallel running maximum of
/// the largest token id over each sorted prefix. A strict superset of
/// `i` must extend at least as far as `i` on both ends, so the only
/// entries worth testing sit in the sorted prefix with `lo_j ≤ lo_i`
/// (one binary search), scanned backward with an early exit the moment
/// the prefix's running `hi` maximum drops below `hi_i` — no earlier
/// entry can reach `i`'s right edge. Surviving candidates still pass
/// through the bbox-containment prefilter (an instance's bbox is the
/// union of its span's token boxes, so span containment implies bbox
/// containment) before the bitset subset test.
pub fn maximize(chart: &Chart, grammar: &Grammar) -> Vec<InstId> {
    let mut order: Vec<InstId> = chart
        .ids()
        .filter(|&i| chart.is_valid(i) && chart.prod(i).is_some() && !chart.span(i).is_empty())
        .collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(chart.span(i).count()), i));

    // Sweep: accepted entries are maximal-so-far; only entries with
    // strictly more tokens can strictly subsume the current candidate,
    // and ties on count cannot subsume at all.
    let mut maximal: Vec<InstId> = Vec::new();
    // The interval index over `maximal`: `by_lo` ascending by span
    // min-id, `prefix_max_hi[k]` = max span max-id over `by_lo[..=k]`
    // (non-decreasing by construction).
    let mut by_lo: Vec<(u32, InstId)> = Vec::new();
    let mut prefix_max_hi: Vec<u32> = Vec::new();
    for &i in &order {
        let span = chart.span(i);
        let count = span.count();
        let (lo, hi) = match (span.min_id(), span.max_id()) {
            (Some(l), Some(h)) => (l.0, h.0),
            _ => unreachable!("empty spans were filtered"),
        };
        let end = by_lo.partition_point(|&(l, _)| l <= lo);
        let mut subsumed = false;
        for k in (0..end).rev() {
            if prefix_max_hi[k] < hi {
                break; // nothing earlier reaches i's right edge
            }
            let j = by_lo[k].1;
            if chart.span(j).count() > count
                && chart.bbox(j).contains(&chart.bbox(i))
                && span.is_strict_subset(chart.span(j))
            {
                subsumed = true;
                break;
            }
        }
        if !subsumed {
            maximal.push(i);
            let at = by_lo.partition_point(|&(l, _)| l <= lo);
            by_lo.insert(at, (lo, i));
            prefix_max_hi.insert(at, hi);
            // Restore the running maximum from the insertion point on;
            // once an existing entry already meets the running max, the
            // rest (cumulative over a superset) are untouched.
            for k in at.max(1)..prefix_max_hi.len() {
                if prefix_max_hi[k] < prefix_max_hi[k - 1] {
                    prefix_max_hi[k] = prefix_max_hi[k - 1];
                } else if k > at {
                    break;
                }
            }
        }
    }

    // Equal-span chains: drop instances that are descendants of another
    // selected instance with the same span. Equal spans need equal
    // counts, and the sweep order groups equal counts contiguously, but
    // the snapshot semantics stay those of the naive pass: `j` ranges
    // over the pre-retain selection.
    let snapshot = maximal.clone();
    maximal.retain(|&i| {
        !snapshot.iter().any(|&j| {
            j != i
                && chart.span(i).count() == chart.span(j).count()
                && chart.span(i) == chart.span(j)
                && chart.is_ancestor(j, i)
        })
    });

    let _ = grammar; // reserved for future symbol-rank tie-breaking
    maximal
}

/// The reference all-pairs maximizer [`maximize`] is checked against:
/// every candidate is tested for strict subsumption against every
/// valid instance (O(n²) bitset tests). Kept for the parity suite and
/// benches; produces identical output.
pub fn maximize_naive(chart: &Chart, grammar: &Grammar) -> Vec<InstId> {
    let valid: Vec<InstId> = chart
        .ids()
        .filter(|&i| chart.is_valid(i) && chart.prod(i).is_some() && !chart.span(i).is_empty())
        .collect();

    // Keep instances whose span is not strictly contained in another
    // valid instance's span.
    let mut maximal: Vec<InstId> = valid
        .iter()
        .copied()
        .filter(|&i| {
            let span = chart.span(i);
            !valid
                .iter()
                .any(|&j| j != i && span.is_strict_subset(chart.span(j)))
        })
        .collect();

    // Equal-span chains: drop instances that are descendants of another
    // selected instance with the same span.
    let snapshot = maximal.clone();
    maximal.retain(|&i| {
        !snapshot
            .iter()
            .any(|&j| j != i && chart.span(i) == chart.span(j) && chart.is_ancestor(j, i))
    });

    maximal.sort_by_key(|&i| (std::cmp::Reverse(chart.span(i).count()), i));
    let _ = grammar; // reserved for future symbol-rank tie-breaking
    maximal
}

#[cfg(test)]
mod tests {

    use crate::engine::parse;
    use metaform_core::{BBox, Token, TokenKind};
    use metaform_grammar::paper_example_grammar;

    fn label_box_pair(id0: u32, label: &str, x: i32, y: i32) -> Vec<Token> {
        let w = label.len() as i32 * 7;
        vec![
            Token::text(id0, label, BBox::new(x, y + 4, x + w, y + 20)),
            Token::widget(
                id0 + 1,
                TokenKind::Textbox,
                "f",
                BBox::new(x + w + 8, y, x + w + 148, y + 20),
            ),
        ]
    }

    #[test]
    fn complete_parse_is_single_maximal_tree() {
        let g = paper_example_grammar();
        let tokens = label_box_pair(0, "Author", 10, 10);
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 1);
        let root = res.trees[0];
        assert_eq!(
            g.symbols.name(res.chart.symbol(root)),
            "QI",
            "topmost of the chain"
        );
        assert_eq!(res.chart.span(root).count(), 2);
    }

    #[test]
    fn disconnected_regions_yield_multiple_maximal_trees() {
        let g = paper_example_grammar();
        let mut tokens = label_box_pair(0, "Author", 10, 10);
        // Far below and not vertically stackable (x-disjoint, gap >
        // AboveWithin limit).
        tokens.extend(label_box_pair(2, "Title", 500, 600));
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 2, "two partial interpretations");
        let spans: Vec<usize> = res
            .trees
            .iter()
            .map(|&t| res.chart.span(t).count())
            .collect();
        assert_eq!(spans, vec![2, 2]);
        // Union covers everything: nothing missing.
        assert!(res.chart.uncovered_tokens(&res.trees).is_empty());
    }

    #[test]
    fn decorative_text_left_uncovered() {
        let g = paper_example_grammar();
        let mut tokens = vec![Token::text(
            0,
            "this long banner headline is certainly not an attribute label at all",
            BBox::new(10, 0, 400, 16),
        )];
        tokens.extend(label_box_pair(1, "Author", 10, 40));
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 1);
        let uncovered = res.chart.uncovered_tokens(&res.trees);
        assert_eq!(uncovered, vec![metaform_core::TokenId(0)]);
    }

    #[test]
    fn sweep_matches_naive_maximizer() {
        use super::{maximize, maximize_naive};
        use crate::engine::{parse_with, ParserOptions};
        let g = paper_example_grammar();
        // A brute-force chart (no pruning) is the densest: plenty of
        // overlapping and equal-span instances to disagree on.
        let mut tokens = label_box_pair(0, "Author", 10, 10);
        tokens.extend(label_box_pair(2, "Title", 10, 40));
        tokens.extend(label_box_pair(4, "Price", 600, 700));
        for opts in [ParserOptions::default(), ParserOptions::brute_force()] {
            let res = parse_with(&g, &tokens, &opts);
            assert_eq!(
                maximize(&res.chart, &g),
                maximize_naive(&res.chart, &g),
                "sweep and all-pairs maximizers diverged ({opts:?})"
            );
        }
    }

    #[test]
    fn ordering_is_largest_first() {
        let g = paper_example_grammar();
        let mut tokens = label_box_pair(0, "Author", 10, 10);
        tokens.extend(label_box_pair(2, "Title", 10, 40));
        // Third, disconnected pair far away.
        tokens.extend(label_box_pair(4, "Price", 600, 700));
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 2);
        let first = res.chart.span(res.trees[0]).count();
        let second = res.chart.span(res.trees[1]).count();
        assert!(first >= second);
        assert_eq!(first, 4, "stacked Author+Title rows grouped into one QI");
    }
}
