//! Instances and the parse chart.
//!
//! An *instance* is one application of a production (or a terminal
//! token) — a node of some derivation tree. The chart is the arena all
//! instances live in, with per-symbol indexes, parent links (for
//! rollback), and a dedup set so the fix-point terminates.
//!
//! ## Memory layout
//!
//! The chart is a struct-of-arrays: every instance attribute lives in
//! its own parallel column (`spans`, `bboxes`, `valid`, …) indexed by
//! [`InstId`]. The hot sweeps of the fix-point — validity filtering,
//! span intersection during enumeration, the preference pair sweep —
//! each touch one or two attributes of many instances, so columnar
//! storage streams exactly the bytes they need instead of striding
//! over a wide `Instance` struct. Children live flat in one arena
//! (`children`/`child_off` offsets, contiguous because children are
//! written exactly once at creation), and parent links form an
//! intrusive linked list over one arena — creating an instance
//! allocates nothing once the columns have warmed up, and
//! [`Chart::reset_for`] bulk-resets every column while keeping the
//! capacity.

use crate::dedup::ComboSet;
use crate::intern::{intern_locked, lock_pool};
use crate::revisit::TokenDiff;
use crate::tokenset::TokenSet;
use metaform_core::{BBox, Token, TokenId};
use metaform_grammar::{Payload, ProdId, SymbolId, View};
use std::fmt;

/// Identifier of an instance within one chart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Sentinel for "no production" / "no token" / "no parent link" in the
/// packed columns.
const NONE: u32 = u32::MAX;

/// Interned text fields of one token: ids into the process-global
/// pool for `sval` and `name`, plus a slice of option ids in the
/// chart's flat `opt_ids` arena. Two tokens (possibly from different
/// charts) have equal texts iff their keys and option slices are
/// equal — the id-based compare the revisit diff runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TextKey {
    sval: u32,
    name: u32,
    opts_start: u32,
    opts_len: u32,
}

impl TextKey {
    fn opts_range(self) -> std::ops::Range<usize> {
        self.opts_start as usize..(self.opts_start + self.opts_len) as usize
    }
}

/// The parse chart: struct-of-arrays instance columns plus indexes
/// (see the module docs for the layout rationale).
#[derive(Clone, Debug)]
pub struct Chart {
    tokens: Vec<Token>,
    /// Interned text ids, parallel to `tokens`.
    text_keys: Vec<TextKey>,
    /// Flat arena of interned option-label ids (see [`TextKey`]).
    opt_ids: Vec<u32>,
    // --- instance columns, all indexed by `InstId` ---
    symbols: Vec<SymbolId>,
    /// Producing rule per instance (`NONE` for terminals).
    prods: Vec<u32>,
    /// Underlying token per terminal instance (`NONE` for
    /// nonterminals).
    token_of: Vec<u32>,
    spans: Vec<TokenSet>,
    bboxes: Vec<BBox>,
    /// Payload pool. Not 1:1 with instances: a unary `Inherit`
    /// instance shares its child's slot (see
    /// [`Chart::add_nonterminal_shared`]) instead of deep-cloning
    /// condition lists and domain vectors up every wrapper chain.
    payloads: Vec<Payload>,
    /// Per-instance index into `payloads`.
    payload_of: Vec<u32>,
    valid: Vec<bool>,
    /// Offsets into `children`: instance `i`'s children are
    /// `children[child_off[i]..child_off[i + 1]]`. Always one longer
    /// than the instance count.
    child_off: Vec<u32>,
    /// Flat children arena, in creation order.
    children: Vec<InstId>,
    /// Head of each instance's parent linked list (`NONE` = no
    /// parents). Links live in `parent_links`.
    parent_head: Vec<u32>,
    /// `(parent, next)` link nodes of the intrusive parent lists.
    parent_links: Vec<(InstId, u32)>,
    by_symbol: Vec<Vec<InstId>>,
    /// Per-symbol invalidation counters. Together with
    /// `by_symbol[s].len()` (which only grows) they version the
    /// symbol's *valid* id list: the pair is unchanged between two
    /// readings iff the list is unchanged — and an unchanged counter
    /// with a grown list means pure append (everything past the old
    /// length is valid). The semi-naive engine keys its candidate
    /// caches on these.
    sym_invals: Vec<u32>,
    dedup: ComboSet,
}

impl Chart {
    /// Creates a chart over the given tokens with `symbol_count`
    /// symbols in the grammar.
    pub fn new(tokens: Vec<Token>, symbol_count: usize) -> Self {
        let mut chart = Chart {
            tokens,
            text_keys: Vec::new(),
            opt_ids: Vec::new(),
            symbols: Vec::new(),
            prods: Vec::new(),
            token_of: Vec::new(),
            spans: Vec::new(),
            bboxes: Vec::new(),
            payloads: Vec::new(),
            payload_of: Vec::new(),
            valid: Vec::new(),
            child_off: vec![0],
            children: Vec::new(),
            parent_head: Vec::new(),
            parent_links: Vec::new(),
            by_symbol: vec![Vec::new(); symbol_count],
            sym_invals: vec![0; symbol_count],
            dedup: ComboSet::default(),
        };
        chart.index_texts();
        chart
    }

    /// Clears the chart and re-targets it at a new token slice,
    /// recycling every column, index, and dedup allocation. This is
    /// the parse-many path: a [`crate::ParseSession`] resets one chart
    /// per parse instead of allocating a fresh one.
    pub fn reset_for(&mut self, tokens: &[Token], symbol_count: usize) {
        // Field-wise copy into the recycled tokens so the retained
        // `String`/`Vec` buffers are reused instead of reallocated.
        let shared = self.tokens.len().min(tokens.len());
        self.tokens.truncate(tokens.len());
        for (dst, src) in self.tokens.iter_mut().zip(&tokens[..shared]) {
            dst.id = src.id;
            dst.kind = src.kind;
            dst.pos = src.pos;
            dst.sval.clone_from(&src.sval);
            dst.name.clone_from(&src.name);
            dst.options.clone_from(&src.options);
            dst.checked = src.checked;
        }
        self.tokens.extend_from_slice(&tokens[shared..]);
        self.index_texts();
        self.symbols.clear();
        self.prods.clear();
        self.token_of.clear();
        self.spans.clear();
        self.bboxes.clear();
        self.payloads.clear();
        self.payload_of.clear();
        self.valid.clear();
        self.child_off.clear();
        self.child_off.push(0);
        self.children.clear();
        self.parent_head.clear();
        self.parent_links.clear();
        self.by_symbol.truncate(symbol_count);
        for bucket in &mut self.by_symbol {
            bucket.clear();
        }
        self.by_symbol.resize_with(symbol_count, Vec::new);
        self.sym_invals.clear();
        self.sym_invals.resize(symbol_count, 0);
        self.dedup.clear();
    }

    /// (Re)interns every token's texts into `text_keys`/`opt_ids`,
    /// taking the global pool lock once for the whole chart.
    fn index_texts(&mut self) {
        self.text_keys.clear();
        self.opt_ids.clear();
        if self.tokens.is_empty() {
            return;
        }
        let mut pool = lock_pool();
        for t in &self.tokens {
            let opts_start = self.opt_ids.len() as u32;
            for opt in &t.options {
                self.opt_ids.push(intern_locked(&mut pool, opt));
            }
            self.text_keys.push(TextKey {
                sval: intern_locked(&mut pool, &t.sval),
                name: intern_locked(&mut pool, &t.name),
                opts_start,
                opts_len: t.options.len() as u32,
            });
        }
    }

    /// Do token `i` of `self` and token `j` of `other` carry the same
    /// content (everything but the id)? Texts compare by interned id.
    pub(crate) fn token_matches(&self, i: usize, other: &Chart, j: usize) -> bool {
        self.token_matches_translated(i, other, j, 0, 0)
    }

    /// [`Chart::token_matches`] modulo a uniform translation: token `j`
    /// of `other` must sit exactly `(dx, dy)` away from token `i` of
    /// `self`, with identical content otherwise.
    pub(crate) fn token_matches_translated(
        &self,
        i: usize,
        other: &Chart,
        j: usize,
        dx: i32,
        dy: i32,
    ) -> bool {
        let (ta, tb) = (&self.tokens[i], &other.tokens[j]);
        let (ka, kb) = (self.text_keys[i], other.text_keys[j]);
        ta.kind == tb.kind
            && ta.pos.translated(dx, dy) == tb.pos
            && ta.checked == tb.checked
            && ka.sval == kb.sval
            && ka.name == kb.name
            && self.opt_ids[ka.opts_range()] == other.opt_ids[kb.opts_range()]
    }

    /// The interface's tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of instances ever created (valid or not).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when no instances exist yet.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol an instance instantiates.
    #[inline]
    pub fn symbol(&self, id: InstId) -> SymbolId {
        self.symbols[id.index()]
    }

    /// The producing rule (`None` for terminal instances).
    #[inline]
    pub fn prod(&self, id: InstId) -> Option<ProdId> {
        let p = self.prods[id.index()];
        (p != NONE).then_some(ProdId(p))
    }

    /// The underlying token for terminal instances.
    #[inline]
    pub fn token(&self, id: InstId) -> Option<TokenId> {
        let t = self.token_of[id.index()];
        (t != NONE).then_some(TokenId(t))
    }

    /// Tokens covered by an instance's derivation.
    #[inline]
    pub fn span(&self, id: InstId) -> &TokenSet {
        &self.spans[id.index()]
    }

    /// Union bounding box of an instance.
    #[inline]
    pub fn bbox(&self, id: InstId) -> BBox {
        self.bboxes[id.index()]
    }

    /// Semantic payload of an instance.
    #[inline]
    pub fn payload(&self, id: InstId) -> &Payload {
        &self.payloads[self.payload_of[id.index()] as usize]
    }

    /// False once invalidated by a preference (or rollback).
    #[inline]
    pub fn is_valid(&self, id: InstId) -> bool {
        self.valid[id.index()]
    }

    /// Component instances, in production order (empty for terminals).
    #[inline]
    pub fn children(&self, id: InstId) -> &[InstId] {
        let (lo, hi) = (
            self.child_off[id.index()] as usize,
            self.child_off[id.index() + 1] as usize,
        );
        &self.children[lo..hi]
    }

    /// All instance ids of a symbol (including invalidated ones).
    pub fn of_symbol(&self, s: SymbolId) -> &[InstId] {
        &self.by_symbol[s.index()]
    }

    /// Valid instance ids of a symbol, in creation order.
    pub fn valid_of_symbol(&self, s: SymbolId) -> Vec<InstId> {
        let mut out = Vec::new();
        self.valid_of_symbol_into(s, &mut out);
        out
    }

    /// Allocation-free form of [`Chart::valid_of_symbol`]: clears
    /// `out` and fills it with the valid ids of `s` in creation order.
    pub fn valid_of_symbol_into(&self, s: SymbolId, out: &mut Vec<InstId>) {
        out.clear();
        out.extend(
            self.by_symbol[s.index()]
                .iter()
                .copied()
                .filter(|&i| self.valid[i.index()]),
        );
    }

    /// All instance ids.
    pub fn ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.symbols.len() as u32).map(InstId)
    }

    /// Parent instances (those using `id` as a component), most recent
    /// first.
    pub fn parents_of(&self, id: InstId) -> ParentIter<'_> {
        ParentIter {
            links: &self.parent_links,
            at: self.parent_head[id.index()],
        }
    }

    /// Appends one link to `child`'s parent list.
    #[inline]
    fn push_parent(&mut self, child: InstId, parent: InstId) {
        let link = self.parent_links.len() as u32;
        self.parent_links
            .push((parent, self.parent_head[child.index()]));
        self.parent_head[child.index()] = link;
    }

    /// Appends an owned payload to the pool, returning its slot.
    #[inline]
    fn push_payload(&mut self, payload: Payload) -> u32 {
        let slot = self.payloads.len() as u32;
        self.payloads.push(payload);
        slot
    }

    /// Pushes one row across all instance columns. `payload_slot`
    /// indexes the payload pool — fresh for owned payloads, a child's
    /// slot for shared ones.
    #[inline]
    fn push_row(
        &mut self,
        symbol: SymbolId,
        prod: u32,
        token: u32,
        span: TokenSet,
        bbox: BBox,
        payload_slot: u32,
    ) -> InstId {
        let id = InstId(self.symbols.len() as u32);
        self.symbols.push(symbol);
        self.prods.push(prod);
        self.token_of.push(token);
        self.spans.push(span);
        self.bboxes.push(bbox);
        self.payload_of.push(payload_slot);
        self.valid.push(true);
        self.child_off.push(self.children.len() as u32);
        self.parent_head.push(NONE);
        self.by_symbol[symbol.index()].push(id);
        id
    }

    /// Adds a terminal instance for token `t`.
    pub fn add_terminal(&mut self, symbol: SymbolId, token: &Token) -> InstId {
        let span = TokenSet::singleton(self.tokens.len(), token.id);
        let slot = self.push_payload(Payload::for_token(token));
        self.push_row(symbol, NONE, token.id.0, span, token.pos, slot)
    }

    /// Adds a terminal instance for the chart's own token at `idx` —
    /// the seeding path, which avoids cloning the token list first.
    pub fn add_terminal_index(&mut self, symbol: SymbolId, idx: usize) -> InstId {
        let (tid, pos, payload) = {
            let t = &self.tokens[idx];
            (t.id, t.pos, Payload::for_token(t))
        };
        let span = TokenSet::singleton(self.tokens.len(), tid);
        let slot = self.push_payload(payload);
        self.push_row(symbol, NONE, tid.0, span, pos, slot)
    }

    /// True when an instance for `(prod, children)` already exists.
    /// Allocation-free: the probe hashes the borrowed slice directly.
    pub fn seen(&self, prod: ProdId, children: &[InstId]) -> bool {
        self.dedup.contains(prod, children)
    }

    /// Adds a nonterminal instance produced by `prod` over `children`.
    /// The caller must have verified dedup, disjointness, and
    /// constraints. Conditions in the payload get their token lists
    /// filled from the new instance's span. The children are copied
    /// into the chart's flat arena — no per-instance `Vec`.
    pub fn add_nonterminal(
        &mut self,
        symbol: SymbolId,
        prod: ProdId,
        children: &[InstId],
        mut payload: Payload,
    ) -> InstId {
        let mut span = TokenSet::new(self.tokens.len());
        let mut bbox: Option<BBox> = None;
        for &c in children {
            span.union_with(&self.spans[c.index()]);
            let cb = self.bboxes[c.index()];
            bbox = Some(bbox.map_or(cb, |b| b.union(&cb)));
        }
        if let Payload::Cond(c) = &mut payload {
            c.tokens = span.iter().collect();
        }
        self.dedup.insert(prod, children);
        self.children.extend_from_slice(children);
        let slot = self.push_payload(payload);
        let id = self.push_row(symbol, prod.0, NONE, span, bbox.unwrap_or(BBox::ZERO), slot);
        for &c in children {
            self.push_parent(c, id);
        }
        id
    }

    /// Adds a unary nonterminal that *shares* its single child's
    /// payload slot — the `Inherit` constructor of a unary production
    /// is a pure copy, and since the new instance's span equals the
    /// child's, even condition token lists come out identical to what
    /// a deep clone plus refill would produce. This turns the wrapper
    /// chains (`Val<-Textbox`, `CP<-Cond`, …) from deep payload clones
    /// into a single index push.
    pub fn add_nonterminal_shared(
        &mut self,
        symbol: SymbolId,
        prod: ProdId,
        children: &[InstId],
    ) -> InstId {
        debug_assert_eq!(children.len(), 1, "payload sharing is unary-only");
        let c = children[0];
        let span = self.spans[c.index()].clone();
        let bbox = self.bboxes[c.index()];
        self.dedup.insert(prod, children);
        self.children.extend_from_slice(children);
        let slot = self.payload_of[c.index()];
        let id = self.push_row(symbol, prod.0, NONE, span, bbox, slot);
        self.push_parent(c, id);
        id
    }

    /// Marks an instance invalid; returns whether it was valid before.
    pub fn invalidate(&mut self, id: InstId) -> bool {
        let was = self.valid[id.index()];
        self.valid[id.index()] = false;
        if was {
            self.sym_invals[self.symbols[id.index()].index()] += 1;
        }
        was
    }

    /// Versions the valid id list of `s` as `(total ids, invalidation
    /// count)`. Both components only grow, so the pair is unchanged
    /// between two readings iff [`Chart::valid_of_symbol_into`] would
    /// return the same ids — and an unchanged invalidation count with
    /// a grown total means the list changed by *appending* valid ids
    /// only (everything at indexes past the old total).
    #[inline]
    pub fn symbol_version(&self, s: SymbolId) -> (u32, u32) {
        (
            self.by_symbol[s.index()].len() as u32,
            self.sym_invals[s.index()],
        )
    }

    /// A constraint/constructor view of an instance.
    pub fn view(&self, id: InstId) -> View<'_> {
        View {
            bbox: self.bboxes[id.index()],
            payload: &self.payloads[self.payload_of[id.index()] as usize],
            token: self.token(id).map(|t| &self.tokens[t.index()]),
        }
    }

    /// How loosely an instance's components are arranged — the
    /// "inter-component distance" preferences compare (paper Figure 13
    /// discussion). Zero for terminals and unary instances.
    ///
    /// The measure is arrangement-aware: components on a shared row
    /// score their edge distance, while vertically stacked components
    /// score a large constant plus distance. This encodes the
    /// presentation convention that horizontal adjacency binds tighter
    /// than vertical adjacency (a label reads with the widget *beside*
    /// it before the widget *below* it).
    pub fn spread(&self, id: InstId) -> i32 {
        const STACKED: i32 = 1000;
        let prox = metaform_core::Proximity::default();
        let children = self.children(id);
        let mut max = 0;
        for (i, &a) in children.iter().enumerate() {
            for &b in &children[i + 1..] {
                let (ba, bb) = (self.bboxes[a.index()], self.bboxes[b.index()]);
                let d = ba.distance(&bb);
                let score = if metaform_core::relations::same_row(&ba, &bb, &prox) {
                    d
                } else {
                    STACKED + d
                };
                max = max.max(score);
            }
        }
        max
    }

    /// Is `ancestor` a (possibly transitive) structural ancestor of
    /// `descendant`? Pruned by span containment.
    pub fn is_ancestor(&self, ancestor: InstId, descendant: InstId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let dspan = self.span(descendant);
        if !dspan.is_subset(self.span(ancestor)) {
            return false;
        }
        let mut stack = vec![ancestor];
        while let Some(cur) = stack.pop() {
            for &c in self.children(cur) {
                if c == descendant {
                    return true;
                }
                if dspan.is_subset(self.span(c)) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// All instances in the derivation of `root` (inclusive), deduped.
    pub fn tree_nodes(&self, root: InstId) -> Vec<InstId> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            if seen[cur.index()] {
                continue;
            }
            seen[cur.index()] = true;
            out.push(cur);
            stack.extend_from_slice(self.children(cur));
        }
        out
    }

    /// Carries every instance of `old` whose span survives the token
    /// diff into this (freshly reset) chart, returning the seed
    /// bookkeeping the engine's watermarks start from.
    ///
    /// An old instance is *carriable* when every token of its span is
    /// mapped by the diff (children's spans are subsets, so a
    /// carriable instance's whole derivation is carriable) — and, when
    /// the diff's suffix is matched modulo a non-zero translation, its
    /// span must additionally sit entirely within the prefix or
    /// entirely within the suffix: an instance straddling both regions
    /// has geometry-dependent internal structure that the translation
    /// changed. Carried instances are renumbered densely in groups:
    ///
    /// 1. ids `0..boundary`: instances valid at the end of the old
    ///    parse, in old creation order — prefix-region ones first, then
    ///    (when the suffix is translated) suffix-region ones. Validity
    ///    is monotone, so these were valid *throughout* the old parse —
    ///    every combination and preference pair among them was already
    ///    enumerated there with a permanent verdict, which is what lets
    ///    the seeded watermarks start above zero.
    /// 2. ids `boundary..`: instances the old parse invalidated,
    ///    *revived* (validity reset to true), in old creation order.
    ///    Their invalidator may not have been carried, so their
    ///    verdicts must be re-derived; sitting above the boundary
    ///    makes the engine treat them as new on both the production
    ///    and the preference side.
    ///
    /// Under a translated suffix the production watermarks must not
    /// skip combinations mixing prefix- and suffix-region instances
    /// (production *constraints* relate component geometry across the
    /// two regions, and the translation moved one side), so
    /// [`SeedInfo::prod_boundary`] stops at the valid prefix-region
    /// group. Preference verdicts survive: cross-region pairs have
    /// disjoint spans (never in conflict, before or after), and
    /// within-region pairs compare spans, counts, and spreads — all
    /// translation-invariant — so the preference floor
    /// ([`SeedInfo::valid_counts`]) covers the whole valid group.
    ///
    /// Children, spans, dedup entries, parent links, and payload token
    /// lists are all remapped to new token ids; bounding boxes carry
    /// unchanged for prefix-region instances and translated by the
    /// diff's `(dx, dy)` for suffix-region ones.
    pub(crate) fn carry_from(&mut self, old: &Chart, diff: &TokenDiff) -> SeedInfo {
        let old_n = old.tokens.len();
        let new_n = self.tokens.len();
        debug_assert!(self.is_empty(), "carry into a reset chart");

        // Old-token → new-token map: identity on the common prefix,
        // tail-aligned on the common suffix.
        let shift = new_n as i64 - old_n as i64;
        let map_old = |i: usize| -> Option<TokenId> {
            if i < diff.prefix {
                Some(TokenId(i as u32))
            } else if i >= old_n - diff.suffix {
                Some(TokenId((i as i64 + shift) as u32))
            } else {
                None
            }
        };
        let mut mapped_new = vec![false; new_n];
        for (j, m) in mapped_new.iter_mut().enumerate() {
            *m = j < diff.prefix || j >= new_n - diff.suffix;
        }

        // `split` mode: the suffix matched modulo a non-zero
        // translation *and* both regions are non-empty, so carried
        // instances must be region-pure and cross-region production
        // combinations must be re-derived. With a zero translation, or
        // a diff that is all prefix / all suffix, both regions behave
        // as one. Independent of the mode, any carried suffix-region
        // instance has its bbox translated by `(dx, dy)`.
        let has_translation = diff.dx != 0 || diff.dy != 0;
        let split = has_translation && diff.prefix > 0 && diff.suffix > 0;
        let suffix_start = old_n - diff.suffix;
        // Ordering region of a carriable instance (0 = prefix, 1 =
        // suffix, None = not carriable). Spans are bitsets, so the
        // min/max extent classifies region purity cheaply.
        let carriable = |i: usize| -> Option<u8> {
            let span = old.span(InstId(i as u32));
            let (lo, hi) = (span.min_id()?, span.max_id()?);
            let in_prefix = hi.index() < diff.prefix;
            let in_suffix = lo.index() >= suffix_start;
            if in_prefix || in_suffix {
                return Some(u8::from(in_suffix));
            }
            // Straddles the edit region or both sides: under a split
            // diff the instance is dropped outright (its internal
            // geometry changed); otherwise it carries if every span
            // token is still mapped.
            if split {
                return None;
            }
            let mapped = span
                .iter()
                .all(|t| t.index() < diff.prefix || t.index() >= suffix_start);
            mapped.then_some(0)
        };

        // Assign new ids: the valid group first (prefix-region before
        // suffix-region when split — creation order within each), then
        // the revived.
        let mut new_ids: Vec<Option<InstId>> = vec![None; old.len()];
        let mut order: Vec<usize> = Vec::new();
        let mut regions: Vec<u8> = Vec::new();
        let mut prod_boundary = 0u32;
        let mut boundary = 0u32;
        for (pass_valid, pass_region) in [(true, 0u8), (true, 1), (false, 0), (false, 1)] {
            if pass_region == 1 && !split {
                continue; // single-region mode: pass 0 takes everything
            }
            for (i, slot) in new_ids.iter_mut().enumerate() {
                if old.valid[i] != pass_valid || slot.is_some() {
                    continue;
                }
                let Some(region) = carriable(i) else { continue };
                if split && region != pass_region {
                    continue;
                }
                *slot = Some(InstId(order.len() as u32));
                order.push(i);
                regions.push(region);
            }
            if pass_valid && pass_region == 0 {
                prod_boundary = order.len() as u32;
            }
            if pass_valid {
                boundary = order.len() as u32;
            }
        }
        if !split {
            prod_boundary = boundary;
        }

        let mut valid_counts = vec![0u32; self.by_symbol.len()];
        for (k, &oi) in order.iter().enumerate() {
            let src = InstId(oi as u32);
            let mut span = TokenSet::new(new_n);
            for t in old.span(src).iter() {
                span.insert(map_old(t.index()).expect("carriable span token"));
            }
            let mut payload = old.payload(src).clone();
            remap_payload_tokens(&mut payload, &map_old);
            let child_base = self.children.len();
            for &c in old.children(src) {
                let mapped = new_ids[c.index()].expect("carriable child");
                self.children.push(mapped);
            }
            if let Some(prod) = old.prod(src) {
                self.dedup.insert(prod, &self.children[child_base..]);
            }
            if (k as u32) < boundary {
                valid_counts[old.symbol(src).index()] += 1;
            }
            let bbox = if regions[k] == 1 {
                old.bbox(src).translated(diff.dx, diff.dy)
            } else {
                old.bbox(src)
            };
            let id = InstId(self.symbols.len() as u32);
            self.symbols.push(old.symbol(src));
            self.prods.push(old.prods[src.index()]);
            self.token_of.push(match old.token(src) {
                Some(t) => map_old(t.index()).expect("mapped token").0,
                None => NONE,
            });
            self.spans.push(span);
            self.bboxes.push(bbox);
            let slot = self.payloads.len() as u32;
            self.payloads.push(payload);
            self.payload_of.push(slot);
            self.valid.push(true);
            self.child_off.push(self.children.len() as u32);
            self.parent_head.push(NONE);
            self.by_symbol[old.symbol(src).index()].push(id);
        }
        // Parent links, rebuilt in new creation order.
        for k in 0..self.len() {
            let id = InstId(k as u32);
            let (lo, hi) = (self.child_off[k] as usize, self.child_off[k + 1] as usize);
            for ci in lo..hi {
                let c = self.children[ci];
                self.push_parent(c, id);
            }
        }
        SeedInfo {
            boundary,
            prod_boundary,
            valid_counts,
            mapped: mapped_new,
        }
    }

    /// Tokens covered by no instance in `roots`.
    pub fn uncovered_tokens(&self, roots: &[InstId]) -> Vec<TokenId> {
        let mut covered = TokenSet::new(self.tokens.len());
        for &r in roots {
            covered.union_with(self.span(r));
        }
        self.tokens
            .iter()
            .map(|t| t.id)
            .filter(|&t| !covered.contains(t))
            .collect()
    }
}

/// Iterator over an instance's parents (see [`Chart::parents_of`]).
pub struct ParentIter<'a> {
    links: &'a [(InstId, u32)],
    at: u32,
}

impl Iterator for ParentIter<'_> {
    type Item = InstId;

    fn next(&mut self) -> Option<InstId> {
        if self.at == NONE {
            return None;
        }
        let (parent, next) = self.links[self.at as usize];
        self.at = next;
        Some(parent)
    }
}

/// Seed bookkeeping produced by [`Chart::carry_from`] and consumed by
/// the engine: where the carried-valid region ends, how many carried
/// old-valid instances each symbol has (the preference watermark
/// floor), and which new tokens already carry their terminal.
pub(crate) struct SeedInfo {
    /// Number of carried old-valid instances (ids `0..boundary`).
    pub boundary: u32,
    /// Production-watermark boundary: ids below it may be skipped as
    /// all-old *production components*. Equal to `boundary` except
    /// under a translated suffix, where it stops at the valid
    /// prefix-region group (cross-region component geometry changed,
    /// so those combinations must be re-constrained).
    pub prod_boundary: u32,
    /// Per-symbol count of carried old-valid instances, in the order
    /// of the grammar's symbol table.
    pub valid_counts: Vec<u32>,
    /// Per new-token flag: true when the diff mapped the token, i.e.
    /// its terminal instance was carried and seeding must skip it.
    pub mapped: Vec<bool>,
}

/// Rewrites the token ids embedded in condition payloads to the new
/// token numbering (carried spans stay within mapped tokens, so every
/// referenced id has an image).
fn remap_payload_tokens(payload: &mut Payload, map: &impl Fn(usize) -> Option<TokenId>) {
    let remap = |c: &mut metaform_core::Condition| {
        for t in &mut c.tokens {
            *t = map(t.index()).expect("carriable condition token");
        }
    };
    match payload {
        Payload::Cond(c) => remap(c),
        Payload::Conds(cs) => cs.iter_mut().for_each(remap),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::TokenKind;
    use metaform_grammar::SymbolTable;

    fn setup() -> (Chart, SymbolId, SymbolId, SymbolId) {
        let mut syms = SymbolTable::new();
        let text_sym = syms.terminal(TokenKind::Text);
        let tb_sym = syms.terminal(TokenKind::Textbox);
        let nt = syms.intern("TextVal");
        let tokens = vec![
            Token::text(0, "Author", BBox::new(0, 0, 40, 16)),
            Token::widget(1, TokenKind::Textbox, "q", BBox::new(50, 0, 190, 20)),
        ];
        let chart = Chart::new(tokens, syms.len());
        (chart, text_sym, tb_sym, nt)
    }

    #[test]
    fn terminal_instances() {
        let (mut chart, text_sym, tb_sym, _) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        assert_eq!(chart.len(), 2);
        assert_eq!(chart.span(a).count(), 1);
        assert!(chart.is_valid(a));
        assert_eq!(chart.of_symbol(text_sym), &[a]);
        assert_eq!(chart.of_symbol(tb_sym), &[b]);
        assert_eq!(chart.view(a).payload.text(), Some("Author"));
        assert!(chart.view(b).token.is_some());
    }

    #[test]
    fn nonterminal_assembly_fills_condition_tokens() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        let cond = metaform_core::Condition::new(
            "Author",
            vec![],
            metaform_core::DomainSpec::text(),
            vec![],
        );
        let id = chart.add_nonterminal(nt, ProdId(0), &[a, b], Payload::Cond(cond));
        assert_eq!(chart.span(id).count(), 2);
        assert_eq!(chart.bbox(id), BBox::new(0, 0, 190, 20));
        let got = &chart.payload(id).conditions()[0];
        assert_eq!(got.tokens, vec![TokenId(0), TokenId(1)]);
        assert_eq!(chart.parents_of(a).collect::<Vec<_>>(), vec![id]);
        assert!(chart.seen(ProdId(0), &[a, b]));
        assert!(!chart.seen(ProdId(0), &[b, a]));
    }

    #[test]
    fn invalidate_and_valid_filter() {
        let (mut chart, text_sym, ..) = setup();
        let t0 = chart.tokens()[0].clone();
        let a = chart.add_terminal(text_sym, &t0);
        assert_eq!(chart.valid_of_symbol(text_sym), vec![a]);
        assert!(chart.invalidate(a));
        assert!(!chart.invalidate(a), "second call reports already-invalid");
        assert!(chart.valid_of_symbol(text_sym).is_empty());
        assert_eq!(chart.of_symbol(text_sym).len(), 1, "index keeps the id");
    }

    #[test]
    fn ancestry_and_tree_walk() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        let p = chart.add_nonterminal(nt, ProdId(0), &[a, b], Payload::None);
        assert!(chart.is_ancestor(p, a));
        assert!(chart.is_ancestor(p, b));
        assert!(!chart.is_ancestor(a, p));
        assert!(!chart.is_ancestor(p, p));
        let mut nodes = chart.tree_nodes(p);
        nodes.sort_unstable();
        assert_eq!(nodes, vec![a, b, p]);
    }

    #[test]
    fn spread_measures_component_distance() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        assert_eq!(chart.spread(a), 0);
        let p = chart.add_nonterminal(nt, ProdId(0), &[a, b], Payload::None);
        assert_eq!(chart.spread(p), 10, "gap between the two boxes");
    }

    #[test]
    fn uncovered_tokens_reports_gaps() {
        let (mut chart, text_sym, ..) = setup();
        let t0 = chart.tokens()[0].clone();
        let a = chart.add_terminal(text_sym, &t0);
        assert_eq!(chart.uncovered_tokens(&[a]), vec![TokenId(1)]);
        assert_eq!(chart.uncovered_tokens(&[]).len(), 2);
    }

    #[test]
    fn children_live_in_one_flat_arena() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        assert!(chart.children(a).is_empty());
        let p = chart.add_nonterminal(nt, ProdId(0), &[a, b], Payload::None);
        let q = chart.add_nonterminal(nt, ProdId(1), &[b, a], Payload::None);
        assert_eq!(chart.children(p), &[a, b]);
        assert_eq!(chart.children(q), &[b, a]);
        // Both parents reachable from each child, most recent first.
        assert_eq!(chart.parents_of(a).collect::<Vec<_>>(), vec![q, p]);
        assert_eq!(chart.parents_of(b).collect::<Vec<_>>(), vec![q, p]);
    }
}
