//! Instances and the parse chart.
//!
//! An *instance* is one application of a production (or a terminal
//! token) — a node of some derivation tree. The chart is the arena all
//! instances live in, with per-symbol indexes, parent links (for
//! rollback), and a dedup set so the fix-point terminates.

use crate::dedup::ComboSet;
use crate::intern::{intern_locked, lock_pool};
use crate::revisit::TokenDiff;
use crate::tokenset::TokenSet;
use metaform_core::{BBox, Token, TokenId};
use metaform_grammar::{Payload, ProdId, SymbolId, View};
use std::fmt;

/// Identifier of an instance within one chart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One parse-chart instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Symbol this instance instantiates.
    pub symbol: SymbolId,
    /// Producing rule (`None` for terminal instances).
    pub prod: Option<ProdId>,
    /// Component instances, in production order.
    pub children: Vec<InstId>,
    /// The underlying token for terminal instances.
    pub token: Option<TokenId>,
    /// Tokens covered by this derivation.
    pub span: TokenSet,
    /// Union bounding box.
    pub bbox: BBox,
    /// Semantic payload.
    pub payload: Payload,
    /// False once invalidated by a preference (or rollback).
    pub valid: bool,
}

/// Interned text fields of one token: ids into the process-global
/// pool for `sval` and `name`, plus a slice of option ids in the
/// chart's flat `opt_ids` arena. Two tokens (possibly from different
/// charts) have equal texts iff their keys and option slices are
/// equal — the id-based compare the revisit diff runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TextKey {
    sval: u32,
    name: u32,
    opts_start: u32,
    opts_len: u32,
}

impl TextKey {
    fn opts_range(self) -> std::ops::Range<usize> {
        self.opts_start as usize..(self.opts_start + self.opts_len) as usize
    }
}

/// The parse chart: instance arena plus indexes.
#[derive(Clone, Debug)]
pub struct Chart {
    tokens: Vec<Token>,
    /// Interned text ids, parallel to `tokens`.
    text_keys: Vec<TextKey>,
    /// Flat arena of interned option-label ids (see [`TextKey`]).
    opt_ids: Vec<u32>,
    instances: Vec<Instance>,
    by_symbol: Vec<Vec<InstId>>,
    parents: Vec<Vec<InstId>>,
    dedup: ComboSet,
}

impl Chart {
    /// Creates a chart over the given tokens with `symbol_count`
    /// symbols in the grammar.
    pub fn new(tokens: Vec<Token>, symbol_count: usize) -> Self {
        let mut chart = Chart {
            tokens,
            text_keys: Vec::new(),
            opt_ids: Vec::new(),
            instances: Vec::new(),
            by_symbol: vec![Vec::new(); symbol_count],
            parents: Vec::new(),
            dedup: ComboSet::default(),
        };
        chart.index_texts();
        chart
    }

    /// Clears the chart and re-targets it at a new token slice,
    /// recycling the arena, index, and dedup allocations. This is the
    /// parse-many path: a [`crate::ParseSession`] resets one chart per
    /// parse instead of allocating a fresh one.
    pub fn reset_for(&mut self, tokens: &[Token], symbol_count: usize) {
        // Field-wise copy into the recycled tokens so the retained
        // `String`/`Vec` buffers are reused instead of reallocated.
        let shared = self.tokens.len().min(tokens.len());
        self.tokens.truncate(tokens.len());
        for (dst, src) in self.tokens.iter_mut().zip(&tokens[..shared]) {
            dst.id = src.id;
            dst.kind = src.kind;
            dst.pos = src.pos;
            dst.sval.clone_from(&src.sval);
            dst.name.clone_from(&src.name);
            dst.options.clone_from(&src.options);
            dst.checked = src.checked;
        }
        self.tokens.extend_from_slice(&tokens[shared..]);
        self.index_texts();
        self.instances.clear();
        self.by_symbol.truncate(symbol_count);
        for bucket in &mut self.by_symbol {
            bucket.clear();
        }
        self.by_symbol.resize_with(symbol_count, Vec::new);
        self.parents.clear();
        self.dedup.clear();
    }

    /// (Re)interns every token's texts into `text_keys`/`opt_ids`,
    /// taking the global pool lock once for the whole chart.
    fn index_texts(&mut self) {
        self.text_keys.clear();
        self.opt_ids.clear();
        if self.tokens.is_empty() {
            return;
        }
        let mut pool = lock_pool();
        for t in &self.tokens {
            let opts_start = self.opt_ids.len() as u32;
            for opt in &t.options {
                self.opt_ids.push(intern_locked(&mut pool, opt));
            }
            self.text_keys.push(TextKey {
                sval: intern_locked(&mut pool, &t.sval),
                name: intern_locked(&mut pool, &t.name),
                opts_start,
                opts_len: t.options.len() as u32,
            });
        }
    }

    /// Do token `i` of `self` and token `j` of `other` carry the same
    /// content (everything but the id)? Texts compare by interned id.
    pub(crate) fn token_matches(&self, i: usize, other: &Chart, j: usize) -> bool {
        let (ta, tb) = (&self.tokens[i], &other.tokens[j]);
        let (ka, kb) = (self.text_keys[i], other.text_keys[j]);
        ta.kind == tb.kind
            && ta.pos == tb.pos
            && ta.checked == tb.checked
            && ka.sval == kb.sval
            && ka.name == kb.name
            && self.opt_ids[ka.opts_range()] == other.opt_ids[kb.opts_range()]
    }

    /// The interface's tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of instances ever created (valid or not).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no instances exist yet.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Borrow an instance.
    pub fn get(&self, id: InstId) -> &Instance {
        &self.instances[id.index()]
    }

    /// All instance ids of a symbol (including invalidated ones).
    pub fn of_symbol(&self, s: SymbolId) -> &[InstId] {
        &self.by_symbol[s.index()]
    }

    /// Valid instance ids of a symbol, in creation order.
    pub fn valid_of_symbol(&self, s: SymbolId) -> Vec<InstId> {
        let mut out = Vec::new();
        self.valid_of_symbol_into(s, &mut out);
        out
    }

    /// Allocation-free form of [`Chart::valid_of_symbol`]: clears
    /// `out` and fills it with the valid ids of `s` in creation order.
    pub fn valid_of_symbol_into(&self, s: SymbolId, out: &mut Vec<InstId>) {
        out.clear();
        out.extend(
            self.by_symbol[s.index()]
                .iter()
                .copied()
                .filter(|&i| self.get(i).valid),
        );
    }

    /// All instance ids.
    pub fn ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.instances.len() as u32).map(InstId)
    }

    /// Parent instances (those using `id` as a component).
    pub fn parents_of(&self, id: InstId) -> &[InstId] {
        &self.parents[id.index()]
    }

    /// Adds a terminal instance for token `t`.
    pub fn add_terminal(&mut self, symbol: SymbolId, token: &Token) -> InstId {
        let id = InstId(self.instances.len() as u32);
        self.instances.push(Instance {
            symbol,
            prod: None,
            children: Vec::new(),
            token: Some(token.id),
            span: TokenSet::singleton(self.tokens.len(), token.id),
            bbox: token.pos,
            payload: Payload::for_token(token),
            valid: true,
        });
        self.by_symbol[symbol.index()].push(id);
        self.parents.push(Vec::new());
        id
    }

    /// Adds a terminal instance for the chart's own token at `idx` —
    /// the seeding path, which avoids cloning the token list first.
    pub fn add_terminal_index(&mut self, symbol: SymbolId, idx: usize) -> InstId {
        let (tid, pos, payload) = {
            let t = &self.tokens[idx];
            (t.id, t.pos, Payload::for_token(t))
        };
        let id = InstId(self.instances.len() as u32);
        self.instances.push(Instance {
            symbol,
            prod: None,
            children: Vec::new(),
            token: Some(tid),
            span: TokenSet::singleton(self.tokens.len(), tid),
            bbox: pos,
            payload,
            valid: true,
        });
        self.by_symbol[symbol.index()].push(id);
        self.parents.push(Vec::new());
        id
    }

    /// True when an instance for `(prod, children)` already exists.
    /// Allocation-free: the probe hashes the borrowed slice directly.
    pub fn seen(&self, prod: ProdId, children: &[InstId]) -> bool {
        self.dedup.contains(prod, children)
    }

    /// Adds a nonterminal instance produced by `prod` over `children`.
    /// The caller must have verified dedup, disjointness, and
    /// constraints. Conditions in the payload get their token lists
    /// filled from the new instance's span.
    pub fn add_nonterminal(
        &mut self,
        symbol: SymbolId,
        prod: ProdId,
        children: Vec<InstId>,
        mut payload: Payload,
    ) -> InstId {
        let mut span = TokenSet::new(self.tokens.len());
        let mut bbox: Option<BBox> = None;
        for &c in &children {
            let child = self.get(c);
            span.union_with(&child.span);
            bbox = Some(bbox.map_or(child.bbox, |b| b.union(&child.bbox)));
        }
        if let Payload::Cond(c) = &mut payload {
            c.tokens = span.iter().collect();
        }
        let id = InstId(self.instances.len() as u32);
        self.dedup.insert(prod, &children);
        for &c in &children {
            self.parents[c.index()].push(id);
        }
        self.instances.push(Instance {
            symbol,
            prod: Some(prod),
            children,
            token: None,
            span,
            bbox: bbox.unwrap_or(BBox::ZERO),
            payload,
            valid: true,
        });
        self.by_symbol[symbol.index()].push(id);
        self.parents.push(Vec::new());
        id
    }

    /// Marks an instance invalid; returns whether it was valid before.
    pub fn invalidate(&mut self, id: InstId) -> bool {
        let inst = &mut self.instances[id.index()];
        let was = inst.valid;
        inst.valid = false;
        was
    }

    /// A constraint/constructor view of an instance.
    pub fn view(&self, id: InstId) -> View<'_> {
        let inst = self.get(id);
        View {
            bbox: inst.bbox,
            payload: &inst.payload,
            token: inst.token.map(|t| &self.tokens[t.index()]),
        }
    }

    /// How loosely an instance's components are arranged — the
    /// "inter-component distance" preferences compare (paper Figure 13
    /// discussion). Zero for terminals and unary instances.
    ///
    /// The measure is arrangement-aware: components on a shared row
    /// score their edge distance, while vertically stacked components
    /// score a large constant plus distance. This encodes the
    /// presentation convention that horizontal adjacency binds tighter
    /// than vertical adjacency (a label reads with the widget *beside*
    /// it before the widget *below* it).
    pub fn spread(&self, id: InstId) -> i32 {
        const STACKED: i32 = 1000;
        let prox = metaform_core::Proximity::default();
        let children = &self.get(id).children;
        let mut max = 0;
        for (i, &a) in children.iter().enumerate() {
            for &b in &children[i + 1..] {
                let (ba, bb) = (self.get(a).bbox, self.get(b).bbox);
                let d = ba.distance(&bb);
                let score = if metaform_core::relations::same_row(&ba, &bb, &prox) {
                    d
                } else {
                    STACKED + d
                };
                max = max.max(score);
            }
        }
        max
    }

    /// Is `ancestor` a (possibly transitive) structural ancestor of
    /// `descendant`? Pruned by span containment.
    pub fn is_ancestor(&self, ancestor: InstId, descendant: InstId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let dspan = &self.get(descendant).span;
        if !dspan.is_subset(&self.get(ancestor).span) {
            return false;
        }
        let mut stack = vec![ancestor];
        while let Some(cur) = stack.pop() {
            for &c in &self.get(cur).children {
                if c == descendant {
                    return true;
                }
                if dspan.is_subset(&self.get(c).span) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// All instances in the derivation of `root` (inclusive), deduped.
    pub fn tree_nodes(&self, root: InstId) -> Vec<InstId> {
        let mut seen = vec![false; self.instances.len()];
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            if seen[cur.index()] {
                continue;
            }
            seen[cur.index()] = true;
            out.push(cur);
            stack.extend(self.get(cur).children.iter().copied());
        }
        out
    }

    /// Carries every instance of `old` whose span survives the token
    /// diff into this (freshly reset) chart, returning the seed
    /// bookkeeping the engine's watermarks start from.
    ///
    /// An old instance is *carriable* when every token of its span is
    /// mapped by the diff (children's spans are subsets, so a
    /// carriable instance's whole derivation is carriable). Carried
    /// instances are renumbered densely in two groups:
    ///
    /// 1. ids `0..boundary`: instances valid at the end of the old
    ///    parse, in old creation order. Validity is monotone, so these
    ///    were valid *throughout* the old parse — every combination
    ///    and preference pair among them was already enumerated there
    ///    with a permanent verdict, which is what lets the seeded
    ///    watermarks start above zero.
    /// 2. ids `boundary..`: instances the old parse invalidated,
    ///    *revived* (validity reset to true), in old creation order.
    ///    Their invalidator may not have been carried, so their
    ///    verdicts must be re-derived; sitting above the boundary
    ///    makes the engine treat them as new on both the production
    ///    and the preference side.
    ///
    /// Children, spans, dedup entries, parent links, and payload token
    /// lists are all remapped to new token ids; bounding boxes carry
    /// unchanged (the diff only maps tokens with identical geometry).
    pub(crate) fn carry_from(&mut self, old: &Chart, diff: &TokenDiff) -> SeedInfo {
        let old_n = old.tokens.len();
        let new_n = self.tokens.len();
        debug_assert!(self.instances.is_empty(), "carry into a reset chart");

        // Old-token → new-token map: identity on the common prefix,
        // tail-aligned on the common suffix.
        let shift = new_n as i64 - old_n as i64;
        let map_old = |i: usize| -> Option<TokenId> {
            if i < diff.prefix {
                Some(TokenId(i as u32))
            } else if i >= old_n - diff.suffix {
                Some(TokenId((i as i64 + shift) as u32))
            } else {
                None
            }
        };
        let mut mapped_old = TokenSet::new(old_n);
        for i in (0..diff.prefix).chain(old_n - diff.suffix..old_n) {
            mapped_old.insert(TokenId(i as u32));
        }
        let mut mapped_new = vec![false; new_n];
        for (j, m) in mapped_new.iter_mut().enumerate() {
            *m = j < diff.prefix || j >= new_n - diff.suffix;
        }

        // Assign new ids: the valid group first, then the revived.
        let mut new_ids: Vec<Option<InstId>> = vec![None; old.instances.len()];
        let mut order: Vec<usize> = Vec::new();
        let mut boundary = 0u32;
        for pass_valid in [true, false] {
            for (i, inst) in old.instances.iter().enumerate() {
                if inst.valid == pass_valid && inst.span.is_subset(&mapped_old) {
                    new_ids[i] = Some(InstId(order.len() as u32));
                    order.push(i);
                }
            }
            if pass_valid {
                boundary = order.len() as u32;
            }
        }

        let mut valid_counts = vec![0u32; self.by_symbol.len()];
        for (k, &oi) in order.iter().enumerate() {
            let src = &old.instances[oi];
            let id = InstId(k as u32);
            let children: Vec<InstId> = src
                .children
                .iter()
                .map(|&c| new_ids[c.index()].expect("carriable child"))
                .collect();
            let mut span = TokenSet::new(new_n);
            for t in src.span.iter() {
                span.insert(map_old(t.index()).expect("carriable span token"));
            }
            let mut payload = src.payload.clone();
            remap_payload_tokens(&mut payload, &map_old);
            if let Some(prod) = src.prod {
                self.dedup.insert(prod, &children);
            }
            if (k as u32) < boundary {
                valid_counts[src.symbol.index()] += 1;
            }
            self.by_symbol[src.symbol.index()].push(id);
            self.instances.push(Instance {
                symbol: src.symbol,
                prod: src.prod,
                children,
                token: src.token.map(|t| map_old(t.index()).expect("mapped token")),
                span,
                bbox: src.bbox,
                payload,
                valid: true,
            });
            self.parents.push(Vec::new());
        }
        // Parent links, rebuilt in new creation order.
        for k in 0..self.instances.len() {
            let id = InstId(k as u32);
            for ci in 0..self.instances[k].children.len() {
                let c = self.instances[k].children[ci];
                self.parents[c.index()].push(id);
            }
        }
        SeedInfo {
            boundary,
            valid_counts,
            mapped: mapped_new,
        }
    }

    /// Tokens covered by no instance in `roots`.
    pub fn uncovered_tokens(&self, roots: &[InstId]) -> Vec<TokenId> {
        let mut covered = TokenSet::new(self.tokens.len());
        for &r in roots {
            covered.union_with(&self.get(r).span);
        }
        self.tokens
            .iter()
            .map(|t| t.id)
            .filter(|&t| !covered.contains(t))
            .collect()
    }
}

/// Seed bookkeeping produced by [`Chart::carry_from`] and consumed by
/// the engine: where the carried-valid region ends, how many carried
/// old-valid instances each symbol has (the preference watermark
/// floor), and which new tokens already carry their terminal.
pub(crate) struct SeedInfo {
    /// Number of carried old-valid instances (ids `0..boundary`).
    pub boundary: u32,
    /// Per-symbol count of carried old-valid instances, in the order
    /// of the grammar's symbol table.
    pub valid_counts: Vec<u32>,
    /// Per new-token flag: true when the diff mapped the token, i.e.
    /// its terminal instance was carried and seeding must skip it.
    pub mapped: Vec<bool>,
}

/// Rewrites the token ids embedded in condition payloads to the new
/// token numbering (carried spans stay within mapped tokens, so every
/// referenced id has an image).
fn remap_payload_tokens(payload: &mut Payload, map: &impl Fn(usize) -> Option<TokenId>) {
    let remap = |c: &mut metaform_core::Condition| {
        for t in &mut c.tokens {
            *t = map(t.index()).expect("carriable condition token");
        }
    };
    match payload {
        Payload::Cond(c) => remap(c),
        Payload::Conds(cs) => cs.iter_mut().for_each(remap),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::TokenKind;
    use metaform_grammar::SymbolTable;

    fn setup() -> (Chart, SymbolId, SymbolId, SymbolId) {
        let mut syms = SymbolTable::new();
        let text_sym = syms.terminal(TokenKind::Text);
        let tb_sym = syms.terminal(TokenKind::Textbox);
        let nt = syms.intern("TextVal");
        let tokens = vec![
            Token::text(0, "Author", BBox::new(0, 0, 40, 16)),
            Token::widget(1, TokenKind::Textbox, "q", BBox::new(50, 0, 190, 20)),
        ];
        let chart = Chart::new(tokens, syms.len());
        (chart, text_sym, tb_sym, nt)
    }

    #[test]
    fn terminal_instances() {
        let (mut chart, text_sym, tb_sym, _) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        assert_eq!(chart.len(), 2);
        assert_eq!(chart.get(a).span.count(), 1);
        assert!(chart.get(a).valid);
        assert_eq!(chart.of_symbol(text_sym), &[a]);
        assert_eq!(chart.of_symbol(tb_sym), &[b]);
        assert_eq!(chart.view(a).payload.text(), Some("Author"));
        assert!(chart.view(b).token.is_some());
    }

    #[test]
    fn nonterminal_assembly_fills_condition_tokens() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        let cond = metaform_core::Condition::new(
            "Author",
            vec![],
            metaform_core::DomainSpec::text(),
            vec![],
        );
        let id = chart.add_nonterminal(nt, ProdId(0), vec![a, b], Payload::Cond(cond));
        let inst = chart.get(id);
        assert_eq!(inst.span.count(), 2);
        assert_eq!(inst.bbox, BBox::new(0, 0, 190, 20));
        let got = &inst.payload.conditions()[0];
        assert_eq!(got.tokens, vec![TokenId(0), TokenId(1)]);
        assert_eq!(chart.parents_of(a), &[id]);
        assert!(chart.seen(ProdId(0), &[a, b]));
        assert!(!chart.seen(ProdId(0), &[b, a]));
    }

    #[test]
    fn invalidate_and_valid_filter() {
        let (mut chart, text_sym, ..) = setup();
        let t0 = chart.tokens()[0].clone();
        let a = chart.add_terminal(text_sym, &t0);
        assert_eq!(chart.valid_of_symbol(text_sym), vec![a]);
        assert!(chart.invalidate(a));
        assert!(!chart.invalidate(a), "second call reports already-invalid");
        assert!(chart.valid_of_symbol(text_sym).is_empty());
        assert_eq!(chart.of_symbol(text_sym).len(), 1, "index keeps the id");
    }

    #[test]
    fn ancestry_and_tree_walk() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        let p = chart.add_nonterminal(nt, ProdId(0), vec![a, b], Payload::None);
        assert!(chart.is_ancestor(p, a));
        assert!(chart.is_ancestor(p, b));
        assert!(!chart.is_ancestor(a, p));
        assert!(!chart.is_ancestor(p, p));
        let mut nodes = chart.tree_nodes(p);
        nodes.sort_unstable();
        assert_eq!(nodes, vec![a, b, p]);
    }

    #[test]
    fn spread_measures_component_distance() {
        let (mut chart, text_sym, tb_sym, nt) = setup();
        let t0 = chart.tokens()[0].clone();
        let t1 = chart.tokens()[1].clone();
        let a = chart.add_terminal(text_sym, &t0);
        let b = chart.add_terminal(tb_sym, &t1);
        assert_eq!(chart.spread(a), 0);
        let p = chart.add_nonterminal(nt, ProdId(0), vec![a, b], Payload::None);
        assert_eq!(chart.spread(p), 10, "gap between the two boxes");
    }

    #[test]
    fn uncovered_tokens_reports_gaps() {
        let (mut chart, text_sym, ..) = setup();
        let t0 = chart.tokens()[0].clone();
        let a = chart.add_terminal(text_sym, &t0);
        assert_eq!(chart.uncovered_tokens(&[a]), vec![TokenId(1)]);
        assert_eq!(chart.uncovered_tokens(&[]).len(), 2);
    }
}
