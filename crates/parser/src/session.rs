//! Reusable parse sessions — the parse-many half of compile-once,
//! parse-many.
//!
//! A [`ParseSession`] pairs a shared [`CompiledGrammar`] with the
//! working memory one parse needs: the chart arena, candidate-list
//! pools, and enforcement worklists. The first parse allocates them;
//! every subsequent parse on the same session recycles them (call
//! [`ParseSession::recycle`] to hand the chart back too). Tokens are
//! borrowed, never cloned into an intermediate vector.
//!
//! Sessions are cheap to create and single-threaded by design — the
//! unit of parallelism is *one session per worker thread*, all sharing
//! one `Arc<CompiledGrammar>`:
//!
//! ```
//! use metaform_core::{BBox, Token, TokenKind};
//! use metaform_grammar::paper_example_grammar;
//! use metaform_parser::ParseSession;
//! use std::sync::Arc;
//!
//! let compiled = Arc::new(paper_example_grammar().compile().unwrap());
//! let mut session = ParseSession::new(compiled);
//! let tokens = vec![
//!     Token::text(0, "Author", BBox::new(10, 12, 52, 28)),
//!     Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 8, 200, 28)),
//! ];
//! for _ in 0..3 {
//!     let result = session.parse(&tokens);
//!     assert!(result.stats.complete);
//!     assert_eq!(result.stats.schedules_built, 0); // compiled once, outside
//!     session.recycle(result);
//! }
//! ```

use crate::engine::{run_parse, ParseResult, ParserOptions, Scratch};
use crate::instance::Chart;
use metaform_core::Token;
use metaform_grammar::CompiledGrammar;
use std::sync::Arc;

/// A reusable parser over a compiled grammar (see module docs).
pub struct ParseSession {
    grammar: Arc<CompiledGrammar>,
    opts: ParserOptions,
    /// Chart returned by [`ParseSession::recycle`], reused by the next
    /// parse.
    spare: Option<Chart>,
    scratch: Scratch,
}

impl ParseSession {
    /// Creates a session with default [`ParserOptions`].
    pub fn new(grammar: Arc<CompiledGrammar>) -> Self {
        Self::with_options(grammar, ParserOptions::default())
    }

    /// Creates a session with explicit options.
    pub fn with_options(grammar: Arc<CompiledGrammar>, opts: ParserOptions) -> Self {
        ParseSession {
            grammar,
            opts,
            spare: None,
            scratch: Scratch::default(),
        }
    }

    /// The compiled grammar this session parses under.
    pub fn compiled(&self) -> &Arc<CompiledGrammar> {
        &self.grammar
    }

    /// The options every parse of this session runs with.
    pub fn options(&self) -> &ParserOptions {
        &self.opts
    }

    /// Parses one token sequence. Borrows the tokens; the result owns
    /// its chart (hand it back with [`ParseSession::recycle`] to reuse
    /// the allocation). Infallible: the grammar was validated when it
    /// was compiled. Budgets ([`ParserOptions::max_instances`],
    /// [`ParserOptions::deadline`]) apply per parse and report their
    /// outcome in `ParseStats::budget` — a budget-limited parse still
    /// returns maximal partial trees over whatever was built.
    pub fn parse(&mut self, tokens: &[Token]) -> ParseResult {
        let mut chart = self
            .spare
            .take()
            .unwrap_or_else(|| Chart::new(Vec::new(), 0));
        chart.reset_for(tokens, self.grammar.grammar().symbols.len());
        run_parse(
            self.grammar.grammar(),
            self.grammar.schedule(),
            self.grammar.preference_index(),
            chart,
            &self.opts,
            &mut self.scratch,
        )
    }

    /// Returns a finished parse's chart to the session's allocation
    /// pool. Optional — dropping the result instead is correct, just
    /// slower for the next parse.
    pub fn recycle(&mut self, result: ParseResult) {
        self.spare = Some(result.chart);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{parse_with, PreferenceOrder};
    use metaform_core::{BBox, TokenKind};
    use metaform_grammar::paper_example_grammar;

    fn author_row() -> Vec<Token> {
        vec![
            Token::text(0, "Author", BBox::new(10, 4, 52, 20)),
            Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 0, 200, 20)),
        ]
    }

    #[test]
    fn session_matches_one_shot_parse() {
        let g = paper_example_grammar();
        let tokens = author_row();
        let one_shot = parse_with(&g, &tokens, &ParserOptions::default());
        let mut session = ParseSession::new(Arc::new(g.compile().unwrap()));
        let via_session = session.parse(&tokens);
        assert_eq!(via_session.trees, one_shot.trees);
        assert_eq!(via_session.chart.len(), one_shot.chart.len());
        assert_eq!(via_session.stats.created, one_shot.stats.created);
        assert_eq!(via_session.stats.schedules_built, 0);
        assert_eq!(one_shot.stats.schedules_built, 1);
    }

    #[test]
    fn recycled_chart_yields_identical_results() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let mut session = ParseSession::new(compiled);
        let tokens = author_row();
        let first = session.parse(&tokens);
        let first_trees = first.trees.clone();
        let first_created = first.stats.created;
        session.recycle(first);
        // Interleave a different input to dirty the recycled chart.
        let second = session.parse(&[]);
        assert_eq!(second.trees.len(), 0);
        session.recycle(second);
        let third = session.parse(&tokens);
        assert_eq!(third.trees, first_trees);
        assert_eq!(third.stats.created, first_created);
    }

    #[test]
    fn session_budgets_apply_per_parse() {
        use crate::stats::BudgetOutcome;
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let tokens = author_row();
        let mut rushed = ParseSession::with_options(
            compiled.clone(),
            ParserOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        // Every parse of the session is bounded, and the outcome is
        // reported per parse — the session itself stays reusable.
        for _ in 0..3 {
            let result = rushed.parse(&tokens);
            assert_eq!(result.stats.budget, BudgetOutcome::DeadlineExceeded);
            rushed.recycle(result);
        }
        let mut unbounded = ParseSession::new(compiled);
        let result = unbounded.parse(&tokens);
        assert_eq!(result.stats.budget, BudgetOutcome::Completed);
    }

    #[test]
    fn session_honours_options() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let tokens = author_row();
        let mut pruned = ParseSession::new(compiled.clone());
        let mut brute = ParseSession::with_options(compiled.clone(), ParserOptions::brute_force());
        let mut reversed = ParseSession::with_options(
            compiled,
            ParserOptions {
                preference_order: PreferenceOrder::Reversed,
                ..Default::default()
            },
        );
        let p = pruned.parse(&tokens);
        let b = brute.parse(&tokens);
        let r = reversed.parse(&tokens);
        assert_eq!(b.stats.invalidated, 0, "brute force never prunes");
        assert!(b.stats.created >= p.stats.created);
        // Consistent grammar: enforcement order must not matter.
        assert_eq!(p.trees.len(), r.trees.len());
    }
}
