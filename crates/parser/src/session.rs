//! Reusable parse sessions — the parse-many half of compile-once,
//! parse-many.
//!
//! A [`ParseSession`] pairs a shared [`CompiledGrammar`] with the
//! working memory one parse needs: the chart arena, candidate-list
//! pools, and enforcement worklists. The first parse allocates them;
//! every subsequent parse on the same session recycles them (call
//! [`ParseSession::recycle`] to hand the chart back too). Tokens are
//! borrowed, never cloned into an intermediate vector.
//!
//! Sessions are cheap to create and single-threaded by design — the
//! unit of parallelism is *one session per worker thread*, all sharing
//! one `Arc<CompiledGrammar>`:
//!
//! ```
//! use metaform_core::{BBox, Token, TokenKind};
//! use metaform_grammar::paper_example_grammar;
//! use metaform_parser::ParseSession;
//! use std::sync::Arc;
//!
//! let compiled = Arc::new(paper_example_grammar().compile().unwrap());
//! let mut session = ParseSession::new(compiled);
//! let tokens = vec![
//!     Token::text(0, "Author", BBox::new(10, 12, 52, 28)),
//!     Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 8, 200, 28)),
//! ];
//! for _ in 0..3 {
//!     let result = session.parse(&tokens);
//!     assert!(result.stats.complete);
//!     assert_eq!(result.stats.schedules_built, 0); // compiled once, outside
//!     session.recycle(result);
//! }
//! ```

use crate::engine::{run_parse, ParseResult, ParserOptions, Scratch};
use crate::instance::Chart;
use crate::revisit::{diff_tokens, ChartSnapshot};
use metaform_core::Token;
use metaform_grammar::CompiledGrammar;
use std::sync::Arc;
use std::time::Instant;

/// A reusable parser over a compiled grammar (see module docs).
pub struct ParseSession {
    grammar: Arc<CompiledGrammar>,
    opts: ParserOptions,
    /// Chart returned by [`ParseSession::recycle`], reused by the next
    /// parse.
    spare: Option<Chart>,
    scratch: Scratch,
}

impl ParseSession {
    /// Creates a session with default [`ParserOptions`].
    pub fn new(grammar: Arc<CompiledGrammar>) -> Self {
        Self::with_options(grammar, ParserOptions::default())
    }

    /// Creates a session with explicit options.
    pub fn with_options(grammar: Arc<CompiledGrammar>, opts: ParserOptions) -> Self {
        ParseSession {
            grammar,
            opts,
            spare: None,
            scratch: Scratch::default(),
        }
    }

    /// The compiled grammar this session parses under.
    pub fn compiled(&self) -> &Arc<CompiledGrammar> {
        &self.grammar
    }

    /// The options every parse of this session runs with.
    pub fn options(&self) -> &ParserOptions {
        &self.opts
    }

    /// Parses one token sequence. Borrows the tokens; the result owns
    /// its chart (hand it back with [`ParseSession::recycle`] to reuse
    /// the allocation). Infallible: the grammar was validated when it
    /// was compiled. Budgets ([`ParserOptions::max_instances`],
    /// [`ParserOptions::deadline`]) apply per parse and report their
    /// outcome in `ParseStats::budget` — a budget-limited parse still
    /// returns maximal partial trees over whatever was built.
    pub fn parse(&mut self, tokens: &[Token]) -> ParseResult {
        let t = self.opts.profile.then(Instant::now);
        let mut chart = self
            .spare
            .take()
            .unwrap_or_else(|| Chart::new(Vec::new(), 0));
        chart.reset_for(tokens, self.grammar.grammar().symbols.len());
        let setup_ns = t.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut result = run_parse(
            self.grammar.grammar(),
            self.grammar.schedule(),
            self.grammar.preference_index(),
            chart,
            &self.opts,
            &mut self.scratch,
            None,
        );
        result.stats.phase.alloc_ns += setup_ns;
        result
    }

    /// Parses one token sequence *seeded* from a retained snapshot of
    /// an earlier parse — the incremental re-parse path for revisited
    /// interfaces.
    ///
    /// The tokens are diffed against the snapshot's (longest common
    /// prefix/suffix, content compared by interned text id); every
    /// snapshot instance whose span survives the diff is carried into
    /// the new chart, and the fix-point's watermarks start above zero
    /// so only combinations touching the changed region are
    /// re-derived. The result is equivalent to [`ParseSession::parse`]
    /// on the same tokens — byte-identical reports, the invariant the
    /// cache-parity suite pins — just cheaper when the edit is small.
    /// When the streams share nothing the diff is empty and this
    /// degrades gracefully to a cold parse.
    ///
    /// Soundness requires the snapshot to come from a *completed*
    /// parse (which [`ChartSnapshot::of`] guarantees) under the same
    /// grammar and preference-enforcement options as this session;
    /// seeding under different pruning switches re-derives against the
    /// wrong baseline.
    pub fn parse_seeded(&mut self, tokens: &[Token], snapshot: &ChartSnapshot) -> ParseResult {
        let t = self.opts.profile.then(Instant::now);
        let mut chart = self
            .spare
            .take()
            .unwrap_or_else(|| Chart::new(Vec::new(), 0));
        chart.reset_for(tokens, self.grammar.grammar().symbols.len());
        let diff = diff_tokens(snapshot.chart(), &chart);
        let seed = chart.carry_from(snapshot.chart(), &diff);
        let setup_ns = t.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut result = run_parse(
            self.grammar.grammar(),
            self.grammar.schedule(),
            self.grammar.preference_index(),
            chart,
            &self.opts,
            &mut self.scratch,
            Some(&seed),
        );
        result.stats.phase.alloc_ns += setup_ns;
        result
    }

    /// Returns a finished parse's chart to the session's allocation
    /// pool. Optional — dropping the result instead is correct, just
    /// slower for the next parse.
    pub fn recycle(&mut self, result: ParseResult) {
        self.spare = Some(result.chart);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{parse_with, PreferenceOrder};
    use metaform_core::{BBox, TokenKind};
    use metaform_grammar::paper_example_grammar;

    fn author_row() -> Vec<Token> {
        vec![
            Token::text(0, "Author", BBox::new(10, 4, 52, 20)),
            Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 0, 200, 20)),
        ]
    }

    #[test]
    fn session_matches_one_shot_parse() {
        let g = paper_example_grammar();
        let tokens = author_row();
        let one_shot = parse_with(&g, &tokens, &ParserOptions::default());
        let mut session = ParseSession::new(Arc::new(g.compile().unwrap()));
        let via_session = session.parse(&tokens);
        assert_eq!(via_session.trees, one_shot.trees);
        assert_eq!(via_session.chart.len(), one_shot.chart.len());
        assert_eq!(via_session.stats.created, one_shot.stats.created);
        assert_eq!(via_session.stats.schedules_built, 0);
        assert_eq!(one_shot.stats.schedules_built, 1);
    }

    #[test]
    fn recycled_chart_yields_identical_results() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let mut session = ParseSession::new(compiled);
        let tokens = author_row();
        let first = session.parse(&tokens);
        let first_trees = first.trees.clone();
        let first_created = first.stats.created;
        session.recycle(first);
        // Interleave a different input to dirty the recycled chart.
        let second = session.parse(&[]);
        assert_eq!(second.trees.len(), 0);
        session.recycle(second);
        let third = session.parse(&tokens);
        assert_eq!(third.trees, first_trees);
        assert_eq!(third.stats.created, first_created);
    }

    #[test]
    fn session_budgets_apply_per_parse() {
        use crate::stats::BudgetOutcome;
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let tokens = author_row();
        let mut rushed = ParseSession::with_options(
            compiled.clone(),
            ParserOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        // Every parse of the session is bounded, and the outcome is
        // reported per parse — the session itself stays reusable.
        for _ in 0..3 {
            let result = rushed.parse(&tokens);
            assert_eq!(result.stats.budget, BudgetOutcome::DeadlineExceeded);
            rushed.recycle(result);
        }
        let mut unbounded = ParseSession::new(compiled);
        let result = unbounded.parse(&tokens);
        assert_eq!(result.stats.budget, BudgetOutcome::Completed);
    }

    /// Renders what callers actually consume — the merged report —
    /// as the parity yardstick between cold and seeded parses.
    fn report_of(result: &crate::engine::ParseResult) -> String {
        crate::merger::merge(&result.chart, &result.trees).to_string()
    }

    fn two_rows() -> Vec<Token> {
        let mut t = author_row();
        t.push(Token::text(2, "Title", BBox::new(10, 48, 52, 64)));
        t.push(Token::widget(
            3,
            TokenKind::Textbox,
            "t",
            BBox::new(60, 44, 200, 64),
        ));
        t
    }

    fn renumber(mut tokens: Vec<Token>) -> Vec<Token> {
        for (i, t) in tokens.iter_mut().enumerate() {
            t.id = metaform_core::TokenId(i as u32);
        }
        tokens
    }

    #[test]
    fn seeded_parse_matches_cold_on_exact_revisit() {
        use crate::engine::FixpointMode;
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        for fixpoint in [FixpointMode::SemiNaive, FixpointMode::Naive] {
            let opts = ParserOptions {
                fixpoint,
                ..Default::default()
            };
            let mut session = ParseSession::with_options(compiled.clone(), opts);
            let tokens = two_rows();
            let first = session.parse(&tokens);
            let snapshot = ChartSnapshot::of(&first).expect("completed parse");
            let cold_report = report_of(&first);
            session.recycle(first);
            let seeded = session.parse_seeded(&tokens, &snapshot);
            assert_eq!(report_of(&seeded), cold_report, "{fixpoint:?}");
            assert_eq!(seeded.stats.budget, crate::BudgetOutcome::Completed);
        }
    }

    #[test]
    fn exact_revisit_skips_the_carried_work() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let mut session = ParseSession::new(compiled);
        let tokens = two_rows();
        let cold = session.parse(&tokens);
        let snapshot = ChartSnapshot::of(&cold).expect("completed parse");
        let cold_combos = cold.stats.combos_enumerated;
        session.recycle(cold);
        let seeded = session.parse_seeded(&tokens, &snapshot);
        assert!(
            seeded.stats.combos_enumerated < cold_combos,
            "seeded {} !< cold {}",
            seeded.stats.combos_enumerated,
            cold_combos
        );
    }

    #[test]
    fn seeded_parse_matches_cold_on_edits() {
        use crate::engine::FixpointMode;
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let base = two_rows();
        // Label edit mid-stream, a row appended, a row removed, and a
        // completely different stream (empty diff — cold-path degrade).
        let mut relabeled = base.clone();
        relabeled[0].sval = "Editor".to_string();
        let mut grown = base.clone();
        grown.push(Token::text(4, "Year", BBox::new(10, 92, 52, 108)));
        grown.push(Token::widget(
            5,
            TokenKind::Textbox,
            "y",
            BBox::new(60, 88, 200, 108),
        ));
        let shrunk = renumber(base[..2].to_vec());
        let moved: Vec<Token> = base
            .iter()
            .cloned()
            .map(|mut t| {
                t.pos = BBox::new(
                    t.pos.left + 500,
                    t.pos.top + 500,
                    t.pos.right + 500,
                    t.pos.bottom + 500,
                );
                t
            })
            .collect();
        for fixpoint in [FixpointMode::SemiNaive, FixpointMode::Naive] {
            let opts = ParserOptions {
                fixpoint,
                ..Default::default()
            };
            let mut session = ParseSession::with_options(compiled.clone(), opts);
            let first = session.parse(&base);
            let snapshot = ChartSnapshot::of(&first).expect("completed parse");
            session.recycle(first);
            for (name, revisit) in [
                ("relabel", &relabeled),
                ("grown", &grown),
                ("shrunk", &shrunk),
                ("moved", &moved),
            ] {
                let cold = session.parse(revisit);
                let cold_report = report_of(&cold);
                let cold_trees = cold.trees.len();
                session.recycle(cold);
                let seeded = session.parse_seeded(revisit, &snapshot);
                assert_eq!(report_of(&seeded), cold_report, "{name} ({fixpoint:?})");
                assert_eq!(seeded.trees.len(), cold_trees, "{name} ({fixpoint:?})");
                session.recycle(seeded);
            }
        }
    }

    #[test]
    fn snapshot_of_incomplete_parse_is_refused() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let mut rushed = ParseSession::with_options(
            compiled,
            ParserOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        let result = rushed.parse(&author_row());
        assert!(ChartSnapshot::of(&result).is_none());
    }

    #[test]
    fn session_honours_options() {
        let compiled = Arc::new(paper_example_grammar().compile().unwrap());
        let tokens = author_row();
        let mut pruned = ParseSession::new(compiled.clone());
        let mut brute = ParseSession::with_options(compiled.clone(), ParserOptions::brute_force());
        let mut reversed = ParseSession::with_options(
            compiled,
            ParserOptions {
                preference_order: PreferenceOrder::Reversed,
                ..Default::default()
            },
        );
        let p = pruned.parse(&tokens);
        let b = brute.parse(&tokens);
        let r = reversed.parse(&tokens);
        assert_eq!(b.stats.invalidated, 0, "brute force never prunes");
        assert!(b.stats.created >= p.stats.created);
        // Consistent grammar: enforcement order must not matter.
        assert_eq!(p.trees.len(), r.trees.len());
    }
}
