//! Process-global text interner for chart token texts.
//!
//! The revisit diff ([`crate::revisit`]) compares token streams from
//! *different* parses — the cached visit's chart against the fresh
//! tokenization — so equality must be judgeable across sessions,
//! worker threads, and time. Interned ids from one shared pool give an
//! O(1) integer compare with exactly string-equality semantics: two
//! texts receive the same id iff they are the same string.
//!
//! Ids are never recycled; the pool lives for the process. Form
//! vocabulary is tiny and heavily repeated (captions, widget names,
//! option labels), so the pool stays small while every chart sheds its
//! per-compare string walks.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// FNV-1a as the pool's hasher. The keys are short form-vocabulary
/// strings ("Author", "to", option captions) interned on every chart
/// reset; SipHash's setup cost dominates hashing at these lengths,
/// while FNV is a multiply-xor per byte. No DoS concern: the pool
/// holds page vocabulary, not attacker-chosen keys in a hot map.
#[derive(Default)]
pub(crate) struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type Pool = HashMap<String, u32, BuildHasherDefault<Fnv1a>>;

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

/// Locks the pool for a batch of interning calls — one lock per chart
/// reset, not per string.
pub(crate) fn lock_pool() -> MutexGuard<'static, Pool> {
    POOL.get_or_init(|| Mutex::new(HashMap::default()))
        .lock()
        .expect("text interner poisoned")
}

/// Interns `s` under an already-held pool lock.
pub(crate) fn intern_locked(pool: &mut Pool, s: &str) -> u32 {
    if let Some(&id) = pool.get(s) {
        return id;
    }
    let id = pool.len() as u32;
    pool.insert(s.to_string(), id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_equality_preserving() {
        let (a, b, a2) = {
            let mut pool = lock_pool();
            (
                intern_locked(&mut pool, "Author"),
                intern_locked(&mut pool, "Title"),
                intern_locked(&mut pool, "Author"),
            )
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // A later lock still sees the same ids.
        let again = {
            let mut pool = lock_pool();
            intern_locked(&mut pool, "Author")
        };
        assert_eq!(a, again);
    }
}
