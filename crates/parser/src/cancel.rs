//! Batch-level cancellation — one shared flag, observed at the
//! parser's existing sampled budget poll.
//!
//! A [`CancelToken`] is a cloneable handle to one `AtomicBool`. Every
//! clone observes the same flag, so a driver can hand the same token
//! to every page of a batch (via `ParserOptions::cancel`) and abort
//! the whole batch with one [`CancelToken::cancel`] call: each
//! in-flight parse stops at its next poll (at most 64 enumeration
//! steps away) with `BudgetOutcome::Cancelled`, and pages not yet
//! started are skipped outright by the batch driver. Cancellation is
//! sticky — a token never un-cancels — so late-joining workers see it
//! too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cloneable cancellation flag shared by every parse of a batch (see
/// module docs). The default token is live (not cancelled).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag. Idempotent; never blocks. Every parse holding a
    /// clone of this token stops at its next budget poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "cancel on a clone is visible everywhere");
        a.cancel(); // idempotent
        assert!(b.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled(), "separate tokens do not interfere");
    }
}
