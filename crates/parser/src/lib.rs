//! # metaform-parser
//!
//! The **best-effort parser** for 2P grammars (paper §5): a fix-point
//! bottom-up parser that, instead of insisting on a single perfect
//! parse, (a) prunes wrong interpretations as much and as early as
//! possible — *just-in-time pruning* via the 2P schedule, with
//! *rollback* compensating dropped r-edges — and (b) interprets the
//! input as much as possible — *partial tree maximization* by maximum
//! subsumption. The companion **merger** unions the maximal trees'
//! conditions into the final semantic model and reports conflicts and
//! missing elements.
//!
//! The exhaustive baseline of §4.2.1 is available through
//! [`ParserOptions::brute_force`] for the ambiguity experiments.
//!
//! ## Compile once, parse many
//!
//! Parsing splits into a fallible *compile* step and an infallible
//! *parse* step. [`metaform_grammar::Grammar::compile`] validates and
//! schedules a grammar once, yielding an immutable
//! `CompiledGrammar`; a [`ParseSession`] then parses any number of
//! token sequences under it, recycling its chart and scratch buffers
//! between parses. The free functions [`parse`] and [`parse_with`]
//! remain as one-shot conveniences that rebuild the schedule per call
//! — correct, but the wrong tool for batch workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod consistency;
mod dedup;
pub mod display;
pub mod engine;
pub mod instance;
mod intern;
pub mod maximize;
pub mod merger;
pub mod partial;
pub mod revisit;
pub mod session;
pub mod stats;
pub mod tokenset;

pub use cancel::CancelToken;
pub use consistency::{check_preferences, check_preferences_compiled, Consistency};
pub use display::render_tree;
pub use engine::{parse, parse_with, FixpointMode, ParseResult, ParserOptions, PreferenceOrder};
pub use instance::{Chart, InstId, ParentIter};
pub use maximize::{maximize, maximize_naive};
pub use merger::{merge, salvage_merge};
pub use partial::{pattern_spans, tree_symbols};
pub use revisit::ChartSnapshot;
pub use session::ParseSession;
pub use stats::{BudgetOutcome, ParseStats, PhaseBreakdown};
pub use tokenset::{TokenSet, INLINE_TOKENS};
