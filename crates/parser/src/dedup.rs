//! Allocation-free dedup set for `(production, children)` combos.
//!
//! The fix-point's termination argument rests on never re-creating an
//! instance for a combination already tried. The original
//! `HashSet<(ProdId, Vec<InstId>)>` paid one heap allocation per
//! *probe* (`children.to_vec()`) and another per insert; under the
//! semi-naive schedule the set is only a correctness backstop, but the
//! naive reference mode still leans on it as the workhorse, so it must
//! stay exact. [`ComboSet`] is an open-addressing table over a flat
//! `u32` arena: probes hash the borrowed slice directly and compare
//! against arena ranges, so neither lookups nor inserts allocate per
//! combo (the arena grows amortized like a `Vec`).

use crate::instance::InstId;
use metaform_grammar::ProdId;

/// FNV-1a over the production id and child ids. Collisions only cost a
/// slice comparison — membership is decided by exact compare, never by
/// hash equality.
fn combo_hash(prod: ProdId, children: &[InstId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h = (h ^ prod.0 as u64).wrapping_mul(PRIME);
    for &c in children {
        h = (h ^ c.0 as u64).wrapping_mul(PRIME);
    }
    h
}

/// An exact set of `(ProdId, [InstId])` keys (see module docs).
#[derive(Clone, Debug, Default)]
pub(crate) struct ComboSet {
    /// Flat arena: entry `e` is `ids[offsets[e]..offsets[e+1]]`, laid
    /// out as `[prod, child0, child1, ...]`.
    ids: Vec<u32>,
    /// Entry boundaries into `ids`; `offsets.len()` = entries + 1.
    /// Starts at the sentinel `[0]` (restored lazily after `default`).
    offsets: Vec<u32>,
    /// Cached hash per entry, so growth never re-reads the arena key.
    hashes: Vec<u64>,
    /// Open-addressing buckets: 0 = empty, else entry index + 1.
    /// Length is always a power of two (or zero before first insert).
    table: Vec<u32>,
}

impl ComboSet {
    /// Number of combos stored.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Removes every combo, keeping all capacity for reuse (the
    /// session-recycling path).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.offsets.clear();
        self.hashes.clear();
        self.table.fill(0);
    }

    /// Does the set contain `(prod, children)`?
    pub fn contains(&self, prod: ProdId, children: &[InstId]) -> bool {
        if self.table.is_empty() {
            return false;
        }
        let hash = combo_hash(prod, children);
        let mask = self.table.len() - 1;
        let mut bucket = hash as usize & mask;
        loop {
            match self.table[bucket] {
                0 => return false,
                slot => {
                    let e = slot as usize - 1;
                    if self.hashes[e] == hash && self.entry_eq(e, prod, children) {
                        return true;
                    }
                }
            }
            bucket = (bucket + 1) & mask;
        }
    }

    /// Inserts `(prod, children)`. The caller must have checked
    /// [`ComboSet::contains`] first; double inserts would waste arena
    /// space (and are a bug in the fix-point).
    pub fn insert(&mut self, prod: ProdId, children: &[InstId]) {
        debug_assert!(
            !self.contains(prod, children),
            "combo inserted twice: {prod:?} {children:?}"
        );
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        if (self.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        let entry = self.len();
        self.ids.push(prod.0);
        self.ids.extend(children.iter().map(|c| c.0));
        self.offsets.push(self.ids.len() as u32);
        let hash = combo_hash(prod, children);
        self.hashes.push(hash);
        let mask = self.table.len() - 1;
        let mut bucket = hash as usize & mask;
        while self.table[bucket] != 0 {
            bucket = (bucket + 1) & mask;
        }
        self.table[bucket] = entry as u32 + 1;
    }

    /// Exact key comparison against arena entry `e`.
    fn entry_eq(&self, e: usize, prod: ProdId, children: &[InstId]) -> bool {
        let range = self.offsets[e] as usize..self.offsets[e + 1] as usize;
        let key = &self.ids[range];
        key.len() == children.len() + 1
            && key[0] == prod.0
            && key[1..].iter().zip(children).all(|(&k, c)| k == c.0)
    }

    /// Doubles the bucket table and re-seats every entry from its
    /// cached hash.
    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(16);
        self.table.clear();
        self.table.resize(new_len, 0);
        let mask = new_len - 1;
        for (e, &hash) in self.hashes.iter().enumerate() {
            let mut bucket = hash as usize & mask;
            while self.table[bucket] != 0 {
                bucket = (bucket + 1) & mask;
            }
            self.table[bucket] = e as u32 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<InstId> {
        v.iter().map(|&i| InstId(i)).collect()
    }

    #[test]
    fn insert_then_contains() {
        let mut s = ComboSet::default();
        assert!(!s.contains(ProdId(0), &ids(&[1, 2])));
        s.insert(ProdId(0), &ids(&[1, 2]));
        assert!(s.contains(ProdId(0), &ids(&[1, 2])));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_are_order_and_production_sensitive() {
        let mut s = ComboSet::default();
        s.insert(ProdId(0), &ids(&[1, 2]));
        assert!(!s.contains(ProdId(0), &ids(&[2, 1])), "order matters");
        assert!(!s.contains(ProdId(1), &ids(&[1, 2])), "production matters");
        assert!(!s.contains(ProdId(0), &ids(&[1])), "arity matters");
        assert!(
            !s.contains(ProdId(0), &ids(&[1, 2, 3])),
            "prefix is not a hit"
        );
    }

    #[test]
    fn survives_growth() {
        let mut s = ComboSet::default();
        for i in 0..1000u32 {
            s.insert(ProdId(i % 7), &ids(&[i, i + 1, i + 2]));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u32 {
            assert!(s.contains(ProdId(i % 7), &ids(&[i, i + 1, i + 2])), "{i}");
        }
        assert!(!s.contains(ProdId(3), &ids(&[1000, 1001, 1002])));
    }

    #[test]
    fn clear_retains_nothing() {
        let mut s = ComboSet::default();
        s.insert(ProdId(0), &ids(&[5]));
        s.insert(ProdId(1), &ids(&[5, 6]));
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(ProdId(0), &ids(&[5])));
        // Reusable after clear.
        s.insert(ProdId(0), &ids(&[5]));
        assert!(s.contains(ProdId(0), &ids(&[5])));
    }

    #[test]
    fn empty_children_supported() {
        // Grammar validation rejects nullary productions, but the set
        // itself must not care.
        let mut s = ComboSet::default();
        s.insert(ProdId(9), &[]);
        assert!(s.contains(ProdId(9), &[]));
        assert!(!s.contains(ProdId(8), &[]));
    }
}
