//! The merger (paper §3.4): combine partial parse trees into the final
//! semantic model and report errors.
//!
//! "Since our goal is to identify all the query conditions, the merger
//! combines multiple parse trees by taking the union of their extracted
//! conditions. … It reports two types of errors: a *conflict* occurs if
//! the same token is used by different conditions … a *missing element*
//! is a token not covered by any parse tree."

use crate::instance::{Chart, InstId};
use metaform_core::{Condition, Conflict, ExtractionReport, TokenId};
use std::collections::{HashMap, HashSet};

/// Merges maximal partial trees into an [`ExtractionReport`].
///
/// Trees are visited largest-span first, ties broken by span content
/// and then by the conditions themselves — never by instance id.
/// [`maximize()`](crate::maximize()) orders equal-span ties by id, and
/// ids depend on chart history: a seeded re-parse
/// ([`crate::ParseSession::parse_seeded`]) numbers carried instances
/// differently from a cold parse of the same tokens. Re-sorting here by
/// content keeps the report byte-identical across the two, which the
/// cache-parity suite enforces. Conditions are unioned with
/// equivalence-level deduplication. When two *different* conditions
/// claim the same token, both stay in the model (the parser cannot
/// arbitrate — that is client-side work, §7), and a [`Conflict`]
/// records the claim pair with the earlier (larger-context) condition
/// as primary.
pub fn merge(chart: &Chart, trees: &[InstId]) -> ExtractionReport {
    let mut visit: Vec<InstId> = trees.to_vec();
    visit.sort_by_cached_key(|&t| {
        let span: Vec<u32> = chart.span(t).iter().map(|tok| tok.0).collect();
        let conds: Vec<(Vec<TokenId>, String)> = chart
            .payload(t)
            .conditions()
            .iter()
            .map(|c| (c.tokens.clone(), c.to_string()))
            .collect();
        (std::cmp::Reverse(span.len()), span, conds)
    });

    let mut conditions: Vec<Condition> = Vec::new();
    let mut claimed: HashMap<TokenId, usize> = HashMap::new();
    let mut conflicts: Vec<Conflict> = Vec::new();

    for &tree in &visit {
        for cond in chart.payload(tree).conditions() {
            if let Some(existing) = conditions.iter().position(|c| c.equivalent(cond)) {
                // Same condition extracted from an overlapping tree —
                // not a conflict, just overlap in coverage.
                let _ = existing;
                continue;
            }
            let idx = conditions.len();
            let mut conflicting_with: Vec<usize> = Vec::new();
            for &t in &cond.tokens {
                if let Some(&owner) = claimed.get(&t) {
                    if !conflicting_with.contains(&owner) {
                        conflicting_with.push(owner);
                        conflicts.push(Conflict {
                            token: t,
                            kept: owner,
                            dropped: idx,
                        });
                    }
                }
            }
            for &t in &cond.tokens {
                claimed.entry(t).or_insert(idx);
            }
            conditions.push(cond.clone());
        }
    }

    let missing = chart.uncovered_tokens(trees);
    ExtractionReport {
        conditions,
        conflicts,
        missing,
    }
}

/// Salvage-tier merge for budget-limited parses: the regular
/// [`merge`] over the maximal trees, then a sweep over *every* valid
/// charted instance that adds any condition claiming only
/// still-unclaimed tokens. A truncated fix-point often charted a
/// condition whose enclosing derivation was cut by the budget before
/// it reached a maximal tree — the sweep recovers those grammar-path
/// claims without disturbing anything the maximal trees already said
/// (added conditions are token-disjoint from the claimed set, so no
/// new conflicts arise). The sweep visits instances in the same
/// content order as [`merge`], so the result is deterministic across
/// chart histories. Completed parses never come through here — the
/// happy path stays byte-identical to [`merge`].
pub fn salvage_merge(chart: &Chart, trees: &[InstId]) -> ExtractionReport {
    let mut report = merge(chart, trees);
    let mut claimed: HashSet<TokenId> = report
        .conditions
        .iter()
        .flat_map(|c| c.tokens.iter().copied())
        .collect();
    let mut extras: Vec<InstId> = chart
        .ids()
        .filter(|&i| chart.is_valid(i) && chart.prod(i).is_some() && !chart.span(i).is_empty())
        .collect();
    extras.sort_by_cached_key(|&t| {
        let span: Vec<u32> = chart.span(t).iter().map(|tok| tok.0).collect();
        let conds: Vec<(Vec<TokenId>, String)> = chart
            .payload(t)
            .conditions()
            .iter()
            .map(|c| (c.tokens.clone(), c.to_string()))
            .collect();
        (std::cmp::Reverse(span.len()), span, conds)
    });
    for inst in extras {
        for cond in chart.payload(inst).conditions() {
            if cond.tokens.is_empty() || cond.tokens.iter().any(|t| claimed.contains(t)) {
                continue;
            }
            if report.conditions.iter().any(|c| c.equivalent(cond)) {
                continue;
            }
            claimed.extend(cond.tokens.iter().copied());
            report.missing.retain(|t| !cond.tokens.contains(t));
            report.conditions.push(cond.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::parse;
    use metaform_core::{BBox, DomainKind, Token, TokenKind};
    use metaform_grammar::paper_example_grammar;

    fn label_box_pair(id0: u32, label: &str, x: i32, y: i32) -> Vec<Token> {
        let w = label.len() as i32 * 7;
        vec![
            Token::text(id0, label, BBox::new(x, y + 4, x + w, y + 20)),
            Token::widget(
                id0 + 1,
                TokenKind::Textbox,
                "f",
                BBox::new(x + w + 8, y, x + w + 148, y + 20),
            ),
        ]
    }

    #[test]
    fn clean_merge_of_one_tree() {
        let g = paper_example_grammar();
        let mut tokens = label_box_pair(0, "Author", 10, 10);
        tokens.extend(label_box_pair(2, "Title", 10, 40));
        let res = parse(&g, &tokens);
        let report = merge(&res.chart, &res.trees);
        assert_eq!(report.conditions.len(), 2);
        assert!(report.is_clean());
        assert_eq!(report.conditions[0].attribute, "Author");
        assert_eq!(report.conditions[1].attribute, "Title");
        assert_eq!(report.conditions[0].domain.kind, DomainKind::Text);
    }

    #[test]
    fn union_across_disconnected_trees() {
        let g = paper_example_grammar();
        let mut tokens = label_box_pair(0, "Author", 10, 10);
        tokens.extend(label_box_pair(2, "Title", 500, 600));
        let res = parse(&g, &tokens);
        assert_eq!(res.trees.len(), 2);
        let report = merge(&res.chart, &res.trees);
        assert_eq!(report.conditions.len(), 2, "union enhances coverage");
        assert!(report.is_clean());
    }

    #[test]
    fn missing_elements_reported() {
        let g = paper_example_grammar();
        let mut tokens = vec![Token::widget(
            0,
            TokenKind::Checkbox, // no checkbox rules in grammar G
            "cb",
            BBox::new(10, 10, 23, 23),
        )];
        tokens.extend(label_box_pair(1, "Author", 10, 40));
        let res = parse(&g, &tokens);
        let report = merge(&res.chart, &res.trees);
        assert_eq!(report.conditions.len(), 1);
        assert_eq!(report.missing, vec![TokenId(0)]);
        assert!(!report.is_clean());
    }

    #[test]
    fn conflicting_claims_recorded_with_primary_first() {
        // Two trees claiming one token with *different* conditions:
        // build the Figure 14 situation synthetically by merging two
        // independent parses' trees over a shared chart is complex; the
        // unit here exercises merge() directly on a hand-built chart.
        use crate::tokenset::TokenSet;
        let _ = TokenSet::new(1); // module link sanity
        let g = paper_example_grammar();
        // "Adults [select]" where select is a textbox here for grammar G;
        // two labels compete for one box: "Passengers  Adults [box]".
        let tokens = vec![
            Token::text(0, "Passengers", BBox::new(10, 14, 80, 30)),
            Token::text(1, "Adults", BBox::new(90, 14, 132, 30)),
            Token::widget(2, TokenKind::Textbox, "n", BBox::new(140, 10, 200, 30)),
        ];
        let res = parse(&g, &tokens);
        let report = merge(&res.chart, &res.trees);
        // The tighter pairing (Adults) parses; Passengers stays either
        // uncovered or in a competing tree. Whatever the split, the
        // merger must not lose the Adults condition.
        assert!(report.conditions.iter().any(|c| c.attribute == "Adults"));
    }

    #[test]
    fn equivalent_conditions_deduplicate() {
        let g = paper_example_grammar();
        let tokens = label_box_pair(0, "Author", 10, 10);
        let res = parse(&g, &tokens);
        // Merge the same tree twice: the union must not duplicate.
        let twice: Vec<InstId> = res.trees.iter().chain(res.trees.iter()).copied().collect();
        let report = merge(&res.chart, &twice);
        assert_eq!(report.conditions.len(), 1);
        assert!(report.conflicts.is_empty());
    }
}
