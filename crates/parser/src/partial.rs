//! Partial-tree export: the parser-side half of the induction loop's
//! **Collect** step.
//!
//! The merger reports *what* was extracted; induction also needs to
//! know *which pattern claimed which tokens* — a page built from a
//! withheld pattern usually parses "successfully" with its tokens
//! mis-claimed by the unlabeled fallback patterns, leaving nothing in
//! the `missing` list to mine from. These helpers walk the maximal
//! partial trees and export, per pattern-level instance (each `CP`
//! node's single child), the claiming symbol and its token span, in
//! the form `metaform_grammar::induce::mine_page` consumes.

use crate::instance::{Chart, InstId};
use metaform_core::TokenId;
use metaform_grammar::induce::PatternSpan;
use metaform_grammar::Grammar;
use std::collections::BTreeSet;

/// One [`PatternSpan`] per pattern-level instance in the maximal
/// trees: every `CP` node's single child is a condition pattern
/// (`TextVal`, `KwVal`, …); its symbol name and covered token ids are
/// the mining evidence. Deterministic: trees are walked in maximal
/// order, nodes in DFS order, and shared instances export once.
pub fn pattern_spans(chart: &Chart, trees: &[InstId], grammar: &Grammar) -> Vec<PatternSpan> {
    let Some(cp) = grammar.symbols.lookup("CP") else {
        return Vec::new();
    };
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut out = Vec::new();
    for &root in trees {
        for node in chart.tree_nodes(root) {
            if chart.symbol(node) != cp {
                continue;
            }
            let Some(&child) = chart.children(node).first() else {
                continue;
            };
            if !seen.insert(child.0) {
                continue;
            }
            let span = chart.span(child);
            let tokens: Vec<TokenId> = (0..chart.len() as u32)
                .map(TokenId)
                .filter(|&t| span.contains(t))
                .collect();
            out.push(PatternSpan {
                symbol: grammar.symbols.name(chart.symbol(child)).to_string(),
                tokens,
            });
        }
    }
    out
}

/// The maximal partial trees' root symbols, in maximal order — the
/// coarse "how far did the parse get" telemetry degraded pages record
/// alongside the mined arrangements.
pub fn tree_symbols(chart: &Chart, trees: &[InstId], grammar: &Grammar) -> Vec<String> {
    trees
        .iter()
        .map(|&root| grammar.symbols.name(chart.symbol(root)).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ParseSession;
    use metaform_core::{BBox, Token, TokenKind};
    use metaform_grammar::global_compiled;

    #[test]
    fn exports_one_span_per_pattern_instance() {
        let tokens = vec![
            Token::text(0, "Author", BBox::new(0, 0, 48, 16)),
            Token::widget(1, TokenKind::Textbox, "a", BBox::new(60, 0, 140, 16)),
        ];
        let compiled = global_compiled();
        let mut session = ParseSession::new(compiled.clone());
        let result = session.parse(&tokens);
        let spans = pattern_spans(&result.chart, &result.trees, compiled.grammar());
        assert!(
            spans
                .iter()
                .any(|s| s.symbol == "TextVal" && s.tokens == vec![TokenId(0), TokenId(1)]),
            "{spans:?}"
        );
        let roots = tree_symbols(&result.chart, &result.trees, compiled.grammar());
        assert!(!roots.is_empty());
    }
}
