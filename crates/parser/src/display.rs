//! Parse-tree rendering, in the spirit of the paper's Figure 10:
//! indented derivation trees with grammar symbols and token leaves.

use crate::instance::{Chart, InstId};
use metaform_core::TokenKind;
use metaform_grammar::{Grammar, Payload};
use std::fmt::Write;

/// Renders the derivation tree rooted at `root` as indented text.
///
/// ```text
/// QI [8 tokens]
/// └─ HQI
///    └─ CP
///       └─ TextOp  ⇒ [Author; {exact name, …}; text]
///          ├─ Attr "Author"
///          │  └─ text t0 "Author"
///          …
/// ```
pub fn render_tree(chart: &Chart, grammar: &Grammar, root: InstId) -> String {
    let mut out = String::new();
    let span = chart.span(root).count();
    let _ = writeln!(
        out,
        "{} [{} token{}]",
        node_label(chart, grammar, root),
        span,
        if span == 1 { "" } else { "s" }
    );
    let children = chart.children(root);
    for (i, &c) in children.iter().enumerate() {
        render_into(chart, grammar, c, "", i + 1 == children.len(), &mut out);
    }
    out
}

fn render_into(
    chart: &Chart,
    grammar: &Grammar,
    node: InstId,
    prefix: &str,
    last: bool,
    out: &mut String,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let _ = writeln!(out, "{prefix}{branch}{}", node_label(chart, grammar, node));
    let children = chart.children(node);
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, &c) in children.iter().enumerate() {
        render_into(
            chart,
            grammar,
            c,
            &child_prefix,
            i + 1 == children.len(),
            out,
        );
    }
}

fn node_label(chart: &Chart, grammar: &Grammar, node: InstId) -> String {
    let name = grammar.symbols.name(chart.symbol(node));
    if let Some(tid) = chart.token(node) {
        let token = &chart.tokens()[tid.index()];
        return match token.kind {
            TokenKind::Text => format!("{name} {tid:?} {:?}", token.sval),
            _ => format!("{name} {tid:?}"),
        };
    }
    match chart.payload(node) {
        Payload::Cond(c) => format!("{name}  ⇒ {c}"),
        Payload::Attr(a) => format!("{name} {a:?}"),
        Payload::Text(t) => format!("{name} {t:?}"),
        Payload::Ops(ops) => format!("{name} [{}]", ops.join(", ")),
        _ => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::parse;
    use metaform_core::{BBox, Token};
    use metaform_grammar::paper_example_grammar;

    fn tokens() -> Vec<Token> {
        vec![
            Token::text(0, "Author", BBox::new(10, 12, 52, 28)),
            Token::widget(1, TokenKind::Textbox, "q", BBox::new(60, 8, 200, 28)),
        ]
    }

    #[test]
    fn renders_full_derivation() {
        let g = paper_example_grammar();
        let res = parse(&g, &tokens());
        let tree = render_tree(&res.chart, &g, res.trees[0]);
        assert!(tree.starts_with("QI [2 tokens]"), "{tree}");
        assert!(tree.contains("TextVal"), "{tree}");
        assert!(tree.contains("⇒ [Author; {contains}; text]"), "{tree}");
        assert!(tree.contains("text t0 \"Author\""), "{tree}");
        assert!(tree.contains("textbox t1"), "{tree}");
        // Tree-drawing characters balance: exactly one root line.
        assert!(tree.lines().count() >= 6);
        assert!(tree.lines().skip(1).all(|l| l.contains("─ ")));
    }

    #[test]
    fn indentation_nests() {
        let g = paper_example_grammar();
        let res = parse(&g, &tokens());
        let tree = render_tree(&res.chart, &g, res.trees[0]);
        let depth_of = |needle: &str| {
            tree.lines()
                .find(|l| l.contains(needle))
                .map(|l| l.find("─ ").unwrap())
                .unwrap_or(usize::MAX)
        };
        assert!(depth_of("HQI") < depth_of("CP"));
        assert!(depth_of("CP") < depth_of("TextVal"));
        assert!(depth_of("TextVal") < depth_of("Attr"));
    }
}
