//! Dense bitsets over token ids.
//!
//! Every instance records which tokens its derivation covers; conflict
//! detection (span intersection) and subsumption tests are the hottest
//! operations in preference enforcement and partial-tree maximization,
//! so they run word-wise over a compact bitset.
//!
//! The representation is inline-first: interfaces with at most
//! [`INLINE_TOKENS`] tokens (the whole survey corpus — the median
//! interface has 18) keep their two words inside the struct, so a span
//! is created, unioned, and compared without ever touching the heap.
//! Larger interfaces spill to a `Vec<u64>` transparently; all
//! operations, `Eq`, and `Hash` see only the logical bit content, so
//! the two representations are interchangeable.

use metaform_core::TokenId;
use std::hash::{Hash, Hasher};

/// Highest token capacity the inline representation covers.
pub const INLINE_TOKENS: usize = 128;

/// Words kept inline (`INLINE_TOKENS / 64`).
const INLINE_WORDS: usize = 2;

/// A set of token ids, sized at construction for one interface.
#[derive(Clone, Debug)]
pub struct TokenSet {
    /// Inline words, authoritative while `spill` is empty.
    inline: [u64; INLINE_WORDS],
    /// Heap words, authoritative when non-empty (capacity >
    /// [`INLINE_TOKENS`]). An empty vec means the set is inline.
    spill: Vec<u64>,
    len: u32,
}

impl TokenSet {
    /// Empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        TokenSet {
            inline: [0; INLINE_WORDS],
            spill: if capacity <= INLINE_TOKENS {
                Vec::new()
            } else {
                vec![0; capacity.div_ceil(64)]
            },
            len: 0,
        }
    }

    /// Singleton set.
    pub fn singleton(capacity: usize, id: TokenId) -> Self {
        let mut s = Self::new(capacity);
        s.insert(id);
        s
    }

    /// The words backing the set (trailing zero words included).
    #[inline]
    fn words(&self) -> &[u64] {
        if self.spill.is_empty() {
            &self.inline
        } else {
            &self.spill
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        if self.spill.is_empty() {
            &mut self.inline
        } else {
            &mut self.spill
        }
    }

    /// Adds an id.
    #[inline]
    pub fn insert(&mut self, id: TokenId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        let word = &mut self.words_mut()[w];
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: TokenId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words()
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of ids in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.len as usize
    }

    /// True when no ids are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest id in the set, if any.
    #[inline]
    pub fn min_id(&self) -> Option<TokenId> {
        if self.len == 0 {
            return None;
        }
        for (wi, &word) in self.words().iter().enumerate() {
            if word != 0 {
                return Some(TokenId((wi * 64) as u32 + word.trailing_zeros()));
            }
        }
        None
    }

    /// Largest id in the set, if any.
    #[inline]
    pub fn max_id(&self) -> Option<TokenId> {
        if self.len == 0 {
            return None;
        }
        for (wi, &word) in self.words().iter().enumerate().rev() {
            if word != 0 {
                return Some(TokenId((wi * 64) as u32 + 63 - word.leading_zeros()));
            }
        }
        None
    }

    /// In-place union. The cardinality is maintained incrementally:
    /// only words that actually gain bits are popcounted, instead of
    /// re-counting the whole set (unions run once per created instance,
    /// over mostly-disjoint spans, so most words change or are zero —
    /// but the recount was O(words) even for tiny deltas).
    pub fn union_with(&mut self, other: &TokenSet) {
        if self.spill.is_empty() && other.spill.is_empty() {
            for i in 0..INLINE_WORDS {
                let gained = other.inline[i] & !self.inline[i];
                if gained != 0 {
                    self.inline[i] |= gained;
                    self.len += gained.count_ones();
                }
            }
            return;
        }
        let other_words = other.words();
        debug_assert!(self.words().len() >= used_words(other_words));
        let mut len = self.len;
        for (a, b) in self.words_mut().iter_mut().zip(other_words) {
            let gained = b & !*a;
            if gained != 0 {
                *a |= gained;
                len += gained.count_ones();
            }
        }
        self.len = len;
    }

    /// Do the sets share any id?
    #[inline]
    pub fn intersects(&self, other: &TokenSet) -> bool {
        if self.spill.is_empty() && other.spill.is_empty() {
            return (self.inline[0] & other.inline[0]) | (self.inline[1] & other.inline[1]) != 0;
        }
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &TokenSet) -> bool {
        if self.spill.is_empty() && other.spill.is_empty() {
            return (self.inline[0] & !other.inline[0]) | (self.inline[1] & !other.inline[1]) == 0;
        }
        let (a, b) = (self.words(), other.words());
        let shared = a.len().min(b.len());
        a[shared..].iter().all(|&w| w == 0) && a[..shared].iter().zip(b).all(|(x, y)| x & !y == 0)
    }

    /// Is `self ⊂ other` (subset and strictly smaller)?
    #[inline]
    pub fn is_strict_subset(&self, other: &TokenSet) -> bool {
        self.len < other.len && self.is_subset(other)
    }

    /// Ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(TokenId((wi * 64) as u32 + b))
            })
        })
    }
}

/// Word count with trailing zero words trimmed — the logical content
/// `Eq`/`Hash` are defined over, independent of representation.
fn used_words(words: &[u64]) -> usize {
    words.len() - words.iter().rev().take_while(|&&w| w == 0).count()
}

impl PartialEq for TokenSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (a, b) = (self.words(), other.words());
        let (ua, ub) = (used_words(a), used_words(b));
        ua == ub && a[..ua] == b[..ub]
    }
}

impl Eq for TokenSet {}

impl Hash for TokenSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let words = self.words();
        let used = used_words(words);
        self.len.hash(state);
        words[..used].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = TokenSet::new(100);
        assert!(s.is_empty());
        s.insert(TokenId(0));
        s.insert(TokenId(63));
        s.insert(TokenId(64));
        s.insert(TokenId(99));
        s.insert(TokenId(99)); // duplicate
        assert_eq!(s.count(), 4);
        assert!(s.contains(TokenId(63)));
        assert!(s.contains(TokenId(64)));
        assert!(!s.contains(TokenId(1)));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = TokenSet::new(130);
        let mut b = TokenSet::new(130);
        a.insert(TokenId(3));
        a.insert(TokenId(127));
        b.insert(TokenId(64));
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        assert!(a.intersects(&b));
    }

    #[test]
    fn subset_relations() {
        let mut small = TokenSet::new(80);
        let mut big = TokenSet::new(80);
        for i in [1u32, 70] {
            small.insert(TokenId(i));
            big.insert(TokenId(i));
        }
        big.insert(TokenId(5));
        assert!(small.is_subset(&big));
        assert!(small.is_strict_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(!small.is_strict_subset(&small));
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let mut s = TokenSet::new(200);
        for i in [150u32, 3, 64, 65] {
            s.insert(TokenId(i));
        }
        let ids: Vec<u32> = s.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![3, 64, 65, 150]);
    }

    #[test]
    fn union_len_tracked_incrementally() {
        // Overlapping, disjoint, and empty unions across word
        // boundaries must all keep `len` equal to a full recount.
        let mut a = TokenSet::new(300);
        let mut b = TokenSet::new(300);
        for i in [0u32, 63, 64, 130, 299] {
            a.insert(TokenId(i));
        }
        for i in [0u32, 64, 65, 131, 200] {
            b.insert(TokenId(i));
        }
        a.union_with(&b);
        assert_eq!(a.count(), a.iter().count(), "len matches recount");
        assert_eq!(a.count(), 8);
        // Idempotent: unioning again gains nothing.
        let before = a.count();
        let b2 = b.clone();
        a.union_with(&b2);
        assert_eq!(a.count(), before);
        // Union with an empty set is a no-op.
        a.union_with(&TokenSet::new(300));
        assert_eq!(a.count(), before);
        assert_eq!(a.count(), a.iter().count());
    }

    #[test]
    fn singleton() {
        let s = TokenSet::singleton(10, TokenId(7));
        assert_eq!(s.count(), 1);
        assert!(s.contains(TokenId(7)));
    }

    #[test]
    fn inline_sets_never_allocate() {
        let s = TokenSet::new(INLINE_TOKENS);
        assert!(s.spill.is_empty(), "≤{INLINE_TOKENS} tokens stay inline");
        let big = TokenSet::new(INLINE_TOKENS + 1);
        assert_eq!(big.spill.len(), 3, "larger interfaces spill to the heap");
    }

    #[test]
    fn eq_and_hash_cross_representation() {
        use std::collections::hash_map::DefaultHasher;
        let hash_of = |s: &TokenSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        // Same bits at inline and spilled capacity compare and hash
        // identically.
        let mut small = TokenSet::new(100);
        let mut big = TokenSet::new(400);
        for i in [0u32, 64, 99] {
            small.insert(TokenId(i));
            big.insert(TokenId(i));
        }
        assert_eq!(small, big);
        assert_eq!(hash_of(&small), hash_of(&big));
        big.insert(TokenId(300));
        assert_ne!(small, big);
    }

    #[test]
    fn min_max_ids() {
        let mut s = TokenSet::new(400);
        assert_eq!(s.min_id(), None);
        assert_eq!(s.max_id(), None);
        for i in [130u32, 5, 64, 399] {
            s.insert(TokenId(i));
        }
        assert_eq!(s.min_id(), Some(TokenId(5)));
        assert_eq!(s.max_id(), Some(TokenId(399)));
        let one = TokenSet::singleton(10, TokenId(7));
        assert_eq!(one.min_id(), Some(TokenId(7)));
        assert_eq!(one.max_id(), Some(TokenId(7)));
    }

    #[test]
    fn spill_boundary_ops() {
        // 128 tokens is the last inline capacity; 129 the first spill.
        for cap in [INLINE_TOKENS, INLINE_TOKENS + 1] {
            let mut a = TokenSet::new(cap);
            let mut b = TokenSet::new(cap);
            a.insert(TokenId(0));
            a.insert(TokenId(127));
            b.insert(TokenId(127));
            assert!(a.intersects(&b));
            assert!(b.is_subset(&a));
            assert!(b.is_strict_subset(&a));
            a.union_with(&b);
            assert_eq!(a.count(), 2);
            assert_eq!(a.max_id(), Some(TokenId(127)));
        }
    }
}
