//! Dense bitsets over token ids.
//!
//! Every instance records which tokens its derivation covers; conflict
//! detection (span intersection) and subsumption tests are the hottest
//! operations in preference enforcement and partial-tree maximization,
//! so they run word-wise over a compact bitset.

use metaform_core::TokenId;

/// A set of token ids, sized at construction for one interface.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TokenSet {
    words: Vec<u64>,
    len: u32,
}

impl TokenSet {
    /// Empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        TokenSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Singleton set.
    pub fn singleton(capacity: usize, id: TokenId) -> Self {
        let mut s = Self::new(capacity);
        s.insert(id);
        s
    }

    /// Adds an id.
    pub fn insert(&mut self, id: TokenId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
        }
    }

    /// Membership test.
    pub fn contains(&self, id: TokenId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of ids in the set.
    pub fn count(&self) -> usize {
        self.len as usize
    }

    /// True when no ids are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place union. The cardinality is maintained incrementally:
    /// only words that actually gain bits are popcounted, instead of
    /// re-counting the whole set (unions run once per created instance,
    /// over mostly-disjoint spans, so most words change or are zero —
    /// but the recount was O(words) even for tiny deltas).
    pub fn union_with(&mut self, other: &TokenSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let gained = b & !*a;
            if gained != 0 {
                *a |= gained;
                self.len += gained.count_ones();
            }
        }
    }

    /// Do the sets share any id?
    pub fn intersects(&self, other: &TokenSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &TokenSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Is `self ⊂ other` (subset and strictly smaller)?
    pub fn is_strict_subset(&self, other: &TokenSet) -> bool {
        self.len < other.len && self.is_subset(other)
    }

    /// Ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(TokenId((wi * 64) as u32 + b))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = TokenSet::new(100);
        assert!(s.is_empty());
        s.insert(TokenId(0));
        s.insert(TokenId(63));
        s.insert(TokenId(64));
        s.insert(TokenId(99));
        s.insert(TokenId(99)); // duplicate
        assert_eq!(s.count(), 4);
        assert!(s.contains(TokenId(63)));
        assert!(s.contains(TokenId(64)));
        assert!(!s.contains(TokenId(1)));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = TokenSet::new(130);
        let mut b = TokenSet::new(130);
        a.insert(TokenId(3));
        a.insert(TokenId(127));
        b.insert(TokenId(64));
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        assert!(a.intersects(&b));
    }

    #[test]
    fn subset_relations() {
        let mut small = TokenSet::new(80);
        let mut big = TokenSet::new(80);
        for i in [1u32, 70] {
            small.insert(TokenId(i));
            big.insert(TokenId(i));
        }
        big.insert(TokenId(5));
        assert!(small.is_subset(&big));
        assert!(small.is_strict_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(!small.is_strict_subset(&small));
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let mut s = TokenSet::new(200);
        for i in [150u32, 3, 64, 65] {
            s.insert(TokenId(i));
        }
        let ids: Vec<u32> = s.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![3, 64, 65, 150]);
    }

    #[test]
    fn union_len_tracked_incrementally() {
        // Overlapping, disjoint, and empty unions across word
        // boundaries must all keep `len` equal to a full recount.
        let mut a = TokenSet::new(300);
        let mut b = TokenSet::new(300);
        for i in [0u32, 63, 64, 130, 299] {
            a.insert(TokenId(i));
        }
        for i in [0u32, 64, 65, 131, 200] {
            b.insert(TokenId(i));
        }
        a.union_with(&b);
        assert_eq!(a.count(), a.iter().count(), "len matches recount");
        assert_eq!(a.count(), 8);
        // Idempotent: unioning again gains nothing.
        let before = a.count();
        let b2 = b.clone();
        a.union_with(&b2);
        assert_eq!(a.count(), before);
        // Union with an empty set is a no-op.
        a.union_with(&TokenSet::new(300));
        assert_eq!(a.count(), before);
        assert_eq!(a.count(), a.iter().count());
    }

    #[test]
    fn singleton() {
        let s = TokenSet::singleton(10, TokenId(7));
        assert_eq!(s.count(), 1);
        assert!(s.contains(TokenId(7)));
    }
}
