//! Revisit support: chart snapshots and token diffs.
//!
//! A crawler revisiting an interface usually finds it unchanged or
//! nearly so. [`ChartSnapshot`] retains a finished parse; a later
//! [`crate::ParseSession::parse_seeded`] diffs the fresh token stream
//! against it, carries every instance whose span survives the diff
//! into the new chart, and lets the semi-naive watermarks start above
//! zero — re-deriving only what the edit could have changed. The hard
//! invariant (enforced by the cache-parity suite) is that a seeded
//! parse's report is byte-identical to a cold parse of the same
//! tokens.
//!
//! The diff is deliberately coarse: a longest common prefix and suffix
//! of content-identical tokens (ids aside, compared by interned text
//! id). Form edits are local — a label reworded, a row inserted, a
//! widget appended — so prefix/suffix alignment captures them while
//! staying O(n) and order-preserving, which is what the carry's
//! id-renumbering argument needs.

use crate::engine::ParseResult;
use crate::instance::Chart;
use crate::stats::BudgetOutcome;
use metaform_core::Token;

/// A finished parse retained for seeding a future re-parse of a
/// similar token stream (see module docs).
#[derive(Clone, Debug)]
pub struct ChartSnapshot {
    chart: Chart,
}

impl ChartSnapshot {
    /// Captures a finished parse. Returns `None` unless the parse ran
    /// to completion: a truncated, timed-out, or cancelled chart has
    /// unexplored combinations and unenforced pairs, so the seeded
    /// watermarks' "everything below the boundary already has a
    /// permanent verdict" argument would not hold for it.
    pub fn of(result: &ParseResult) -> Option<Self> {
        (result.stats.budget == BudgetOutcome::Completed).then(|| ChartSnapshot {
            chart: result.chart.clone(),
        })
    }

    /// [`ChartSnapshot::of`], but consuming the result: the chart
    /// moves into the snapshot instead of being deep-copied — the
    /// cheap path for a caller that is done with the parse (the
    /// extractor's cache store). Hands the result back untouched when
    /// the parse did not complete, so the caller can still recycle it
    /// (the large `Err` is the point: boxing would force the very
    /// allocation the recycling path exists to avoid).
    #[allow(clippy::result_large_err)]
    pub fn take(result: ParseResult) -> Result<Self, ParseResult> {
        if result.stats.budget == BudgetOutcome::Completed {
            Ok(ChartSnapshot {
                chart: result.chart,
            })
        } else {
            Err(result)
        }
    }

    /// The tokens the snapshot's parse ran over.
    pub fn tokens(&self) -> &[Token] {
        self.chart.tokens()
    }

    pub(crate) fn chart(&self) -> &Chart {
        &self.chart
    }
}

/// A prefix/suffix alignment between an old and a new token stream:
/// the first `prefix` tokens match content-wise exactly, the last
/// `suffix` tokens match modulo a uniform `(dx, dy)` translation
/// (`prefix + suffix ≤ min(old, new)`), everything between is the
/// changed region.
///
/// The translation is what makes single-edit revisits carriable when
/// the edit changes rendered length: a reworded label or inserted row
/// shifts every later token by one constant offset, so demanding
/// geometry-identical suffixes would collapse `suffix` to zero. A
/// zero-translation diff (`dx == dy == 0`) is the exact alignment the
/// carry has always used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TokenDiff {
    /// Length of the longest common prefix (exact match).
    pub prefix: usize,
    /// Length of the longest common suffix of the remainders, matched
    /// modulo `(dx, dy)`.
    pub suffix: usize,
    /// Uniform x offset of the suffix region (new minus old).
    pub dx: i32,
    /// Uniform y offset of the suffix region (new minus old).
    pub dy: i32,
}

/// Computes the prefix/suffix diff between two charts' token streams,
/// comparing every content field (texts by interned id) but not ids.
/// The suffix is matched twice — geometry-exact and modulo the uniform
/// translation implied by the last token pair — and the longer
/// alignment wins (ties prefer exact: a zero translation carries more
/// instances, since region purity is not required).
pub(crate) fn diff_tokens(old: &Chart, new: &Chart) -> TokenDiff {
    let (old_n, new_n) = (old.tokens().len(), new.tokens().len());
    let limit = old_n.min(new_n);
    let mut prefix = 0;
    while prefix < limit && old.token_matches(prefix, new, prefix) {
        prefix += 1;
    }
    let suffix_at = |dx: i32, dy: i32| -> usize {
        let mut suffix = 0;
        while suffix < limit - prefix
            && old.token_matches_translated(old_n - 1 - suffix, new, new_n - 1 - suffix, dx, dy)
        {
            suffix += 1;
        }
        suffix
    };
    let exact = suffix_at(0, 0);
    // Candidate translation from the last token pair's positions.
    // Requires an exactly-anchored prefix, mirroring the cache's
    // affix scorer: with no anchor, a wholesale shift of this page is
    // indistinguishable from a different page that is a translated
    // subsequence of it.
    if prefix > 0 && prefix < limit {
        let (op, np) = (old.tokens()[old_n - 1].pos, new.tokens()[new_n - 1].pos);
        let (dx, dy) = (np.left - op.left, np.top - op.top);
        if (dx, dy) != (0, 0) {
            let translated = suffix_at(dx, dy);
            if translated > exact {
                return TokenDiff {
                    prefix,
                    suffix: translated,
                    dx,
                    dy,
                };
            }
        }
    }
    TokenDiff {
        prefix,
        suffix: exact,
        dx: 0,
        dy: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::BBox;

    fn chart(tokens: Vec<Token>) -> Chart {
        Chart::new(tokens, 0)
    }

    fn tok(i: u32, s: &str) -> Token {
        Token::text(i, s, BBox::new(0, i as i32 * 20, 40, i as i32 * 20 + 16))
    }

    #[test]
    fn identical_streams_are_all_prefix() {
        let a = chart(vec![tok(0, "a"), tok(1, "b")]);
        let b = chart(vec![tok(0, "a"), tok(1, "b")]);
        assert_eq!(
            diff_tokens(&a, &b),
            TokenDiff {
                prefix: 2,
                suffix: 0,
                dx: 0,
                dy: 0
            }
        );
    }

    #[test]
    fn mid_stream_edit_splits_prefix_and_suffix() {
        let a = chart(vec![tok(0, "a"), tok(1, "b"), tok(2, "c")]);
        let b = chart(vec![tok(0, "a"), tok(1, "B"), tok(2, "c")]);
        assert_eq!(
            diff_tokens(&a, &b),
            TokenDiff {
                prefix: 1,
                suffix: 1,
                dx: 0,
                dy: 0
            }
        );
    }

    #[test]
    fn shifted_suffix_matches_modulo_translation() {
        // A label edit that grows the text pushes every later token
        // down by 20px: the exact suffix is empty, the translated one
        // recovers the whole tail.
        let a = chart(vec![tok(0, "a"), tok(1, "b"), tok(2, "c"), tok(3, "d")]);
        let b = chart(vec![
            tok(0, "a"),
            {
                let mut t = tok(1, "BB");
                t.pos = BBox::new(0, 20, 60, 36); // reworded, wider
                t
            },
            {
                let mut t = tok(2, "c");
                t.pos = BBox::new(0, 60, 40, 76); // +20y vs old
                t
            },
            {
                let mut t = tok(3, "d");
                t.pos = BBox::new(0, 80, 40, 96); // +20y vs old
                t
            },
        ]);
        assert_eq!(
            diff_tokens(&a, &b),
            TokenDiff {
                prefix: 1,
                suffix: 2,
                dx: 0,
                dy: 20
            }
        );
    }

    #[test]
    fn exact_suffix_preferred_over_translation_on_tie() {
        // Unchanged stream: translation candidate is (0,0), suffix
        // stays exact.
        let a = chart(vec![tok(0, "a"), tok(1, "b")]);
        let b = chart(vec![tok(0, "a"), tok(1, "b")]);
        let d = diff_tokens(&a, &b);
        assert_eq!((d.dx, d.dy), (0, 0));
    }

    #[test]
    fn insertion_maps_prefix_and_tail() {
        let a = chart(vec![tok(0, "a"), tok(1, "c")]);
        // Same geometry for the shared tokens, an extra one between.
        let b = chart(vec![tok(0, "a"), tok(1, "x"), {
            let mut t = tok(2, "c");
            t.pos = BBox::new(0, 20, 40, 36); // keep old "c" geometry
            t
        }]);
        let d = diff_tokens(&a, &b);
        assert_eq!(d.prefix, 1);
        assert_eq!(d.suffix, 1);
    }

    #[test]
    fn prefix_and_suffix_never_overlap() {
        // Repeated identical tokens: prefix claims them all, suffix
        // must stop at the boundary.
        let a = chart(vec![tok(0, "a"), tok(0, "a")]);
        let b = chart(vec![tok(0, "a"), tok(0, "a"), tok(0, "a")]);
        let d = diff_tokens(&a, &b);
        assert!(d.prefix + d.suffix <= 2);
    }

    #[test]
    fn ids_are_ignored_geometry_is_not() {
        let a = chart(vec![tok(0, "a")]);
        let renumbered = {
            let mut t = tok(0, "a");
            t.id = metaform_core::TokenId(9); // same content, new id
            t
        };
        let b = chart(vec![renumbered]);
        assert_eq!(diff_tokens(&a, &b).prefix, 1, "ids excluded");
        let mut moved = tok(0, "a");
        moved.pos = BBox::new(5, 0, 45, 16);
        let c = chart(vec![moved]);
        assert_eq!(diff_tokens(&a, &c).prefix, 0, "geometry included");
    }
}
