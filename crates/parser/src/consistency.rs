//! Preference-consistency checking (paper §5.2/§7).
//!
//! "The preferences are not consistent if given a set of tokens as
//! input, different orders of applying the preferences result in
//! different derivation results. … The algorithm outlined above
//! assumes the consistency of preferences, and therefore generates a
//! unique result." The paper asserts its preferences are consistent in
//! practice; this module makes that claim *checkable*: run the parse
//! under different preference application orders and compare the
//! derivation results.

use crate::engine::{ParserOptions, PreferenceOrder};
use crate::merger::merge;
use crate::session::ParseSession;
use metaform_core::Token;
use metaform_grammar::{CompiledGrammar, Grammar};
use std::sync::Arc;

/// Outcome of a consistency check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// All probed orders produced the same semantic model.
    Consistent,
    /// Two orders disagreed; the differing condition lists are carried
    /// for diagnosis.
    Inconsistent {
        /// Conditions under the scheduled order.
        scheduled: Vec<String>,
        /// Conditions under the reversed order.
        reversed: Vec<String>,
    },
}

/// Parses `tokens` under the scheduled preference order and under the
/// reversed order, and compares the merged semantic models.
///
/// Compiles the grammar once and probes both orders through sessions
/// over the shared artifact. An unschedulable grammar is vacuously
/// consistent (no order parses anything).
pub fn check_preferences(grammar: &Grammar, tokens: &[Token]) -> Consistency {
    let Ok(compiled) = CompiledGrammar::new(grammar) else {
        return Consistency::Consistent;
    };
    check_preferences_compiled(&Arc::new(compiled), tokens)
}

/// [`check_preferences`] over an already-compiled grammar — the
/// compile-once path for callers probing many token sets.
pub fn check_preferences_compiled(
    compiled: &Arc<CompiledGrammar>,
    tokens: &[Token],
) -> Consistency {
    let mut reports = Vec::with_capacity(2);
    for order in [PreferenceOrder::Scheduled, PreferenceOrder::Reversed] {
        let opts = ParserOptions {
            preference_order: order,
            ..ParserOptions::default()
        };
        let mut session = ParseSession::with_options(compiled.clone(), opts);
        let result = session.parse(tokens);
        let report = merge(&result.chart, &result.trees);
        let mut conds: Vec<String> = report.conditions.iter().map(|c| c.to_string()).collect();
        conds.sort();
        reports.push(conds);
    }
    if reports[0] == reports[1] {
        Consistency::Consistent
    } else {
        Consistency::Inconsistent {
            scheduled: reports[0].clone(),
            reversed: reports[1].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{BBox, TokenKind};
    use metaform_grammar::{
        global_grammar, paper_example_grammar, ConflictCond, Constraint, Constructor,
        GrammarBuilder, WinCriteria,
    };

    fn label_box(id0: u32, label: &str, x: i32, y: i32) -> Vec<Token> {
        let w = label.len() as i32 * 7;
        vec![
            Token::text(id0, label, BBox::new(x, y + 4, x + w, y + 20)),
            Token::widget(
                id0 + 1,
                TokenKind::Textbox,
                "f",
                BBox::new(x + w + 8, y, x + w + 120, y + 20),
            ),
        ]
    }

    #[test]
    fn shipped_grammars_are_consistent_on_fixtures() {
        let mut tokens = label_box(0, "Author", 10, 10);
        tokens.extend(label_box(2, "Title", 10, 34));
        for grammar in [paper_example_grammar(), global_grammar()] {
            assert_eq!(
                check_preferences(&grammar, &tokens),
                Consistency::Consistent
            );
        }
    }

    #[test]
    fn contradictory_preferences_are_detected() {
        // Two interpretations of one text+box pair, with *order-dependent*
        // mutual Always preferences: whichever preference runs first
        // eliminates the other's instances, so the two orders disagree.
        let mut b = GrammarBuilder::new("Q");
        let text = b.t(TokenKind::Text);
        let tb = b.t(TokenKind::Textbox);
        let x = b.nt("X");
        let y = b.nt("Y");
        let q = b.nt("Q");
        let mk = |attr| Constructor::MakeCond {
            attr: Some(attr),
            ops: None,
            val: 1,
            kind: None,
        };
        b.production("X", x, vec![text, tb], Constraint::Left(0, 1), mk(0));
        b.production(
            "Y",
            y,
            vec![text, tb],
            Constraint::Left(0, 1),
            Constructor::MakeCond {
                attr: None,
                ops: None,
                val: 1,
                kind: Some(metaform_core::DomainKind::Numeric),
            },
        );
        b.production(
            "Q<-X",
            q,
            vec![x],
            Constraint::True,
            Constructor::CollectConds,
        );
        b.production(
            "Q<-Y",
            q,
            vec![y],
            Constraint::True,
            Constructor::CollectConds,
        );
        b.preference("X>Y", x, y, ConflictCond::Overlap, WinCriteria::Always);
        b.preference("Y>X", y, x, ConflictCond::Overlap, WinCriteria::Always);
        let g = b.build().expect("builds");
        let tokens = label_box(0, "Amount", 10, 10);
        match check_preferences(&g, &tokens) {
            Consistency::Inconsistent {
                scheduled,
                reversed,
            } => {
                assert_ne!(scheduled, reversed);
            }
            Consistency::Consistent => {
                panic!("mutually-destructive preferences must be inconsistent")
            }
        }
    }

    #[test]
    fn consistency_on_generated_sources() {
        // A stronger version of the paper's "in practice we never have
        // such a situation": probe a slice of the NewSource dataset.
        // One compile serves all probes.
        let compiled = metaform_grammar::global_compiled();
        for src in metaform_datasets::new_source().sources.iter().take(6) {
            let doc = metaform_html::parse(&src.html);
            let lay = metaform_layout::layout(&doc);
            let tokens = metaform_tokenizer::tokenize(&doc, &lay).tokens;
            assert_eq!(
                check_preferences_compiled(&compiled, &tokens),
                Consistency::Consistent,
                "{}",
                src.name
            );
        }
    }
}
