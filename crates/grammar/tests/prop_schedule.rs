//! Property tests: 2P schedule invariants over randomly generated
//! grammars.

use metaform_core::TokenKind;
use metaform_grammar::{
    build_schedule, ConflictCond, Constraint, Constructor, GrammarBuilder, WinCriteria,
};
use proptest::prelude::*;

/// A random layered grammar: nonterminal `i` may only use components
/// from layers below it (plus itself, recursively), which guarantees
/// d-acyclicity by construction. Preferences are arbitrary pairs.
#[derive(Debug, Clone)]
struct Spec {
    /// For each nonterminal: list of productions, each a list of
    /// component indexes (usize::MAX means the text terminal).
    prods: Vec<Vec<Vec<usize>>>,
    /// (winner, loser) preference pairs.
    prefs: Vec<(usize, usize)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..8).prop_flat_map(|n| {
        let prods = proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0usize..n + 1, 1..3), 1..3),
            n,
        );
        let prefs = proptest::collection::vec((0usize..n, 0usize..n), 0..6);
        (prods, prefs).prop_map(move |(raw, prefs)| {
            // Layer the components: production of NT i may reference
            // NT j only when j <= i (self-recursion allowed); other
            // indexes collapse to the terminal.
            let prods = raw
                .into_iter()
                .enumerate()
                .map(|(i, alts)| {
                    alts.into_iter()
                        .map(|comps| {
                            comps
                                .into_iter()
                                .map(|c| if c <= i { c } else { usize::MAX })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            Spec { prods, prefs }
        })
    })
}

fn build(spec: &Spec) -> metaform_grammar::Grammar {
    let n = spec.prods.len();
    let start_name = format!("N{}", n - 1);
    let mut b = GrammarBuilder::new(&start_name);
    let text = b.t(TokenKind::Text);
    let nts: Vec<_> = (0..n).map(|i| b.nt(&format!("N{i}"))).collect();
    for (i, alts) in spec.prods.iter().enumerate() {
        for (j, comps) in alts.iter().enumerate() {
            let components: Vec<_> = comps
                .iter()
                .map(|&c| if c == usize::MAX { text } else { nts[c] })
                .collect();
            // Guard self-recursive rules with a terminal base case so
            // the grammar stays meaningful (not required for
            // scheduling, which ignores self-loops anyway).
            b.production(
                &format!("p{i}_{j}"),
                nts[i],
                components,
                Constraint::True,
                Constructor::Group,
            );
        }
    }
    for (k, &(w, l)) in spec.prefs.iter().enumerate() {
        b.preference(
            &format!("r{k}"),
            nts[w],
            nts[l],
            ConflictCond::Overlap,
            WinCriteria::Always,
        );
    }
    b.build().expect("layered grammars are d-acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The schedule always exists for d-acyclic grammars, covers every
    /// nonterminal exactly once, and respects children-before-parents.
    #[test]
    fn schedule_exists_and_is_sound(s in spec()) {
        let g = build(&s);
        let sched = build_schedule(&g).expect("schedulable");
        // Every nonterminal exactly once.
        prop_assert_eq!(sched.order.len(), g.symbols.nonterminal_count());
        let mut sorted = sched.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sched.order.len());
        // d-edges respected: every component precedes its head.
        let pos = |sym| sched.order.iter().position(|&x| x == sym).unwrap();
        for p in &g.productions {
            for &c in &p.components {
                if !g.symbols.is_terminal(c) && c != p.head {
                    prop_assert!(pos(c) < pos(p.head),
                        "{} must precede {}", g.symbols.name(c), g.symbols.name(p.head));
                }
            }
        }
    }

    /// Kept (non-rollback, non-transformed) r-edges are respected:
    /// winner precedes loser.
    #[test]
    fn kept_r_edges_are_respected(s in spec()) {
        let g = build(&s);
        let sched = build_schedule(&g).expect("schedulable");
        let pos = |sym| sched.order.iter().position(|&x| x == sym).unwrap();
        for (i, pref) in g.preferences.iter().enumerate() {
            if pref.winner == pref.loser
                || sched.needs_rollback[i]
                || sched.transformed[i]
            {
                continue;
            }
            prop_assert!(
                pos(pref.winner) < pos(pref.loser),
                "winner {} after loser {}",
                g.symbols.name(pref.winner),
                g.symbols.name(pref.loser)
            );
        }
    }

    /// Scheduling is deterministic.
    #[test]
    fn schedule_is_deterministic(s in spec()) {
        let g = build(&s);
        let a = build_schedule(&g).unwrap();
        let b = build_schedule(&g).unwrap();
        prop_assert_eq!(a.order, b.order);
        prop_assert_eq!(a.needs_rollback, b.needs_rollback);
        prop_assert_eq!(a.transformed, b.transformed);
    }

    /// Transformed r-edges satisfy the paper's indirect guarantee: the
    /// winner precedes every parent of the loser.
    #[test]
    fn transformed_edges_guard_parents(s in spec()) {
        let g = build(&s);
        let sched = build_schedule(&g).unwrap();
        let pos = |sym| sched.order.iter().position(|&x| x == sym).unwrap();
        for (i, pref) in g.preferences.iter().enumerate() {
            if !sched.transformed[i] {
                continue;
            }
            for p in &g.productions {
                if p.head != pref.loser
                    && p.head != pref.winner
                    && p.components.contains(&pref.loser)
                {
                    prop_assert!(
                        pos(pref.winner) < pos(p.head),
                        "transformed winner {} must precede loser's parent {}",
                        g.symbols.name(pref.winner),
                        g.symbols.name(p.head)
                    );
                }
            }
        }
    }
}
