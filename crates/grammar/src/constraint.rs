//! Declarative spatial and lexical constraints for productions.
//!
//! "In two dimensional grammars, productions need to capture spatial
//! relations, which essentially are constraints to be verified on the
//! constructs" (paper §4.1). Constraints are plain data — an expression
//! tree over component indexes — so the grammar stays declarative and
//! the parser generic.

use crate::payload::Payload;
use metaform_core::{relations, trim_label, BBox, Proximity, Token};

/// A read-only view of a candidate component instance during constraint
/// evaluation and construction.
#[derive(Clone, Copy, Debug)]
pub struct View<'a> {
    /// The instance's bounding box.
    pub bbox: BBox,
    /// The instance's semantic payload.
    pub payload: &'a Payload,
    /// The underlying token for terminal instances.
    pub token: Option<&'a Token>,
}

/// Lexical predicates on a single component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pred {
    /// Text plausibly naming an attribute: short, wordy, not a pure
    /// connector, contains letters.
    AttrLike,
    /// Caption list (options) reading like operators ("exact match",
    /// "starts with", …) — used to spot operator selection lists.
    OpsLike,
    /// Text is a range connector ("to", "-", "and", "through", "between").
    RangeConnector,
    /// Text has at most this many words.
    MaxWords(u8),
    /// Select options look like operator captions.
    OptionsOpsLike,
    /// Text is written entirely in lowercase — the convention for
    /// inline unit/connector words ("miles", "of"), as opposed to
    /// capitalized field labels ("To", "City").
    LowercaseText,
    /// The component's caption list has at least this many entries —
    /// a *group* of radio buttons/checkboxes, as opposed to a lone
    /// boolean checkbox.
    MinOps(u8),
}

/// Spatial/lexical constraint tree over production components
/// (indexes refer to positions in the production's component list).
#[derive(Clone, Debug)]
pub enum Constraint {
    /// Always satisfied.
    True,
    /// `i` left-adjacent to `j` (paper's `Left`, adjacency implied).
    Left(usize, usize),
    /// `i` above-adjacent to `j`.
    Above(usize, usize),
    /// `i` below-adjacent to `j` (sugar for `Above(j, i)`).
    Below(usize, usize),
    /// `i` before `j` on a shared row, any gap up to the given pixels.
    LeftWithin(usize, usize, i32),
    /// `i` above `j`, any vertical gap up to the given pixels, with
    /// horizontally overlapping extents.
    AboveWithin(usize, usize, i32),
    /// Boxes share a row band.
    SameRow(usize, usize),
    /// Boxes share a column band.
    SameCol(usize, usize),
    /// Bottom edges aligned.
    AlignBottom(usize, usize),
    /// Top edges aligned.
    AlignTop(usize, usize),
    /// Left edges aligned.
    AlignLeft(usize, usize),
    /// Closest-edge Manhattan distance at most the given pixels.
    MaxDist(usize, usize, i32),
    /// Lexical predicate on one component.
    Is(usize, Pred),
    /// All of.
    And(Vec<Constraint>),
    /// Any of.
    Or(Vec<Constraint>),
    /// Negation.
    Not(Box<Constraint>),
}

/// Result of [`Constraint::hoist`]: the compiled enumeration-time
/// form of a production's constraint.
#[derive(Clone, Debug, Default)]
pub struct Hoisted {
    /// Per-slot unary predicates, checked once per candidate when the
    /// slot's candidate list is built.
    pub slot_preds: Vec<Vec<Pred>>,
    /// Residual conjunction terms grouped by the deepest slot index
    /// they mention: `by_depth[d]` is decidable as soon as slots
    /// `0..=d` are chosen.
    pub by_depth: Vec<DepthTerms>,
    /// A necessary vertical window for the last slot, when one of its
    /// residual terms pins it against an earlier slot — lets the
    /// enumeration band-query a sorted index instead of scanning.
    pub band: Option<LastSlotBand>,
}

/// Residual terms decidable at one enumeration depth, split by what
/// they read. Geometry-only terms run against a plain bounding-box
/// stack ([`Constraint::eval_boxes`]); only terms that reach into a
/// payload (an `Is` under `Or`/`Not`) force component views to be
/// materialized for a candidate that hasn't passed the geometry yet.
#[derive(Clone, Debug, Default)]
pub struct DepthTerms {
    /// Terms reading only component bounding boxes.
    pub boxes_only: Vec<Constraint>,
    /// Terms that also read payloads, evaluated on full views.
    pub with_payload: Vec<Constraint>,
}

/// Which edge of the anchor box a [`YBound`] offsets from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// The anchor's top edge.
    Top,
    /// The anchor's bottom edge.
    Bottom,
}

/// One end of a vertical window over candidate *top* edges, expressed
/// relative to an already-chosen anchor box. `sub_max_h` widens a
/// lower bound by the tallest candidate's height — used when the
/// underlying relation constrains the candidate's *bottom* edge, which
/// sits at most `max_h` below its top.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YBound {
    /// Anchor edge the offset applies to.
    pub edge: Edge,
    /// Pixel offset from that edge.
    pub offset: i32,
    /// Whether the tallest-candidate height is subtracted (lower
    /// bounds only).
    pub sub_max_h: bool,
}

impl YBound {
    fn value(&self, anchor: &BBox, max_h: i32) -> i32 {
        let base = match self.edge {
            Edge::Top => anchor.top,
            Edge::Bottom => anchor.bottom,
        };
        base + self.offset - if self.sub_max_h { max_h } else { 0 }
    }
}

/// A *necessary* vertical window for the last component slot of a
/// production, derived from one of its residual geometry terms: any
/// candidate whose top edge falls outside the window is guaranteed to
/// fail the full constraint, so an enumeration can restrict the last
/// slot to a band query over a top-edge-sorted index instead of
/// scanning the whole candidate list. Disjunctions contribute one
/// `(lo, hi)` alternative each; the effective window is their hull.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LastSlotBand {
    /// The earlier slot the window is anchored to.
    pub anchor: usize,
    /// Window alternatives, hulled at query time.
    pub alts: Vec<(YBound, YBound)>,
}

impl LastSlotBand {
    /// The inclusive `[lo, hi]` window on candidate top edges for a
    /// concrete anchor box, given the tallest candidate height.
    pub fn window(&self, anchor: &BBox, max_h: i32) -> (i32, i32) {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for (l, h) in &self.alts {
            lo = lo.min(l.value(anchor, max_h));
            hi = hi.max(h.value(anchor, max_h));
        }
        (lo, hi)
    }
}

/// Derives a [`LastSlotBand`] from one residual term, if the term
/// pins slot `d` vertically against a single earlier slot. Every
/// window below is a relaxation of the relation it is derived from
/// (checked against the definitions in `metaform_core::relations`):
/// a candidate outside it cannot satisfy the term, while one inside
/// still faces the full evaluation.
fn band_of(term: &Constraint, d: usize, prox: &Proximity) -> Option<LastSlotBand> {
    use Edge::{Bottom, Top};
    let tol = prox.align_tol;
    let bound = |edge, offset, sub_max_h| YBound {
        edge,
        offset,
        sub_max_h,
    };
    // `anchor above candidate, gap in [-tol, max]` pins the candidate
    // top directly; the mirrored form pins its bottom, so the lower
    // bound widens by `max_h`.
    let above_cand = |max: i32| (bound(Bottom, -tol, false), bound(Bottom, max, false));
    let cand_above = |max: i32| (bound(Top, -max, true), bound(Top, tol, false));
    // Sharing a row requires >= 1px of vertical overlap.
    let same_row = || (bound(Top, 1, true), bound(Bottom, -1, false));
    let pair = |i: usize, j: usize| -> Option<(usize, bool)> {
        // Returns (anchor, candidate_is_second) when exactly the last
        // slot and one earlier slot are involved.
        if j == d && i < d {
            Some((i, true))
        } else if i == d && j < d {
            Some((j, false))
        } else {
            None
        }
    };
    let (anchor, alt) = match term {
        Constraint::Above(i, j) => {
            let (a, fwd) = pair(*i, *j)?;
            (
                a,
                if fwd {
                    above_cand(prox.max_v_gap)
                } else {
                    cand_above(prox.max_v_gap)
                },
            )
        }
        Constraint::AboveWithin(i, j, m) => {
            let (a, fwd) = pair(*i, *j)?;
            (a, if fwd { above_cand(*m) } else { cand_above(*m) })
        }
        Constraint::Below(i, j) => {
            // `Below(i, j)` evaluates `above(j, i)`.
            let (a, fwd) = pair(*i, *j)?;
            (
                a,
                if fwd {
                    cand_above(prox.max_v_gap)
                } else {
                    above_cand(prox.max_v_gap)
                },
            )
        }
        Constraint::Left(i, j) | Constraint::LeftWithin(i, j, _) | Constraint::SameRow(i, j) => {
            (pair(*i, *j)?.0, same_row())
        }
        Constraint::AlignTop(i, j) => (
            pair(*i, *j)?.0,
            (bound(Top, -tol, false), bound(Top, tol, false)),
        ),
        Constraint::AlignBottom(i, j) => (
            pair(*i, *j)?.0,
            (bound(Bottom, -tol, true), bound(Bottom, tol, false)),
        ),
        Constraint::MaxDist(i, j, m) => (
            pair(*i, *j)?.0,
            (bound(Top, -m, true), bound(Bottom, *m, false)),
        ),
        Constraint::And(cs) => return cs.iter().find_map(|c| band_of(c, d, prox)),
        Constraint::Or(cs) => {
            // A disjunction is necessary only as the union of its
            // branches; every branch must derive a window on the same
            // anchor for the hull to stay a necessary condition.
            let mut bands = cs.iter().map(|c| band_of(c, d, prox));
            let mut merged = bands.next()??;
            for b in bands {
                let b = b?;
                if b.anchor != merged.anchor {
                    return None;
                }
                merged.alts.extend(b.alts);
            }
            return Some(merged);
        }
        _ => return None,
    };
    Some(LastSlotBand {
        anchor,
        alts: vec![alt],
    })
}

impl Constraint {
    /// Conjunction helper.
    pub fn all(cs: impl IntoIterator<Item = Constraint>) -> Constraint {
        Constraint::And(cs.into_iter().collect())
    }

    /// Splits this constraint into per-slot unary predicates and
    /// residual combination terms grouped by evaluation depth, such
    /// that `self.eval(views)` equals "every hoisted predicate holds
    /// on its slot's view" AND "every residual term holds on the
    /// combination".
    ///
    /// The hoisted predicates are the `Is` terms of the top-level
    /// conjunction: they depend on a single component, so an
    /// enumeration pass can check them once per *candidate* and filter
    /// the candidate lists, instead of re-evaluating them inside every
    /// cell of the cartesian product. `Is` terms under `Or`/`Not` are
    /// not hoistable (their verdict alone doesn't veto a candidate)
    /// and stay residual.
    ///
    /// Each remaining top-level conjunct lands in
    /// [`Hoisted::by_depth`] at the deepest component index it
    /// mentions — the earliest point in a left-to-right enumeration
    /// where its verdict is decidable. Checking it there prunes the
    /// whole subtree of deeper slots: for a ternary production whose
    /// first two slots must share a row, the third slot's candidate
    /// list is never even scanned for off-row pairs.
    pub fn hoist(&self, arity: usize, prox: &Proximity) -> Hoisted {
        fn walk(c: &Constraint, per_slot: &mut [Vec<Pred>], residual: &mut Vec<Constraint>) {
            match c {
                Constraint::True => {}
                Constraint::Is(i, p) if *i < per_slot.len() => per_slot[*i].push(*p),
                Constraint::And(cs) => {
                    for c in cs {
                        walk(c, per_slot, residual);
                    }
                }
                other => residual.push(other.clone()),
            }
        }
        let mut slot_preds = vec![Vec::new(); arity];
        let mut residual = Vec::new();
        walk(self, &mut slot_preds, &mut residual);
        let mut by_depth = vec![DepthTerms::default(); arity];
        for term in residual {
            let d = term.max_slot().min(arity.saturating_sub(1));
            if term.uses_payload() {
                by_depth[d].with_payload.push(term);
            } else {
                by_depth[d].boxes_only.push(term);
            }
        }
        let band = (arity >= 2)
            .then(|| {
                by_depth[arity - 1]
                    .boxes_only
                    .iter()
                    .find_map(|t| band_of(t, arity - 1, prox))
            })
            .flatten();
        Hoisted {
            slot_preds,
            by_depth,
            band,
        }
    }

    /// Whether evaluating this constraint reads a component payload —
    /// i.e. an `Is` appears anywhere in the tree. Everything else is
    /// pure bounding-box geometry.
    fn uses_payload(&self) -> bool {
        match self {
            Constraint::Is(..) => true,
            Constraint::And(cs) | Constraint::Or(cs) => cs.iter().any(Constraint::uses_payload),
            Constraint::Not(c) => c.uses_payload(),
            _ => false,
        }
    }

    /// [`Constraint::eval`] over bare bounding boxes, for terms with
    /// no payload reads ([`DepthTerms::boxes_only`]). Panics on `Is`:
    /// the hoist routes payload-reading terms to the view-based
    /// evaluator.
    pub fn eval_boxes(&self, boxes: &[BBox], prox: &Proximity) -> bool {
        match self {
            Constraint::True => true,
            Constraint::Left(i, j) => relations::left(&boxes[*i], &boxes[*j], prox),
            Constraint::Above(i, j) => relations::above(&boxes[*i], &boxes[*j], prox),
            Constraint::Below(i, j) => relations::above(&boxes[*j], &boxes[*i], prox),
            Constraint::LeftWithin(i, j, max) => {
                let (a, b) = (&boxes[*i], &boxes[*j]);
                let gap = a.h_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && relations::same_row(a, b, prox)
            }
            Constraint::AboveWithin(i, j, max) => {
                let (a, b) = (&boxes[*i], &boxes[*j]);
                let gap = a.v_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && a.h_overlap(b) > 0
            }
            Constraint::SameRow(i, j) => relations::same_row(&boxes[*i], &boxes[*j], prox),
            Constraint::SameCol(i, j) => relations::same_col(&boxes[*i], &boxes[*j], prox),
            Constraint::AlignBottom(i, j) => relations::align_bottom(&boxes[*i], &boxes[*j], prox),
            Constraint::AlignTop(i, j) => relations::align_top(&boxes[*i], &boxes[*j], prox),
            Constraint::AlignLeft(i, j) => relations::align_left(&boxes[*i], &boxes[*j], prox),
            Constraint::MaxDist(i, j, max) => boxes[*i].distance(&boxes[*j]) <= *max,
            Constraint::Is(..) => unreachable!("payload term routed to the box evaluator"),
            Constraint::And(cs) => cs.iter().all(|c| c.eval_boxes(boxes, prox)),
            Constraint::Or(cs) => cs.iter().any(|c| c.eval_boxes(boxes, prox)),
            Constraint::Not(c) => !c.eval_boxes(boxes, prox),
        }
    }

    /// The deepest component index this constraint mentions — the
    /// slot at which its verdict becomes decidable during a
    /// left-to-right enumeration. `True` mentions nothing and reports
    /// slot 0 (decidable immediately).
    pub(crate) fn max_slot(&self) -> usize {
        match self {
            Constraint::True => 0,
            Constraint::Left(i, j)
            | Constraint::Above(i, j)
            | Constraint::Below(i, j)
            | Constraint::LeftWithin(i, j, _)
            | Constraint::AboveWithin(i, j, _)
            | Constraint::SameRow(i, j)
            | Constraint::SameCol(i, j)
            | Constraint::AlignBottom(i, j)
            | Constraint::AlignTop(i, j)
            | Constraint::AlignLeft(i, j)
            | Constraint::MaxDist(i, j, _) => (*i).max(*j),
            Constraint::Is(i, _) => *i,
            Constraint::And(cs) | Constraint::Or(cs) => {
                cs.iter().map(Constraint::max_slot).max().unwrap_or(0)
            }
            Constraint::Not(c) => c.max_slot(),
        }
    }

    /// Evaluates against candidate component views.
    pub fn eval(&self, views: &[View<'_>], prox: &Proximity) -> bool {
        match self {
            Constraint::True => true,
            Constraint::Left(i, j) => relations::left(&views[*i].bbox, &views[*j].bbox, prox),
            Constraint::Above(i, j) => relations::above(&views[*i].bbox, &views[*j].bbox, prox),
            Constraint::Below(i, j) => relations::above(&views[*j].bbox, &views[*i].bbox, prox),
            Constraint::LeftWithin(i, j, max) => {
                let (a, b) = (&views[*i].bbox, &views[*j].bbox);
                let gap = a.h_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && relations::same_row(a, b, prox)
            }
            Constraint::AboveWithin(i, j, max) => {
                let (a, b) = (&views[*i].bbox, &views[*j].bbox);
                let gap = a.v_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && a.h_overlap(b) > 0
            }
            Constraint::SameRow(i, j) => {
                relations::same_row(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::SameCol(i, j) => {
                relations::same_col(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignBottom(i, j) => {
                relations::align_bottom(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignTop(i, j) => {
                relations::align_top(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignLeft(i, j) => {
                relations::align_left(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::MaxDist(i, j, max) => views[*i].bbox.distance(&views[*j].bbox) <= *max,
            Constraint::Is(i, pred) => eval_pred(*pred, &views[*i]),
            Constraint::And(cs) => cs.iter().all(|c| c.eval(views, prox)),
            Constraint::Or(cs) => cs.iter().any(|c| c.eval(views, prox)),
            Constraint::Not(c) => !c.eval(views, prox),
        }
    }
}

/// Operator-caption keywords seen across sources.
const OP_WORDS: &[&str] = &[
    "exact",
    "start",
    "starts",
    "begin",
    "begins",
    "contain",
    "contains",
    "keyword",
    "keywords",
    "phrase",
    "match",
    "matches",
    "at least",
    "at most",
    "less than",
    "greater than",
    "is exactly",
    "all of",
    "any of",
    "whole word",
    "first name",
    "last name",
    "initials",
];

/// Case-insensitive ASCII substring search — the op vocabulary is all
/// ASCII, so this matches `s.to_lowercase().contains(w)` without the
/// allocation (predicates run per candidate in the refresh hot path).
fn contains_ignore_ascii_case(hay: &str, needle: &str) -> bool {
    let (h, n) = (hay.as_bytes(), needle.as_bytes());
    h.len() >= n.len() && h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

fn looks_op_like(s: &str) -> bool {
    OP_WORDS.iter().any(|w| contains_ignore_ascii_case(s, w))
}

pub(crate) fn is_connector(s: &str) -> bool {
    let t = s.trim().trim_end_matches(':');
    // Case matters: an inline range connector is written lowercase
    // ("$[ ] to $[ ]"), whereas "To" / "TO" is a field label (city
    // pairs on airfare forms). Dashes are caseless.
    matches!(t, "-" | "–" | "—")
        || matches!(t, "to" | "and" | "through" | "thru" | "between" | "up to")
}

impl Pred {
    /// Evaluates the predicate against one component view — the
    /// hoisted per-candidate form of `Constraint::Is`.
    pub fn eval(self, view: &View<'_>) -> bool {
        eval_pred(self, view)
    }
}

fn eval_pred(pred: Pred, view: &View<'_>) -> bool {
    match pred {
        Pred::AttrLike => {
            let Some(text) = view.payload.text() else {
                return false;
            };
            // Allocation-free equivalent of checking `normalize_label(text)`:
            // lowercasing never changes emptiness, word boundaries, or
            // alphabetic-ness, so those run on the trimmed slice; the
            // length bound counts the lowercased byte length incrementally
            // (lowercase can expand some characters) and bails early.
            let t = trim_label(text);
            if t.is_empty() {
                return false;
            }
            let mut lower_len = 0usize;
            for c in t.chars() {
                lower_len += c.to_lowercase().map(char::len_utf8).sum::<usize>();
                if lower_len > 48 {
                    return false;
                }
            }
            t.split_whitespace().count() <= 6
                && t.chars().any(|c| c.is_alphabetic())
                && !is_connector(text)
        }
        Pred::OpsLike => view
            .payload
            .ops()
            .is_some_and(|ops| !ops.is_empty() && ops.iter().all(|o| looks_op_like(o))),
        Pred::RangeConnector => view.payload.text().is_some_and(is_connector),
        Pred::MaxWords(n) => view
            .payload
            .text()
            .is_some_and(|t| t.split_whitespace().count() <= n as usize),
        Pred::OptionsOpsLike => view
            .token
            .is_some_and(|t| !t.options.is_empty() && t.options.iter().all(|o| looks_op_like(o))),
        Pred::LowercaseText => view
            .payload
            .text()
            .is_some_and(|t| !t.is_empty() && !t.chars().any(|c| c.is_uppercase())),
        Pred::MinOps(n) => view
            .payload
            .ops()
            .is_some_and(|ops| ops.len() >= n as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::DomainSpec;

    fn view_at<'a>(payloads: &'a [Payload], boxes: &[BBox]) -> Vec<View<'a>> {
        payloads
            .iter()
            .zip(boxes)
            .map(|(p, b)| View {
                bbox: *b,
                payload: p,
                token: None,
            })
            .collect()
    }

    #[test]
    fn spatial_constraints_delegate_to_relations() {
        let payloads = vec![Payload::None, Payload::None];
        let boxes = vec![BBox::new(0, 0, 40, 16), BBox::new(48, 0, 120, 16)];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(Constraint::Left(0, 1).eval(&views, &p));
        assert!(!Constraint::Left(1, 0).eval(&views, &p));
        assert!(Constraint::SameRow(0, 1).eval(&views, &p));
        assert!(Constraint::AlignTop(0, 1).eval(&views, &p));
        assert!(Constraint::AlignBottom(0, 1).eval(&views, &p));
        assert!(Constraint::MaxDist(0, 1, 10).eval(&views, &p));
        assert!(!Constraint::MaxDist(0, 1, 5).eval(&views, &p));
    }

    #[test]
    fn loose_variants_allow_wider_gaps() {
        let payloads = vec![Payload::None, Payload::None];
        let boxes = vec![BBox::new(0, 0, 40, 16), BBox::new(240, 0, 300, 16)];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(
            !Constraint::Left(0, 1).eval(&views, &p),
            "200px gap too far"
        );
        assert!(Constraint::LeftWithin(0, 1, 300).eval(&views, &p));
        assert!(
            !Constraint::LeftWithin(1, 0, 300).eval(&views, &p),
            "ordered"
        );

        let below = vec![BBox::new(0, 0, 40, 16), BBox::new(0, 80, 40, 96)];
        let views = view_at(&payloads, &below);
        assert!(!Constraint::Above(0, 1).eval(&views, &p));
        assert!(Constraint::AboveWithin(0, 1, 100).eval(&views, &p));
    }

    #[test]
    fn boolean_combinators() {
        let payloads = vec![Payload::None];
        let boxes = vec![BBox::ZERO];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(Constraint::True.eval(&views, &p));
        assert!(!Constraint::Not(Box::new(Constraint::True)).eval(&views, &p));
        assert!(Constraint::all([Constraint::True, Constraint::True]).eval(&views, &p));
        assert!(Constraint::Or(vec![
            Constraint::Not(Box::new(Constraint::True)),
            Constraint::True
        ])
        .eval(&views, &p));
    }

    #[test]
    fn attr_like_predicate() {
        let p = Proximity::default();
        let good = [Payload::Text("Author:".into())];
        let views = view_at(&good, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::AttrLike).eval(&views, &p));

        for bad in [
            Payload::Text("".into()),
            Payload::Text("to".into()),
            Payload::Text("-".into()),
            Payload::Text("1234".into()),
            Payload::Text(
                "a very long explanatory sentence that cannot possibly be a label".into(),
            ),
            Payload::None,
        ] {
            let arr = [bad];
            let views = view_at(&arr, &[BBox::ZERO]);
            assert!(
                !Constraint::Is(0, Pred::AttrLike).eval(&views, &p),
                "{:?}",
                arr[0]
            );
        }
    }

    #[test]
    fn ops_like_predicate() {
        let p = Proximity::default();
        let ops = [Payload::Ops(vec![
            "exact name".into(),
            "start of last name".into(),
        ])];
        let views = view_at(&ops, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::OpsLike).eval(&views, &p));

        let not_ops = [Payload::Ops(vec!["Round trip".into(), "One way".into()])];
        let views = view_at(&not_ops, &[BBox::ZERO]);
        assert!(!Constraint::Is(0, Pred::OpsLike).eval(&views, &p));
    }

    #[test]
    fn connector_predicate() {
        let p = Proximity::default();
        for (text, expect) in [
            ("to", true),
            ("-", true),
            ("and", true),
            ("miles", false),
            ("To", false), // capitalized: a label, not a connector
            ("to:", true),
        ] {
            let arr = [Payload::Text(text.into())];
            let views = view_at(&arr, &[BBox::ZERO]);
            assert_eq!(
                Constraint::Is(0, Pred::RangeConnector).eval(&views, &p),
                expect,
                "{text}"
            );
        }
    }

    #[test]
    fn options_ops_like_reads_token() {
        let p = Proximity::default();
        let tok = Token::widget(0, metaform_core::TokenKind::SelectionList, "op", BBox::ZERO)
            .with_options(vec!["contains".into(), "exact phrase".into()]);
        let payload = Payload::Val(DomainSpec::text());
        let views = [View {
            bbox: BBox::ZERO,
            payload: &payload,
            token: Some(&tok),
        }];
        assert!(Constraint::Is(0, Pred::OptionsOpsLike).eval(&views, &p));
        assert!(
            !Constraint::Is(0, Pred::OpsLike).eval(&views, &p),
            "payload has no ops"
        );
    }

    #[test]
    fn max_words() {
        let p = Proximity::default();
        let arr = [Payload::Text("within miles of".into())];
        let views = view_at(&arr, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::MaxWords(3)).eval(&views, &p));
        assert!(!Constraint::Is(0, Pred::MaxWords(2)).eval(&views, &p));
    }
}
