//! Declarative spatial and lexical constraints for productions.
//!
//! "In two dimensional grammars, productions need to capture spatial
//! relations, which essentially are constraints to be verified on the
//! constructs" (paper §4.1). Constraints are plain data — an expression
//! tree over component indexes — so the grammar stays declarative and
//! the parser generic.

use crate::payload::Payload;
use metaform_core::{normalize_label, relations, BBox, Proximity, Token};

/// A read-only view of a candidate component instance during constraint
/// evaluation and construction.
#[derive(Clone, Copy, Debug)]
pub struct View<'a> {
    /// The instance's bounding box.
    pub bbox: BBox,
    /// The instance's semantic payload.
    pub payload: &'a Payload,
    /// The underlying token for terminal instances.
    pub token: Option<&'a Token>,
}

/// Lexical predicates on a single component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pred {
    /// Text plausibly naming an attribute: short, wordy, not a pure
    /// connector, contains letters.
    AttrLike,
    /// Caption list (options) reading like operators ("exact match",
    /// "starts with", …) — used to spot operator selection lists.
    OpsLike,
    /// Text is a range connector ("to", "-", "and", "through", "between").
    RangeConnector,
    /// Text has at most this many words.
    MaxWords(u8),
    /// Select options look like operator captions.
    OptionsOpsLike,
    /// Text is written entirely in lowercase — the convention for
    /// inline unit/connector words ("miles", "of"), as opposed to
    /// capitalized field labels ("To", "City").
    LowercaseText,
    /// The component's caption list has at least this many entries —
    /// a *group* of radio buttons/checkboxes, as opposed to a lone
    /// boolean checkbox.
    MinOps(u8),
}

/// Spatial/lexical constraint tree over production components
/// (indexes refer to positions in the production's component list).
#[derive(Clone, Debug)]
pub enum Constraint {
    /// Always satisfied.
    True,
    /// `i` left-adjacent to `j` (paper's `Left`, adjacency implied).
    Left(usize, usize),
    /// `i` above-adjacent to `j`.
    Above(usize, usize),
    /// `i` below-adjacent to `j` (sugar for `Above(j, i)`).
    Below(usize, usize),
    /// `i` before `j` on a shared row, any gap up to the given pixels.
    LeftWithin(usize, usize, i32),
    /// `i` above `j`, any vertical gap up to the given pixels, with
    /// horizontally overlapping extents.
    AboveWithin(usize, usize, i32),
    /// Boxes share a row band.
    SameRow(usize, usize),
    /// Boxes share a column band.
    SameCol(usize, usize),
    /// Bottom edges aligned.
    AlignBottom(usize, usize),
    /// Top edges aligned.
    AlignTop(usize, usize),
    /// Left edges aligned.
    AlignLeft(usize, usize),
    /// Closest-edge Manhattan distance at most the given pixels.
    MaxDist(usize, usize, i32),
    /// Lexical predicate on one component.
    Is(usize, Pred),
    /// All of.
    And(Vec<Constraint>),
    /// Any of.
    Or(Vec<Constraint>),
    /// Negation.
    Not(Box<Constraint>),
}

impl Constraint {
    /// Conjunction helper.
    pub fn all(cs: impl IntoIterator<Item = Constraint>) -> Constraint {
        Constraint::And(cs.into_iter().collect())
    }

    /// Evaluates against candidate component views.
    pub fn eval(&self, views: &[View<'_>], prox: &Proximity) -> bool {
        match self {
            Constraint::True => true,
            Constraint::Left(i, j) => relations::left(&views[*i].bbox, &views[*j].bbox, prox),
            Constraint::Above(i, j) => relations::above(&views[*i].bbox, &views[*j].bbox, prox),
            Constraint::Below(i, j) => relations::above(&views[*j].bbox, &views[*i].bbox, prox),
            Constraint::LeftWithin(i, j, max) => {
                let (a, b) = (&views[*i].bbox, &views[*j].bbox);
                let gap = a.h_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && relations::same_row(a, b, prox)
            }
            Constraint::AboveWithin(i, j, max) => {
                let (a, b) = (&views[*i].bbox, &views[*j].bbox);
                let gap = a.v_gap_to(b);
                (-prox.align_tol..=*max).contains(&gap) && a.h_overlap(b) > 0
            }
            Constraint::SameRow(i, j) => {
                relations::same_row(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::SameCol(i, j) => {
                relations::same_col(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignBottom(i, j) => {
                relations::align_bottom(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignTop(i, j) => {
                relations::align_top(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::AlignLeft(i, j) => {
                relations::align_left(&views[*i].bbox, &views[*j].bbox, prox)
            }
            Constraint::MaxDist(i, j, max) => views[*i].bbox.distance(&views[*j].bbox) <= *max,
            Constraint::Is(i, pred) => eval_pred(*pred, &views[*i]),
            Constraint::And(cs) => cs.iter().all(|c| c.eval(views, prox)),
            Constraint::Or(cs) => cs.iter().any(|c| c.eval(views, prox)),
            Constraint::Not(c) => !c.eval(views, prox),
        }
    }
}

/// Operator-caption keywords seen across sources.
const OP_WORDS: &[&str] = &[
    "exact",
    "start",
    "starts",
    "begin",
    "begins",
    "contain",
    "contains",
    "keyword",
    "keywords",
    "phrase",
    "match",
    "matches",
    "at least",
    "at most",
    "less than",
    "greater than",
    "is exactly",
    "all of",
    "any of",
    "whole word",
    "first name",
    "last name",
    "initials",
];

fn looks_op_like(s: &str) -> bool {
    let t = s.to_lowercase();
    OP_WORDS.iter().any(|w| t.contains(w))
}

fn is_connector(s: &str) -> bool {
    let t = s.trim().trim_end_matches(':');
    // Case matters: an inline range connector is written lowercase
    // ("$[ ] to $[ ]"), whereas "To" / "TO" is a field label (city
    // pairs on airfare forms). Dashes are caseless.
    matches!(t, "-" | "–" | "—")
        || matches!(t, "to" | "and" | "through" | "thru" | "between" | "up to")
}

fn eval_pred(pred: Pred, view: &View<'_>) -> bool {
    match pred {
        Pred::AttrLike => {
            let Some(text) = view.payload.text() else {
                return false;
            };
            let norm = normalize_label(text);
            !norm.is_empty()
                && norm.len() <= 48
                && norm.split_whitespace().count() <= 6
                && norm.chars().any(|c| c.is_alphabetic())
                && !is_connector(text)
        }
        Pred::OpsLike => view
            .payload
            .ops()
            .is_some_and(|ops| !ops.is_empty() && ops.iter().all(|o| looks_op_like(o))),
        Pred::RangeConnector => view.payload.text().is_some_and(is_connector),
        Pred::MaxWords(n) => view
            .payload
            .text()
            .is_some_and(|t| t.split_whitespace().count() <= n as usize),
        Pred::OptionsOpsLike => view
            .token
            .is_some_and(|t| !t.options.is_empty() && t.options.iter().all(|o| looks_op_like(o))),
        Pred::LowercaseText => view
            .payload
            .text()
            .is_some_and(|t| !t.is_empty() && !t.chars().any(|c| c.is_uppercase())),
        Pred::MinOps(n) => view
            .payload
            .ops()
            .is_some_and(|ops| ops.len() >= n as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::DomainSpec;

    fn view_at<'a>(payloads: &'a [Payload], boxes: &[BBox]) -> Vec<View<'a>> {
        payloads
            .iter()
            .zip(boxes)
            .map(|(p, b)| View {
                bbox: *b,
                payload: p,
                token: None,
            })
            .collect()
    }

    #[test]
    fn spatial_constraints_delegate_to_relations() {
        let payloads = vec![Payload::None, Payload::None];
        let boxes = vec![BBox::new(0, 0, 40, 16), BBox::new(48, 0, 120, 16)];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(Constraint::Left(0, 1).eval(&views, &p));
        assert!(!Constraint::Left(1, 0).eval(&views, &p));
        assert!(Constraint::SameRow(0, 1).eval(&views, &p));
        assert!(Constraint::AlignTop(0, 1).eval(&views, &p));
        assert!(Constraint::AlignBottom(0, 1).eval(&views, &p));
        assert!(Constraint::MaxDist(0, 1, 10).eval(&views, &p));
        assert!(!Constraint::MaxDist(0, 1, 5).eval(&views, &p));
    }

    #[test]
    fn loose_variants_allow_wider_gaps() {
        let payloads = vec![Payload::None, Payload::None];
        let boxes = vec![BBox::new(0, 0, 40, 16), BBox::new(240, 0, 300, 16)];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(
            !Constraint::Left(0, 1).eval(&views, &p),
            "200px gap too far"
        );
        assert!(Constraint::LeftWithin(0, 1, 300).eval(&views, &p));
        assert!(
            !Constraint::LeftWithin(1, 0, 300).eval(&views, &p),
            "ordered"
        );

        let below = vec![BBox::new(0, 0, 40, 16), BBox::new(0, 80, 40, 96)];
        let views = view_at(&payloads, &below);
        assert!(!Constraint::Above(0, 1).eval(&views, &p));
        assert!(Constraint::AboveWithin(0, 1, 100).eval(&views, &p));
    }

    #[test]
    fn boolean_combinators() {
        let payloads = vec![Payload::None];
        let boxes = vec![BBox::ZERO];
        let views = view_at(&payloads, &boxes);
        let p = Proximity::default();
        assert!(Constraint::True.eval(&views, &p));
        assert!(!Constraint::Not(Box::new(Constraint::True)).eval(&views, &p));
        assert!(Constraint::all([Constraint::True, Constraint::True]).eval(&views, &p));
        assert!(Constraint::Or(vec![
            Constraint::Not(Box::new(Constraint::True)),
            Constraint::True
        ])
        .eval(&views, &p));
    }

    #[test]
    fn attr_like_predicate() {
        let p = Proximity::default();
        let good = [Payload::Text("Author:".into())];
        let views = view_at(&good, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::AttrLike).eval(&views, &p));

        for bad in [
            Payload::Text("".into()),
            Payload::Text("to".into()),
            Payload::Text("-".into()),
            Payload::Text("1234".into()),
            Payload::Text(
                "a very long explanatory sentence that cannot possibly be a label".into(),
            ),
            Payload::None,
        ] {
            let arr = [bad];
            let views = view_at(&arr, &[BBox::ZERO]);
            assert!(
                !Constraint::Is(0, Pred::AttrLike).eval(&views, &p),
                "{:?}",
                arr[0]
            );
        }
    }

    #[test]
    fn ops_like_predicate() {
        let p = Proximity::default();
        let ops = [Payload::Ops(vec![
            "exact name".into(),
            "start of last name".into(),
        ])];
        let views = view_at(&ops, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::OpsLike).eval(&views, &p));

        let not_ops = [Payload::Ops(vec!["Round trip".into(), "One way".into()])];
        let views = view_at(&not_ops, &[BBox::ZERO]);
        assert!(!Constraint::Is(0, Pred::OpsLike).eval(&views, &p));
    }

    #[test]
    fn connector_predicate() {
        let p = Proximity::default();
        for (text, expect) in [
            ("to", true),
            ("-", true),
            ("and", true),
            ("miles", false),
            ("To", false), // capitalized: a label, not a connector
            ("to:", true),
        ] {
            let arr = [Payload::Text(text.into())];
            let views = view_at(&arr, &[BBox::ZERO]);
            assert_eq!(
                Constraint::Is(0, Pred::RangeConnector).eval(&views, &p),
                expect,
                "{text}"
            );
        }
    }

    #[test]
    fn options_ops_like_reads_token() {
        let p = Proximity::default();
        let tok = Token::widget(0, metaform_core::TokenKind::SelectionList, "op", BBox::ZERO)
            .with_options(vec!["contains".into(), "exact phrase".into()]);
        let payload = Payload::Val(DomainSpec::text());
        let views = [View {
            bbox: BBox::ZERO,
            payload: &payload,
            token: Some(&tok),
        }];
        assert!(Constraint::Is(0, Pred::OptionsOpsLike).eval(&views, &p));
        assert!(
            !Constraint::Is(0, Pred::OpsLike).eval(&views, &p),
            "payload has no ops"
        );
    }

    #[test]
    fn max_words() {
        let p = Proximity::default();
        let arr = [Payload::Text("within miles of".into())];
        let views = view_at(&arr, &[BBox::ZERO]);
        assert!(Constraint::Is(0, Pred::MaxWords(3)).eval(&views, &p));
        assert!(!Constraint::Is(0, Pred::MaxWords(2)).eval(&views, &p));
    }
}
