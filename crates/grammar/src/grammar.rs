//! The 2P grammar: ⟨Σ, N, s, Pd, Pf⟩ (paper Definition 1) plus a
//! builder.

use crate::constraint::Constraint;
use crate::constructor::Constructor;
use crate::preference::{ConflictCond, PrefId, Preference, WinCriteria};
use crate::production::{ProdId, Production};
use crate::symbol::{SymbolId, SymbolTable};
use metaform_core::{Proximity, TokenKind};
use std::fmt;

/// Errors raised while assembling or validating a grammar.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GrammarError {
    /// A production references a head that is a terminal.
    TerminalHead(String),
    /// A production has no components.
    EmptyProduction(String),
    /// The d-edges (head → component) contain a cycle through distinct
    /// nonterminals, so symbol-by-symbol instantiation cannot be
    /// scheduled (self-recursion is allowed and handled by the
    /// per-symbol fix-point).
    CyclicProductions(String),
    /// The start symbol has no productions.
    UselessStart(String),
    /// A production or preference names a symbol id outside the
    /// grammar's symbol table — possible only for grammars assembled
    /// by hand or machine (induction), never by the builder.
    UnknownSymbol(String),
    /// A production's constraint or constructor dereferences a
    /// component slot at or beyond the production's arity.
    BadSlotIndex(String),
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::TerminalHead(n) => write!(f, "terminal symbol {n} used as head"),
            GrammarError::EmptyProduction(n) => write!(f, "production {n} has no components"),
            GrammarError::CyclicProductions(n) => {
                write!(f, "cyclic mutual recursion through symbol {n}")
            }
            GrammarError::UselessStart(n) => write!(f, "start symbol {n} has no productions"),
            GrammarError::UnknownSymbol(n) => {
                write!(f, "rule {n} names a symbol outside the symbol table")
            }
            GrammarError::BadSlotIndex(n) => {
                write!(
                    f,
                    "production {n} dereferences a component slot beyond its arity"
                )
            }
        }
    }
}

impl std::error::Error for GrammarError {}

/// A complete 2P grammar.
#[derive(Clone, Debug)]
pub struct Grammar {
    /// Σ ∪ N.
    pub symbols: SymbolTable,
    /// s — the start symbol.
    pub start: SymbolId,
    /// Pd — production rules.
    pub productions: Vec<Production>,
    /// Pf — preference rules.
    pub preferences: Vec<Preference>,
    /// Adjacency thresholds the constraints evaluate under.
    pub proximity: Proximity,
    /// Per-symbol production index (ids of productions with that head).
    heads: Vec<Vec<ProdId>>,
}

impl Grammar {
    /// Productions whose head is `symbol`.
    pub fn productions_of(&self, symbol: SymbolId) -> &[ProdId] {
        self.heads
            .get(symbol.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Borrow a production.
    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.index()]
    }

    /// Borrow a preference.
    pub fn preference(&self, id: PrefId) -> &Preference {
        &self.preferences[id.index()]
    }

    /// All preference ids.
    pub fn preference_ids(&self) -> impl Iterator<Item = PrefId> {
        (0..self.preferences.len() as u32).map(PrefId)
    }

    /// Re-runs every structural validity check and rebuilds the
    /// per-head production index. This is the integrity gate of the
    /// grammar lifecycle: [`GrammarBuilder::build`] runs it once for
    /// hand-assembled grammars, and [`Grammar::compile`] runs it
    /// again so grammars whose `productions`/`preferences` were
    /// extended after building — the induction loop's hot-add path,
    /// or a deserializer — are fully re-validated before any parse
    /// touches them. After it succeeds, every symbol id in every
    /// production and preference is in-bounds and every
    /// constraint/constructor slot index is below its production's
    /// arity, so the parse engine can index without checks.
    pub fn validate_and_reindex(&mut self) -> Result<(), GrammarError> {
        let n = self.symbols.len();
        let mut heads: Vec<Vec<ProdId>> = vec![Vec::new(); n];
        for (i, p) in self.productions.iter().enumerate() {
            if p.head.index() >= n || p.components.iter().any(|c| c.index() >= n) {
                return Err(GrammarError::UnknownSymbol(p.name.clone()));
            }
            if self.symbols.is_terminal(p.head) {
                return Err(GrammarError::TerminalHead(p.name.clone()));
            }
            if p.components.is_empty() {
                return Err(GrammarError::EmptyProduction(p.name.clone()));
            }
            let arity = p.arity();
            if p.constraint.max_slot() >= arity
                || p.constructor.max_slot().is_some_and(|s| s >= arity)
            {
                return Err(GrammarError::BadSlotIndex(p.name.clone()));
            }
            heads[p.head.index()].push(ProdId(i as u32));
        }
        for pref in &self.preferences {
            if pref.winner.index() >= n || pref.loser.index() >= n {
                return Err(GrammarError::UnknownSymbol(pref.name.clone()));
            }
        }
        if self.start.index() >= n || heads[self.start.index()].is_empty() {
            return Err(GrammarError::UselessStart(
                self.symbols.name(self.start).to_string(),
            ));
        }
        self.heads = heads;
        Ok(())
    }

    /// This grammar plus extra productions and preferences, by value —
    /// the induction loop's hot-add entry. Infallible by design: the
    /// additions are *recorded* here and *validated* by
    /// [`Grammar::compile`], which stays the only fallible step. The
    /// head index is refreshed opportunistically when the extended
    /// grammar is already valid; an invalid addition simply leaves the
    /// index stale until compile rejects the grammar.
    pub fn with_additions(
        mut self,
        productions: Vec<Production>,
        preferences: Vec<Preference>,
    ) -> Grammar {
        self.productions.extend(productions);
        self.preferences.extend(preferences);
        let _ = self.validate_and_reindex();
        self
    }

    /// Summary line for reports: counts of terminals, nonterminals,
    /// productions, preferences.
    pub fn stats(&self) -> String {
        format!(
            "{} terminals, {} nonterminals, {} productions, {} preferences",
            self.symbols.len() - self.symbols.nonterminal_count(),
            self.symbols.nonterminal_count(),
            self.productions.len(),
            self.preferences.len()
        )
    }
}

/// Incremental grammar builder.
///
/// ```
/// use metaform_core::TokenKind;
/// use metaform_grammar::{Constraint, Constructor, GrammarBuilder, Pred};
///
/// let mut b = GrammarBuilder::new("QI");
/// let text = b.t(TokenKind::Text);
/// let attr = b.nt("Attr");
/// let qi = b.nt("QI");
/// b.production("Attr", attr, vec![text],
///              Constraint::Is(0, Pred::AttrLike), Constructor::MakeAttr(0));
/// b.production("QI", qi, vec![attr], Constraint::True, Constructor::Group);
/// let grammar = b.build().unwrap();
/// assert_eq!(grammar.symbols.nonterminal_count(), 2);
/// assert_eq!(grammar.productions_of(qi).len(), 1);
/// ```
pub struct GrammarBuilder {
    symbols: SymbolTable,
    start_name: String,
    productions: Vec<Production>,
    preferences: Vec<Preference>,
    proximity: Proximity,
}

impl GrammarBuilder {
    /// Creates a builder whose start symbol is `start`.
    pub fn new(start: &str) -> Self {
        let mut symbols = SymbolTable::new();
        symbols.intern(start);
        GrammarBuilder {
            symbols,
            start_name: start.to_string(),
            productions: Vec::new(),
            preferences: Vec::new(),
            proximity: Proximity::default(),
        }
    }

    /// Overrides adjacency thresholds.
    pub fn proximity(&mut self, p: Proximity) -> &mut Self {
        self.proximity = p;
        self
    }

    /// Terminal symbol for a token kind.
    pub fn t(&self, kind: TokenKind) -> SymbolId {
        self.symbols.terminal(kind)
    }

    /// Interns (or finds) a nonterminal.
    pub fn nt(&mut self, name: &str) -> SymbolId {
        self.symbols.intern(name)
    }

    /// Adds a production.
    pub fn production(
        &mut self,
        name: &str,
        head: SymbolId,
        components: Vec<SymbolId>,
        constraint: Constraint,
        constructor: Constructor,
    ) -> &mut Self {
        self.productions.push(Production {
            name: name.to_string(),
            head,
            components,
            constraint,
            constructor,
        });
        self
    }

    /// Adds a preference.
    pub fn preference(
        &mut self,
        name: &str,
        winner: SymbolId,
        loser: SymbolId,
        condition: ConflictCond,
        criteria: WinCriteria,
    ) -> &mut Self {
        self.preferences.push(Preference {
            name: name.to_string(),
            winner,
            loser,
            condition,
            criteria,
        });
        self
    }

    /// Validates and finishes the grammar.
    pub fn build(self) -> Result<Grammar, GrammarError> {
        let start = self
            .symbols
            .lookup(&self.start_name)
            .expect("start symbol interned in new()");
        let mut g = Grammar {
            symbols: self.symbols,
            start,
            productions: self.productions,
            preferences: self.preferences,
            proximity: self.proximity,
            heads: Vec::new(),
        };
        g.validate_and_reindex()?;
        // d-edge acyclicity (ignoring self-loops) is checked here so a
        // bad grammar fails at build time, not at first parse.
        crate::schedule::check_d_acyclic(&g)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_grammar() {
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let qi = b.nt("QI");
        b.production("only", qi, vec![text], Constraint::True, Constructor::Group);
        let g = b.build().expect("valid grammar");
        assert_eq!(g.productions_of(qi).len(), 1);
        assert_eq!(g.symbols.nonterminal_count(), 1);
        assert!(g.stats().contains("1 productions"));
    }

    #[test]
    fn terminal_head_rejected() {
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let qi = b.nt("QI");
        b.production("ok", qi, vec![text], Constraint::True, Constructor::Group);
        b.production(
            "bad",
            text,
            vec![text],
            Constraint::True,
            Constructor::Group,
        );
        assert!(matches!(b.build(), Err(GrammarError::TerminalHead(_))));
    }

    #[test]
    fn empty_production_rejected() {
        let mut b = GrammarBuilder::new("QI");
        let qi = b.nt("QI");
        b.production("bad", qi, vec![], Constraint::True, Constructor::Group);
        assert!(matches!(b.build(), Err(GrammarError::EmptyProduction(_))));
    }

    #[test]
    fn useless_start_rejected() {
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let other = b.nt("Other");
        b.production(
            "other",
            other,
            vec![text],
            Constraint::True,
            Constructor::Group,
        );
        assert!(matches!(b.build(), Err(GrammarError::UselessStart(_))));
    }

    #[test]
    fn mutual_recursion_rejected_self_recursion_allowed() {
        // Self-recursive list rule: fine.
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let qi = b.nt("QI");
        b.production("base", qi, vec![text], Constraint::True, Constructor::Group);
        b.production(
            "rec",
            qi,
            vec![qi, text],
            Constraint::True,
            Constructor::Group,
        );
        assert!(b.build().is_ok());

        // Mutual recursion A → B → A: unschedulable.
        let mut b = GrammarBuilder::new("A");
        let text = b.t(TokenKind::Text);
        let a = b.nt("A");
        let bb = b.nt("B");
        b.production("a", a, vec![bb], Constraint::True, Constructor::Group);
        b.production("b", bb, vec![a], Constraint::True, Constructor::Group);
        b.production("a2", a, vec![text], Constraint::True, Constructor::Group);
        assert!(matches!(b.build(), Err(GrammarError::CyclicProductions(_))));
    }

    #[test]
    fn preferences_recorded() {
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let qi = b.nt("QI");
        let attr = b.nt("Attr");
        b.production("q", qi, vec![text], Constraint::True, Constructor::Group);
        b.production(
            "a",
            attr,
            vec![text],
            Constraint::True,
            Constructor::MakeAttr(0),
        );
        b.preference("R1", qi, attr, ConflictCond::Overlap, WinCriteria::Always);
        let g = b.build().unwrap();
        assert_eq!(g.preferences.len(), 1);
        assert_eq!(g.preference(PrefId(0)).name, "R1");
    }
}
