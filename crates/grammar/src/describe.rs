//! Human-readable grammar listings, in the style of the paper's
//! Figure 6 (productions) and Figure 12 (the 2P schedule graph, as
//! Graphviz DOT).

use crate::constraint::{Constraint, Pred};
use crate::constructor::Constructor;
use crate::grammar::Grammar;
use crate::schedule::Schedule;
use crate::symbol::SymbolId;
use std::fmt::Write;

fn pred_name(p: Pred) -> String {
    match p {
        Pred::AttrLike => "attr-like".into(),
        Pred::OpsLike => "ops-like".into(),
        Pred::RangeConnector => "connector".into(),
        Pred::MaxWords(n) => format!("≤{n} words"),
        Pred::OptionsOpsLike => "options-ops-like".into(),
        Pred::LowercaseText => "lowercase".into(),
        Pred::MinOps(n) => format!("≥{n} captions"),
    }
}

/// Renders a constraint with component names substituted for indexes.
pub fn constraint_to_string(c: &Constraint, names: &[&str]) -> String {
    let n = |i: usize| names.get(i).copied().unwrap_or("?");
    match c {
        Constraint::True => "true".into(),
        Constraint::Left(i, j) => format!("Left({}, {})", n(*i), n(*j)),
        Constraint::Above(i, j) => format!("Above({}, {})", n(*i), n(*j)),
        Constraint::Below(i, j) => format!("Below({}, {})", n(*i), n(*j)),
        Constraint::LeftWithin(i, j, px) => format!("Left≤{px}({}, {})", n(*i), n(*j)),
        Constraint::AboveWithin(i, j, px) => format!("Above≤{px}({}, {})", n(*i), n(*j)),
        Constraint::SameRow(i, j) => format!("SameRow({}, {})", n(*i), n(*j)),
        Constraint::SameCol(i, j) => format!("SameCol({}, {})", n(*i), n(*j)),
        Constraint::AlignBottom(i, j) => format!("AlignBottom({}, {})", n(*i), n(*j)),
        Constraint::AlignTop(i, j) => format!("AlignTop({}, {})", n(*i), n(*j)),
        Constraint::AlignLeft(i, j) => format!("AlignLeft({}, {})", n(*i), n(*j)),
        Constraint::MaxDist(i, j, px) => format!("Dist≤{px}({}, {})", n(*i), n(*j)),
        Constraint::Is(i, p) => format!("{}({})", pred_name(*p), n(*i)),
        Constraint::And(cs) => cs
            .iter()
            .map(|c| constraint_to_string(c, names))
            .collect::<Vec<_>>()
            .join(" ∧ "),
        Constraint::Or(cs) => format!(
            "({})",
            cs.iter()
                .map(|c| constraint_to_string(c, names))
                .collect::<Vec<_>>()
                .join(" ∨ ")
        ),
        Constraint::Not(c) => format!("¬{}", constraint_to_string(c, names)),
    }
}

/// Short name for a constructor action.
pub fn constructor_to_string(k: &Constructor) -> &'static str {
    match k {
        Constructor::Group => "group",
        Constructor::Inherit(_) => "inherit",
        Constructor::MakeAttr(_) => "attr",
        Constructor::TextOf(_) => "text",
        Constructor::ListStart(_) => "list-start",
        Constructor::ListAppend { .. } => "list-append",
        Constructor::OpsFromOptions(_) => "ops-from-options",
        Constructor::MakeCond { .. } => "condition",
        Constructor::MakeEnumCond { .. } => "enum-condition",
        Constructor::MakeBoolCond(_) => "bool-condition",
        Constructor::MakeRange { .. } => "range-condition",
        Constructor::MakeDate(_) => "date-condition",
        Constructor::MakeUnlabeledCond(_) => "unlabeled-condition",
        Constructor::CollectConds => "collect",
    }
}

impl Grammar {
    /// Figure 6-style listing: one line per production, then the
    /// preferences.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "2P grammar ({}):", self.stats());
        let _ = writeln!(out, "start: {}", self.symbols.name(self.start));
        let _ = writeln!(out, "productions:");
        for (i, p) in self.productions.iter().enumerate() {
            let comp_names: Vec<&str> =
                p.components.iter().map(|&c| self.symbols.name(c)).collect();
            let _ = writeln!(
                out,
                "  P{i:<3} {:<10} ← {:<28} ⟦{}⟧ ⟨{}⟩  # {}",
                self.symbols.name(p.head),
                comp_names.join(" "),
                constraint_to_string(&p.constraint, &comp_names),
                constructor_to_string(&p.constructor),
                p.name
            );
        }
        let _ = writeln!(out, "preferences:");
        for (i, r) in self.preferences.iter().enumerate() {
            let _ = writeln!(
                out,
                "  R{i:<3} {} ≻ {}  when {:?}, wins by {:?}  # {}",
                self.symbols.name(r.winner),
                self.symbols.name(r.loser),
                r.condition,
                r.criteria,
                r.name
            );
        }
        out
    }
}

/// Graphviz DOT rendering of the 2P schedule graph (paper Figure 12):
/// solid d-edges (component → head) and dashed r-edges (winner →
/// loser), with the scheduled order as node labels.
pub fn schedule_to_dot(grammar: &Grammar, schedule: &Schedule) -> String {
    let order_of = |s: SymbolId| {
        schedule
            .order
            .iter()
            .position(|&x| x == s)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "-".into())
    };
    let mut out = String::from("digraph schedule {\n  rankdir=BT;\n");
    for &s in &schedule.order {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{} ({})\"];",
            grammar.symbols.name(s),
            grammar.symbols.name(s),
            order_of(s)
        );
    }
    // d-edges: component → head, deduplicated, nonterminals only.
    let mut seen = std::collections::BTreeSet::new();
    for p in &grammar.productions {
        for &c in &p.components {
            if grammar.symbols.is_terminal(c) || c == p.head {
                continue;
            }
            if seen.insert((c, p.head)) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    grammar.symbols.name(c),
                    grammar.symbols.name(p.head)
                );
            }
        }
    }
    // r-edges: winner → loser, dashed.
    for (i, r) in grammar.preferences.iter().enumerate() {
        if r.winner == r.loser {
            continue;
        }
        let style = if schedule.needs_rollback[i] {
            "dotted"
        } else {
            "dashed"
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [style={style}, color=red, label=\"{}\"];",
            grammar.symbols.name(r.winner),
            grammar.symbols.name(r.loser),
            r.name
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{global_grammar, paper_example_grammar};
    use crate::schedule::build_schedule;

    #[test]
    fn describe_lists_every_rule() {
        let g = paper_example_grammar();
        let listing = g.describe();
        assert!(listing.contains("start: QI"));
        assert!(listing.contains("TextOp"), "{listing}");
        assert!(listing.contains("RBU"));
        assert!(listing.contains("≻"), "preferences listed");
        let starting_with =
            |prefix: &str| listing.lines().filter(|l| l.starts_with(prefix)).count();
        assert_eq!(
            starting_with("  P"),
            g.productions.len(),
            "one line per production"
        );
        assert_eq!(starting_with("  R"), g.preferences.len());
    }

    #[test]
    fn constraint_rendering_uses_component_names() {
        let c = Constraint::all([Constraint::Left(0, 1), Constraint::Is(0, Pred::AttrLike)]);
        let s = constraint_to_string(&c, &["Attr", "Val"]);
        assert_eq!(s, "Left(Attr, Val) ∧ attr-like(Attr)");
        let o = Constraint::Or(vec![Constraint::True, Constraint::Below(1, 0)]);
        assert_eq!(
            constraint_to_string(&o, &["A", "B"]),
            "(true ∨ Below(B, A))"
        );
    }

    #[test]
    fn dot_export_has_both_edge_kinds() {
        let g = paper_example_grammar();
        let s = build_schedule(&g).unwrap();
        let dot = schedule_to_dot(&g, &s);
        assert!(dot.starts_with("digraph schedule {"));
        assert!(dot.contains("\"RBU\" -> \"RBList\";"), "d-edge");
        assert!(
            dot.contains("\"RBU\" -> \"Attr\" [style=dashed"),
            "r-edge: {dot}"
        );
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn global_grammar_describe_is_complete() {
        let g = global_grammar();
        let listing = g.describe();
        for nt in ["TextVal", "RangeTB", "DateMDY", "EnumCB", "QI"] {
            assert!(listing.contains(nt), "{nt} missing");
        }
    }
}
