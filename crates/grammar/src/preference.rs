//! Preferences: ⟨Conflicting instances, Conflicting condition, Winning
//! criteria⟩ (paper Definition 3).
//!
//! A preference resolves a particular ambiguity between two types of
//! conflicting instances by giving priority to one over the other. The
//! *conflicting condition* describes when two instances are actually in
//! conflict; the *winning criteria* decides the winner (always `v1`,
//! the instance of [`Preference::winner`]).

use crate::symbol::SymbolId;
use std::fmt;

/// Identifier of a preference within a grammar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefId(pub u32);

impl PrefId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PrefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// When do a winner-typed instance `v1` and a loser-typed instance `v2`
/// conflict? (Both conditions additionally require the instances to be
/// distinct, valid, and not structurally nested in one another — nested
/// instances are one interpretation, not competing ones.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConflictCond {
    /// The token spans intersect.
    Overlap,
    /// `v2`'s span is a subset of `v1`'s span.
    LoserSubsumed,
}

/// How to pick `v1` as the winner once a conflict is established.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WinCriteria {
    /// Unconditional: `v1`'s type always beats `v2`'s (paper's R1).
    Always,
    /// `v1` covers strictly more tokens (paper's R2: "pick the longer
    /// one as the winner").
    WinnerLarger,
    /// `v1`'s components sit closer together than `v2`'s
    /// (inter-component distance, paper Figure 13 discussion).
    WinnerTighter,
}

/// One preference rule.
#[derive(Clone, Debug)]
pub struct Preference {
    /// Name for listings (e.g. `R1:RBU>Attr`).
    pub name: String,
    /// Symbol of `v1`, the instance type given priority.
    pub winner: SymbolId,
    /// Symbol of `v2`, the instance type that loses.
    pub loser: SymbolId,
    /// Conflict test.
    pub condition: ConflictCond,
    /// Winner test.
    pub criteria: WinCriteria,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn preference_shape() {
        let mut syms = SymbolTable::new();
        let rbu = syms.intern("RBU");
        let attr = syms.intern("Attr");
        let r1 = Preference {
            name: "R1".into(),
            winner: rbu,
            loser: attr,
            condition: ConflictCond::Overlap,
            criteria: WinCriteria::Always,
        };
        assert_eq!(r1.winner, rbu);
        assert_ne!(r1.winner, r1.loser);
        assert_eq!(format!("{:?}", PrefId(1)), "R1");
    }

    #[test]
    fn same_symbol_preference_is_expressible() {
        // Paper's R2: two RBList instances, longer wins.
        let mut syms = SymbolTable::new();
        let rblist = syms.intern("RBList");
        let r2 = Preference {
            name: "R2".into(),
            winner: rblist,
            loser: rblist,
            condition: ConflictCond::LoserSubsumed,
            criteria: WinCriteria::WinnerLarger,
        };
        assert_eq!(r2.winner, r2.loser);
    }
}
