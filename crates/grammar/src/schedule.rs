//! The 2P schedule graph (paper §5.2).
//!
//! Symbols must be instantiated children-before-parents (d-edges, from
//! productions) and winner-before-loser (r-edges, from preferences) so
//! that false instances are pruned *just in time* — before they can
//! participate in further instantiations. d-edges are mandatory;
//! r-edges are an optimization and may be *transformed* (re-targeted at
//! the loser's parents, paper Figure 13) or, failing that, dropped —
//! in which case the parser compensates with rollback.

use crate::grammar::{Grammar, GrammarError};
use crate::preference::PrefId;
use crate::symbol::SymbolId;
use std::collections::BTreeSet;
use std::sync::atomic::AtomicUsize;

static SCHEDULE_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of [`build_schedule`] invocations. Compile-once
/// paths (sessions over a [`crate::CompiledGrammar`]) schedule exactly
/// once per grammar; tests and benches assert that through this.
pub fn schedule_build_count() -> usize {
    SCHEDULE_BUILDS.load(std::sync::atomic::Ordering::Relaxed)
}

/// The instantiation plan for a grammar.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Nonterminals in instantiation order (terminals implicitly first).
    pub order: Vec<SymbolId>,
    /// Per-preference flag: its r-edge was dropped, so invalidating a
    /// loser under this preference must roll back the loser's ancestors.
    pub needs_rollback: Vec<bool>,
    /// Per-preference flag: its r-edge was kept only in transformed
    /// (indirect) form.
    pub transformed: Vec<bool>,
}

impl Schedule {
    /// Preferences the parser must compensate with rollback.
    pub fn rollback_prefs(&self) -> impl Iterator<Item = PrefId> + '_ {
        self.needs_rollback
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| PrefId(i as u32))
    }
}

/// Directed graph over nonterminal symbols; edge `u → v` means "`u`
/// must be instantiated before `v`".
struct Graph {
    n: usize,
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![BTreeSet::new(); n],
        }
    }

    fn add(&mut self, u: usize, v: usize) {
        if u != v {
            self.adj[u].insert(v);
        }
    }

    /// Is `to` reachable from `from`?
    fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if v == to {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Deterministic Kahn topological sort; `None` on a cycle.
    fn topo(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            for &v in &self.adj[u] {
                indeg[v] += 1;
            }
        }
        let mut ready: BTreeSet<usize> = (0..self.n).filter(|&u| indeg[u] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            order.push(u);
            for &v in &self.adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.insert(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }
}

/// Maps nonterminal symbols to dense graph indexes.
struct NtIndex {
    ids: Vec<SymbolId>,
    of: Vec<Option<usize>>,
}

impl NtIndex {
    fn new(g: &Grammar) -> Self {
        let mut ids = Vec::new();
        let mut of = vec![None; g.symbols.len()];
        for s in g.symbols.ids() {
            if !g.symbols.is_terminal(s) {
                of[s.index()] = Some(ids.len());
                ids.push(s);
            }
        }
        NtIndex { ids, of }
    }

    fn idx(&self, s: SymbolId) -> Option<usize> {
        self.of[s.index()]
    }
}

fn d_graph(g: &Grammar, nts: &NtIndex) -> Graph {
    let mut graph = Graph::new(nts.ids.len());
    for p in &g.productions {
        let Some(head) = nts.idx(p.head) else {
            continue;
        };
        for &c in &p.components {
            if let Some(comp) = nts.idx(c) {
                // Component instantiates before head (self-loops are
                // excluded by Graph::add and handled by the fix-point).
                graph.add(comp, head);
            }
        }
    }
    graph
}

/// Validates that d-edges alone are schedulable (used by the builder).
pub(crate) fn check_d_acyclic(g: &Grammar) -> Result<(), GrammarError> {
    let nts = NtIndex::new(g);
    let graph = d_graph(g, &nts);
    match graph.topo() {
        Some(_) => Ok(()),
        None => {
            // Identify one symbol on a cycle for the error message.
            let culprit = nts
                .ids
                .iter()
                .find(|&&s| {
                    let i = nts.idx(s).expect("nonterminal");
                    graph.adj[i].iter().any(|&v| graph.reaches(v, i))
                })
                .map(|&s| g.symbols.name(s).to_string())
                .unwrap_or_else(|| "<unknown>".to_string());
            Err(GrammarError::CyclicProductions(culprit))
        }
    }
}

/// Parents of a symbol: heads of productions that use it as component.
fn parents_of(g: &Grammar, s: SymbolId) -> Vec<SymbolId> {
    let mut out: Vec<SymbolId> = g
        .productions
        .iter()
        .filter(|p| p.head != s && p.components.contains(&s))
        .map(|p| p.head)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the 2P schedule for a validated grammar.
///
/// r-edges are added greedily in preference order; an edge that would
/// close a cycle is first transformed (winner → each parent of the
/// loser), and if the transformation also cycles, the edge is dropped
/// and the preference marked for rollback.
pub fn build_schedule(g: &Grammar) -> Result<Schedule, GrammarError> {
    SCHEDULE_BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let nts = NtIndex::new(g);
    let mut graph = d_graph(g, &nts);
    if graph.topo().is_none() {
        return check_d_acyclic(g).map(|_| unreachable!("topo failed but d-graph acyclic"));
    }

    let mut needs_rollback = vec![false; g.preferences.len()];
    let mut transformed = vec![false; g.preferences.len()];

    for (i, pref) in g.preferences.iter().enumerate() {
        let (Some(w), Some(l)) = (nts.idx(pref.winner), nts.idx(pref.loser)) else {
            continue; // preferences on terminals need no scheduling
        };
        if w == l {
            // Same-symbol preference: enforcement at the end of the
            // symbol's own instantiation is inherently just-in-time.
            continue;
        }
        if !graph.reaches(l, w) {
            graph.add(w, l);
            continue;
        }
        // Direct edge would close a cycle — try the transformation.
        let parent_targets: Vec<usize> = parents_of(g, pref.loser)
            .into_iter()
            .filter_map(|p| nts.idx(p))
            .filter(|&p| p != w)
            .collect();
        let transformable = parent_targets.iter().all(|&d| !graph.reaches(d, w));
        if transformable {
            for &d in &parent_targets {
                graph.add(w, d);
            }
            transformed[i] = true;
        } else {
            needs_rollback[i] = true;
        }
    }

    let order = graph
        .topo()
        .expect("greedy insertion preserves acyclicity")
        .into_iter()
        .map(|i| nts.ids[i])
        .collect();
    Ok(Schedule {
        order,
        needs_rollback,
        transformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::constructor::Constructor;
    use crate::grammar::GrammarBuilder;
    use crate::preference::{ConflictCond, WinCriteria};
    use metaform_core::TokenKind;

    fn pos(sched: &Schedule, g: &Grammar, name: &str) -> usize {
        let id = g.symbols.lookup(name).expect("symbol exists");
        sched
            .order
            .iter()
            .position(|&s| s == id)
            .expect("scheduled")
    }

    /// The paper's grammar G (Figure 6), skeletal.
    fn paper_grammar() -> Grammar {
        let mut b = GrammarBuilder::new("QI");
        let text = b.t(TokenKind::Text);
        let textbox = b.t(TokenKind::Textbox);
        let radio = b.t(TokenKind::Radiobutton);
        let (qi, hqi, cp) = (b.nt("QI"), b.nt("HQI"), b.nt("CP"));
        let (textval, textop, enumrb) = (b.nt("TextVal"), b.nt("TextOp"), b.nt("EnumRB"));
        let (attr, op, val) = (b.nt("Attr"), b.nt("Op"), b.nt("Val"));
        let (rblist, rbu) = (b.nt("RBList"), b.nt("RBU"));
        let c = Constraint::True;
        let k = Constructor::Group;
        b.production("P1a", qi, vec![hqi], c.clone(), k.clone());
        b.production("P1b", qi, vec![qi, hqi], c.clone(), k.clone());
        b.production("P2a", hqi, vec![cp], c.clone(), k.clone());
        b.production("P2b", hqi, vec![hqi, cp], c.clone(), k.clone());
        b.production("P3a", cp, vec![textval], c.clone(), k.clone());
        b.production("P3b", cp, vec![textop], c.clone(), k.clone());
        b.production("P3c", cp, vec![enumrb], c.clone(), k.clone());
        b.production("P4", textval, vec![attr, val], c.clone(), k.clone());
        b.production("P5", textop, vec![attr, val, op], c.clone(), k.clone());
        b.production("P6", op, vec![rblist], c.clone(), k.clone());
        b.production("P7", enumrb, vec![rblist], c.clone(), k.clone());
        b.production("P8a", rblist, vec![rbu], c.clone(), k.clone());
        b.production("P8b", rblist, vec![rblist, rbu], c.clone(), k.clone());
        b.production("P9", rbu, vec![radio, text], c.clone(), k.clone());
        b.production("P10", attr, vec![text], c.clone(), k.clone());
        b.production("P11", val, vec![textbox], c.clone(), k.clone());
        b.preference("R1", rbu, attr, ConflictCond::Overlap, WinCriteria::Always);
        b.preference(
            "R2",
            rblist,
            rblist,
            ConflictCond::LoserSubsumed,
            WinCriteria::WinnerLarger,
        );
        b.build().expect("paper grammar is valid")
    }

    #[test]
    fn children_precede_parents() {
        let g = paper_grammar();
        let s = build_schedule(&g).unwrap();
        assert!(pos(&s, &g, "RBU") < pos(&s, &g, "RBList"));
        assert!(pos(&s, &g, "RBList") < pos(&s, &g, "Op"));
        assert!(pos(&s, &g, "Attr") < pos(&s, &g, "TextVal"));
        assert!(pos(&s, &g, "Val") < pos(&s, &g, "TextOp"));
        assert!(pos(&s, &g, "CP") < pos(&s, &g, "HQI"));
        assert!(pos(&s, &g, "HQI") < pos(&s, &g, "QI"));
        assert_eq!(s.order.len(), g.symbols.nonterminal_count());
    }

    #[test]
    fn winner_precedes_loser() {
        let g = paper_grammar();
        let s = build_schedule(&g).unwrap();
        // R1: RBU wins over Attr, so RBU must be instantiated first —
        // exactly the paper's Example 5/6.
        assert!(pos(&s, &g, "RBU") < pos(&s, &g, "Attr"));
        assert!(!s.needs_rollback.iter().any(|&b| b));
        assert!(!s.transformed.iter().any(|&b| b));
    }

    #[test]
    fn figure13_cycle_is_transformed() {
        // B ← A, C ← A, D ← C, with mutually preferring B and C.
        let mut bld = GrammarBuilder::new("D");
        let ta = bld.t(TokenKind::Text);
        let (a, b, c, d) = (bld.nt("A"), bld.nt("B"), bld.nt("C"), bld.nt("D"));
        let t = Constraint::True;
        let k = Constructor::Group;
        bld.production("a", a, vec![ta], t.clone(), k.clone());
        bld.production("b", b, vec![a], t.clone(), k.clone());
        bld.production("c", c, vec![a], t.clone(), k.clone());
        bld.production("d", d, vec![c], t.clone(), k.clone());
        bld.preference(
            "RB>C",
            b,
            c,
            ConflictCond::Overlap,
            WinCriteria::WinnerTighter,
        );
        bld.preference(
            "RC>B",
            c,
            b,
            ConflictCond::Overlap,
            WinCriteria::WinnerTighter,
        );
        let g = bld.build().unwrap();
        let s = build_schedule(&g).unwrap();
        // First preference adds B→C directly. The second (C before B)
        // would cycle; transformation re-targets it at B's parents —
        // B has none, so it succeeds vacuously.
        assert!(s.transformed[1]);
        assert!(!s.needs_rollback[1]);
        assert!(pos(&s, &g, "B") < pos(&s, &g, "C"));
    }

    #[test]
    fn figure13_with_parent_d_schedules_winner_before_parent() {
        // Same but B also has a parent E, matching Figure 13's shape:
        // the transformed edge must force C before E (loser B's parent).
        let mut bld = GrammarBuilder::new("E");
        let ta = bld.t(TokenKind::Text);
        let (a, b, c, d, e) = (
            bld.nt("A"),
            bld.nt("B"),
            bld.nt("C"),
            bld.nt("D"),
            bld.nt("E"),
        );
        let t = Constraint::True;
        let k = Constructor::Group;
        bld.production("a", a, vec![ta], t.clone(), k.clone());
        bld.production("b", b, vec![a], t.clone(), k.clone());
        bld.production("c", c, vec![a], t.clone(), k.clone());
        bld.production("d", d, vec![c], t.clone(), k.clone());
        bld.production("e", e, vec![b], t.clone(), k.clone());
        bld.preference(
            "RB>C",
            b,
            c,
            ConflictCond::Overlap,
            WinCriteria::WinnerTighter,
        );
        bld.preference(
            "RC>B",
            c,
            b,
            ConflictCond::Overlap,
            WinCriteria::WinnerTighter,
        );
        let g = bld.build().unwrap();
        let s = build_schedule(&g).unwrap();
        assert!(s.transformed[1]);
        assert!(
            pos(&s, &g, "C") < pos(&s, &g, "E"),
            "winner before loser's parent"
        );
        assert!(pos(&s, &g, "B") < pos(&s, &g, "C"));
    }

    #[test]
    fn untransformable_edge_falls_back_to_rollback() {
        // B's parent is C itself, so re-targeting C→B at B's parents
        // yields C→C (filtered) plus nothing else reachable — but the
        // direct edge C→B cycles with B→C and the parent set is empty
        // after filtering, making it vacuous. Build a genuinely
        // untransformable case instead: B's parent P where P → … → C
        // already holds.
        let mut bld = GrammarBuilder::new("Z");
        let ta = bld.t(TokenKind::Text);
        let (a, b, c, p, z) = (
            bld.nt("A"),
            bld.nt("B"),
            bld.nt("C"),
            bld.nt("P"),
            bld.nt("Z"),
        );
        let t = Constraint::True;
        let k = Constructor::Group;
        bld.production("a", a, vec![ta], t.clone(), k.clone());
        bld.production("b", b, vec![a], t.clone(), k.clone());
        bld.production("p", p, vec![b], t.clone(), k.clone()); // P is B's parent
        bld.production("c", c, vec![p], t.clone(), k.clone()); // C above P: P→C in order
        bld.production("z", z, vec![c], t.clone(), k.clone());
        // Winner C must precede loser B; but B → P → C chains already
        // force C last. Direct edge C→B cycles; transformed edge C→P
        // also cycles (P reaches C). Must drop and mark rollback.
        bld.preference("RC>B", c, b, ConflictCond::Overlap, WinCriteria::Always);
        let g = bld.build().unwrap();
        let s = build_schedule(&g).unwrap();
        assert!(s.needs_rollback[0]);
        assert!(!s.transformed[0]);
        assert_eq!(s.rollback_prefs().count(), 1);
    }

    #[test]
    fn order_is_deterministic() {
        let g = paper_grammar();
        let a = build_schedule(&g).unwrap();
        let b = build_schedule(&g).unwrap();
        assert_eq!(a.order, b.order);
    }
}
