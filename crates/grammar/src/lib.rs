//! # metaform-grammar
//!
//! The **2P grammar** mechanism (paper §4): a grammar is a 5-tuple
//! ⟨Σ, N, s, Pd, Pf⟩ where productions *Pd* declaratively capture
//! condition patterns via spatial constraints, and preferences *Pf*
//! capture their precedence for ambiguity resolution. This crate
//! provides:
//!
//! - the declarative machinery ([`Constraint`], [`Constructor`],
//!   [`Production`], [`Preference`], [`GrammarBuilder`]);
//! - the **2P schedule graph** ([`schedule::build_schedule`]): d-edges
//!   (children before parents) merged with r-edges (winners before
//!   losers), with the r-edge *transformation* of paper Figure 13 and
//!   greedy cycle avoidance;
//! - the **derived global grammar** ([`global::global_grammar`])
//!   reproducing the paper's 21-pattern catalog, and the Figure 6
//!   example grammar *G*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod constraint;
pub mod constructor;
pub mod describe;
pub mod dsl;
pub mod global;
pub mod grammar;
pub mod induce;
pub mod payload;
pub mod preference;
pub mod production;
pub mod schedule;
pub mod symbol;

pub use compiled::{compile_count, preference_index, CompiledGrammar};
pub use constraint::{Constraint, DepthTerms, Hoisted, LastSlotBand, Pred, View};
pub use constructor::Constructor;
pub use describe::{constraint_to_string, schedule_to_dot};
pub use dsl::{from_dsl, to_dsl, DslError};
pub use global::{global_compiled, global_grammar, paper_example_grammar};
pub use grammar::{Grammar, GrammarBuilder, GrammarError};
pub use induce::{
    mine_page, synthesize, synthesize_all, Arrangement, ArrangementBook, Candidate, Cluster,
    PatternSpan,
};
pub use payload::Payload;
pub use preference::{ConflictCond, PrefId, Preference, WinCriteria};
pub use production::{ProdId, Production};
pub use schedule::{build_schedule, schedule_build_count, Schedule};
pub use symbol::{SymbolId, SymbolKind, SymbolTable};
