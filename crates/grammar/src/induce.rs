//! Grammar induction: mining candidate productions from parse residue.
//!
//! The hand-derived global grammar covers 21 of the survey's pattern
//! catalog; pages built from withheld patterns parse *wrong* rather
//! than not at all — their tokens end up claimed by the unlabeled
//! fallback patterns (`KwVal`, `SelfSel`, `TextValB`) or stranded in
//! the report's `missing` list. This module is the **Collect** and
//! **Infer** halves of the Collect → Infer → Validate loop that closes
//! that gap (ROADMAP's top open item):
//!
//! - [`mine_page`] anchors on residue tokens (missing, or claimed only
//!   by fallback patterns), grows each anchor group into a visual-row
//!   window, and abstracts the window into an [`Arrangement`] — a
//!   descriptor signature (symbol n-gram) plus the observed horizontal
//!   gaps (the bbox adjacency class).
//! - [`ArrangementBook`] clusters arrangements across a batch by
//!   signature, tracking per-page support and the element-wise maximal
//!   gaps.
//! - [`synthesize`] maps a recurring cluster onto one of the known
//!   production *shapes* and generalizes the spatial constraints from
//!   the observed gaps, yielding a [`Candidate`].
//!
//! A [`Candidate`] is a proposal, not a grammar change:
//! [`Candidate::apply`] returns a *description* ([`Grammar`]) with the
//! productions appended, and the only way that description becomes
//! parse-ready is [`Grammar::compile`] — the grammar lifecycle's single
//! fallible entry point, which re-validates everything. The **Validate**
//! half (held-out replay, zero-regression gate) lives in
//! `metaform-eval`, which alone decides whether an applied candidate is
//! kept.

use crate::constraint::{self, Constraint, Pred, View};
use crate::constructor::Constructor;
use crate::grammar::Grammar;
use crate::payload::Payload;
use crate::preference::{ConflictCond, Preference, WinCriteria};
use crate::production::Production;
use crate::symbol::SymbolId;
use metaform_core::relations::same_row;
use metaform_core::{Proximity, Token, TokenId, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Pattern symbols whose claims are last-resort guesses, not evidence
/// of understanding: a token claimed *only* by these is parse residue
/// and eligible as a mining anchor.
pub const FALLBACK_SYMBOLS: [&str; 3] = ["KwVal", "SelfSel", "TextValB"];

/// The tokens one pattern-level instance claimed, tagged with the
/// claiming symbol — the parser exports one per `CP` child in the
/// maximal trees, letting the miner separate trusted claims from
/// fallback claims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSpan {
    /// Pattern symbol name (`"TextVal"`, `"KwVal"`, …).
    pub symbol: String,
    /// Token ids the instance's span covers, ascending.
    pub tokens: Vec<TokenId>,
}

/// One recurring unparsed token arrangement: the descriptor signature
/// abstracts the token sequence, the gaps record the horizontal
/// adjacency class the spatial constraints will be generalized from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrangement {
    /// Space-joined descriptors — the cluster key.
    pub signature: String,
    /// Per-token descriptors, left to right.
    pub descriptors: Vec<String>,
    /// Horizontal gap (px, clamped at 0) between adjacent tokens;
    /// `descriptors.len() - 1` entries.
    pub gaps: Vec<i32>,
}

/// Upper bound on window width: anything wider than the widest known
/// condition pattern (attr + three boxes + two separators) is noise,
/// not a minable arrangement.
const MAX_WINDOW: usize = 8;

/// Abstracts one token for the arrangement signature. Widgets map to
/// their kind; text splits by role — connector words, punctuation
/// separators, lowercase unit-ish words, attribute-like labels, other.
fn descriptor(t: &Token) -> &'static str {
    match t.kind {
        TokenKind::Textbox | TokenKind::Password | TokenKind::TextArea => "tb",
        TokenKind::SelectionList => "sel",
        TokenKind::NumberList => "numl",
        TokenKind::MonthList => "monl",
        TokenKind::DayList => "dayl",
        TokenKind::YearList => "yearl",
        TokenKind::Radiobutton => "rb",
        TokenKind::Checkbox => "cb",
        TokenKind::SubmitButton | TokenKind::ResetButton | TokenKind::ImageInput => "btn",
        TokenKind::FileInput => "file",
        TokenKind::HiddenInput => "hid",
        TokenKind::Text => {
            let s = t.sval.as_str();
            if constraint::is_connector(s) {
                "conn"
            } else if !s.chars().any(char::is_alphanumeric) {
                "sep"
            } else if s.chars().any(char::is_alphabetic) && !s.chars().any(char::is_uppercase) {
                "low"
            } else if attr_like(t) {
                "attr"
            } else {
                "txt"
            }
        }
    }
}

/// `Pred::AttrLike` on a raw token — the same lexical test the `Attr`
/// production uses, so mined windows agree with what the grammar would
/// accept as a label.
fn attr_like(t: &Token) -> bool {
    let payload = Payload::Text(t.sval.clone());
    Pred::AttrLike.eval(&View {
        bbox: t.pos,
        payload: &payload,
        token: Some(t),
    })
}

fn is_button(kind: TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::SubmitButton | TokenKind::ResetButton | TokenKind::ImageInput
    )
}

fn is_widget(kind: TokenKind) -> bool {
    !matches!(kind, TokenKind::Text | TokenKind::HiddenInput) && !is_button(kind)
}

/// Mines one page's parse residue into arrangements (the **Collect**
/// step). `missing` and `spans` come from the page's extraction; a
/// page that parsed cleanly (no missing tokens, no fallback claims)
/// yields nothing.
pub fn mine_page(
    tokens: &[Token],
    missing: &[TokenId],
    spans: &[PatternSpan],
    prox: &Proximity,
) -> Vec<Arrangement> {
    // Split claims into trusted (a real pattern matched) and fallback.
    let mut trusted: BTreeSet<usize> = BTreeSet::new();
    let mut fallback: BTreeSet<usize> = BTreeSet::new();
    for span in spans {
        let bucket = if FALLBACK_SYMBOLS.contains(&span.symbol.as_str()) {
            &mut fallback
        } else {
            &mut trusted
        };
        bucket.extend(span.tokens.iter().map(|t| t.index()));
    }
    // Anchors: stranded tokens, plus tokens only a fallback explains.
    let mut anchors: BTreeSet<usize> = missing.iter().map(|t| t.index()).collect();
    anchors.extend(fallback.difference(&trusted).copied());
    anchors.retain(|&i| i < tokens.len() && !is_button(tokens[i].kind));
    if anchors.is_empty() {
        return Vec::new();
    }

    // Greedy visual-row assignment (deterministic: first matching row
    // wins, rows keyed by their first member).
    let mut rows: Vec<Vec<usize>> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::HiddenInput {
            continue;
        }
        match rows
            .iter_mut()
            .find(|row| same_row(&tokens[row[0]].pos, &t.pos, prox))
        {
            Some(row) => row.push(i),
            None => rows.push(vec![i]),
        }
    }
    for row in &mut rows {
        row.sort_by_key(|&i| (tokens[i].pos.left, i));
    }

    let mut out = Vec::new();
    for row in &rows {
        let anchor_pos: Vec<usize> = (0..row.len())
            .filter(|&p| anchors.contains(&row[p]))
            .collect();
        if anchor_pos.is_empty() {
            continue;
        }
        // Split a row's anchors into adjacency groups: two fields that
        // happen to share a visual row must not fuse into one window.
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for &p in &anchor_pos {
            match groups.last_mut() {
                Some((_, hi)) if p - *hi <= 3 => *hi = p,
                _ => groups.push((p, p)),
            }
        }
        for &(mut lo, mut hi) in &groups {
            // Grow the window over the anchors' context: widgets always
            // join; text joins when it is a connector, a separator, or
            // unexplained; buttons and trusted prose stop the growth.
            let joins = |p: usize| -> bool {
                let t = &tokens[row[p]];
                if is_widget(t.kind) {
                    return true;
                }
                t.kind == TokenKind::Text
                    && (constraint::is_connector(&t.sval)
                        || !t.sval.chars().any(char::is_alphanumeric)
                        || !trusted.contains(&row[p]))
            };
            while lo > 0 && joins(lo - 1) {
                lo -= 1;
            }
            while hi + 1 < row.len() && joins(hi + 1) {
                hi += 1;
            }
            // Label reclaim: a window starting at a widget whose
            // immediate left neighbor is an attribute-like label takes
            // the label even when a (mis-claiming) trusted pattern
            // already holds it — the label is part of the arrangement
            // being learned.
            if lo > 0 && is_widget(tokens[row[lo]].kind) {
                let prev = &tokens[row[lo - 1]];
                if prev.kind == TokenKind::Text && attr_like(prev) {
                    lo -= 1;
                }
            }
            let window: Vec<usize> = row[lo..=hi].to_vec();
            if window.len() > MAX_WINDOW
                || window.len() < 2
                || !window.iter().any(|&i| is_widget(tokens[i].kind))
            {
                continue;
            }
            let descriptors: Vec<String> = window
                .iter()
                .map(|&i| descriptor(&tokens[i]).to_string())
                .collect();
            let gaps: Vec<i32> = window
                .windows(2)
                .map(|w| (tokens[w[1]].pos.left - tokens[w[0]].pos.right).max(0))
                .collect();
            out.push(Arrangement {
                signature: descriptors.join(" "),
                descriptors,
                gaps,
            });
        }
    }
    out
}

/// One signature's cross-batch cluster: which pages showed it, how
/// often, and the element-wise maximal gaps observed (the adjacency
/// class the constraints generalize from).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Per-token descriptors of the clustered signature.
    pub descriptors: Vec<String>,
    /// Distinct pages the arrangement appeared on.
    pub pages: BTreeSet<String>,
    /// Total occurrences (≥ pages).
    pub occurrences: usize,
    /// Element-wise maximum of the observed gaps.
    pub max_gaps: Vec<i32>,
}

/// Clusters arrangements across a batch by signature (the **Infer**
/// step's accumulator). `BTreeMap`-backed so iteration — and therefore
/// the whole induction trajectory — is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrangementBook {
    clusters: BTreeMap<String, Cluster>,
}

impl ArrangementBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one page's arrangement into the matching cluster.
    pub fn absorb(&mut self, page: &str, arr: &Arrangement) {
        let cluster = self
            .clusters
            .entry(arr.signature.clone())
            .or_insert_with(|| Cluster {
                descriptors: arr.descriptors.clone(),
                pages: BTreeSet::new(),
                occurrences: 0,
                max_gaps: vec![0; arr.gaps.len()],
            });
        cluster.pages.insert(page.to_string());
        cluster.occurrences += 1;
        for (slot, &g) in arr.gaps.iter().enumerate() {
            if let Some(m) = cluster.max_gaps.get_mut(slot) {
                *m = (*m).max(g);
            }
        }
    }

    /// Mines `tokens` and folds every arrangement in — the per-page
    /// collection entry batch drivers use.
    pub fn absorb_page(
        &mut self,
        page: &str,
        tokens: &[Token],
        missing: &[TokenId],
        spans: &[PatternSpan],
        prox: &Proximity,
    ) {
        for arr in mine_page(tokens, missing, spans, prox) {
            self.absorb(page, &arr);
        }
    }

    /// The clusters in signature order.
    pub fn clusters(&self) -> impl Iterator<Item = (&String, &Cluster)> {
        self.clusters.iter()
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when nothing has been mined.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Drops all clusters (a daemon does this after each refit step).
    pub fn clear(&mut self) {
        self.clusters.clear();
    }
}

/// The production shapes the synthesizer knows how to generalize a
/// cluster into. Each mirrors a catalogued pattern family with the
/// label on the *other* side (or the parts split differently) from
/// what the hand grammar covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// `[tb attr]` — textbox with a trailing label.
    TbAttr,
    /// `[sel attr]` — selection list with a trailing label.
    SelAttr,
    /// `[attr tb sep tb sep tb]` — date split over punctuated boxes.
    DateBoxes,
    /// `[attr conn tb conn tb]` — worded range over two boxes.
    RangeBoxes,
}

/// A synthesized candidate production set: one new pattern nonterminal
/// plus its `CP` bridge and disambiguation preferences, with spatial
/// constraints generalized from a cluster's observed gaps. Inert until
/// [`Candidate::apply`]d to a grammar description and accepted by the
/// validation gate after `Grammar::compile`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The new pattern nonterminal's name (`Ind…`).
    pub name: String,
    /// The cluster signature the candidate was synthesized from.
    pub signature: String,
    /// Distinct supporting pages.
    pub support: usize,
    shape: Shape,
    /// Per-adjacency generalized `LeftWithin` bounds.
    gaps: Vec<i32>,
}

/// Generalizes an observed maximal gap into a `LeftWithin` bound:
/// slack for unseen spacing, floored so near-touching observations
/// still admit normal rendering jitter.
fn generalize_gap(observed: i32) -> i32 {
    (observed + 12).max(16)
}

/// Synthesizes a candidate from a recurring cluster (the **Infer**
/// step). Returns `None` for clusters below `min_support` or whose
/// signature matches no known shape — unmatched noise windows are
/// dropped here, not turned into speculative productions.
pub fn synthesize(signature: &str, cluster: &Cluster, min_support: usize) -> Option<Candidate> {
    if cluster.pages.len() < min_support {
        return None;
    }
    let ds: Vec<&str> = cluster.descriptors.iter().map(String::as_str).collect();
    let (name, shape) = match ds.as_slice() {
        ["tb", "attr"] => ("IndTbAttr", Shape::TbAttr),
        ["sel", "attr"] => ("IndSelAttr", Shape::SelAttr),
        ["attr", "tb", "sep", "tb", "sep", "tb"] => ("IndDateBoxes", Shape::DateBoxes),
        ["attr", "conn", "tb", "conn", "tb"] => ("IndRangeBoxes", Shape::RangeBoxes),
        _ => return None,
    };
    Some(Candidate {
        name: name.to_string(),
        signature: signature.to_string(),
        support: cluster.pages.len(),
        shape,
        gaps: cluster
            .max_gaps
            .iter()
            .map(|&g| generalize_gap(g))
            .collect(),
    })
}

/// Synthesizes every candidate a book supports, in signature order.
pub fn synthesize_all(book: &ArrangementBook, min_support: usize) -> Vec<Candidate> {
    book.clusters()
        .filter_map(|(sig, cluster)| synthesize(sig, cluster, min_support))
        .collect()
}

impl Candidate {
    /// The generalized adjacency bound for slot pair `i` (falls back
    /// to the floor when the cluster recorded fewer gaps).
    fn gap(&self, i: usize) -> i32 {
        self.gaps
            .get(i)
            .copied()
            .unwrap_or_else(|| generalize_gap(0))
    }

    /// Applies the candidate to a grammar *description*: appends the
    /// new pattern production, its `CP` bridge, and its preferences.
    /// Infallible and non-destructive — the result is only a proposal
    /// until [`Grammar::compile`] validates it, and the caller keeps
    /// the base grammar for rollback. When the base grammar lacks the
    /// symbols the shape builds on (or already has this candidate's
    /// nonterminal), the description is returned unchanged.
    pub fn apply(&self, base: &Grammar) -> Grammar {
        let mut g = base.clone();
        if g.symbols.lookup(&self.name).is_some() {
            return g;
        }
        let Some(cp) = g.symbols.lookup("CP") else {
            return g;
        };
        let Some(attr) = g.symbols.lookup("Attr") else {
            return g;
        };
        let Some(val) = g.symbols.lookup("Val") else {
            return g;
        };
        let text = g.symbols.terminal(TokenKind::Text);
        let sel = g.symbols.terminal(TokenKind::SelectionList);
        let nt = g.symbols.intern(&self.name);

        let mut productions = Vec::new();
        let mut preferences = Vec::new();
        let mut prefer = |name: String, winner: SymbolId, loser: Option<SymbolId>, criteria| {
            if let Some(loser) = loser {
                preferences.push(Preference {
                    name,
                    winner,
                    loser,
                    condition: ConflictCond::Overlap,
                    criteria,
                });
            }
        };
        let lookup = |g: &Grammar, name: &str| g.symbols.lookup(name);

        match self.shape {
            Shape::TbAttr => {
                productions.push(Production {
                    name: self.name.clone(),
                    head: nt,
                    components: vec![val, attr],
                    constraint: Constraint::And(vec![
                        Constraint::LeftWithin(0, 1, self.gap(0)),
                        // A lowercase trailing word is a unit ("miles"),
                        // not a label — leave those to UnitTB.
                        Constraint::Not(Box::new(Constraint::Is(1, Pred::LowercaseText))),
                    ]),
                    constructor: Constructor::MakeCond {
                        attr: Some(1),
                        ops: None,
                        val: 0,
                        kind: None,
                    },
                });
                // Tighter-wins both ways against TextVal (the R40/R41
                // precedent): whichever pairing hugs its tokens closer
                // is the real label-widget association.
                let text_val = lookup(&g, "TextVal");
                prefer(
                    format!("IndR:{}>TextVal", self.name),
                    nt,
                    text_val,
                    WinCriteria::WinnerTighter,
                );
                if let Some(tv) = text_val {
                    prefer(
                        format!("IndR:TextVal>{}", self.name),
                        tv,
                        Some(nt),
                        WinCriteria::WinnerTighter,
                    );
                }
                prefer(
                    format!("IndR:{}>TextValB", self.name),
                    nt,
                    lookup(&g, "TextValB"),
                    WinCriteria::Always,
                );
                prefer(
                    format!("IndR:{}>KwVal", self.name),
                    nt,
                    lookup(&g, "KwVal"),
                    WinCriteria::Always,
                );
                if let Some(unit_tb) = lookup(&g, "UnitTB") {
                    prefer(
                        format!("IndR:UnitTB>{}", self.name),
                        unit_tb,
                        Some(nt),
                        WinCriteria::WinnerLarger,
                    );
                }
            }
            Shape::SelAttr => {
                productions.push(Production {
                    name: self.name.clone(),
                    head: nt,
                    components: vec![sel, attr],
                    constraint: Constraint::And(vec![
                        Constraint::LeftWithin(0, 1, self.gap(0)),
                        Constraint::Not(Box::new(Constraint::Is(1, Pred::LowercaseText))),
                        // An operator-listing select is an op picker,
                        // not a value domain (the SelfSel guard).
                        Constraint::Not(Box::new(Constraint::Is(0, Pred::OptionsOpsLike))),
                    ]),
                    constructor: Constructor::MakeCond {
                        attr: Some(1),
                        ops: None,
                        val: 0,
                        kind: None,
                    },
                });
                let sel_val = lookup(&g, "SelVal");
                prefer(
                    format!("IndR:{}>SelVal", self.name),
                    nt,
                    sel_val,
                    WinCriteria::WinnerTighter,
                );
                if let Some(sv) = sel_val {
                    prefer(
                        format!("IndR:SelVal>{}", self.name),
                        sv,
                        Some(nt),
                        WinCriteria::WinnerTighter,
                    );
                }
                prefer(
                    format!("IndR:{}>SelfSel", self.name),
                    nt,
                    lookup(&g, "SelfSel"),
                    WinCriteria::Always,
                );
                prefer(
                    format!("IndR:{}>TextValB", self.name),
                    nt,
                    lookup(&g, "TextValB"),
                    WinCriteria::Always,
                );
            }
            Shape::DateBoxes => {
                productions.push(Production {
                    name: self.name.clone(),
                    head: nt,
                    components: vec![attr, val, text, val, text, val],
                    constraint: Constraint::And(vec![
                        Constraint::LeftWithin(0, 1, self.gap(0)),
                        Constraint::LeftWithin(1, 2, self.gap(1)),
                        Constraint::LeftWithin(2, 3, self.gap(2)),
                        Constraint::LeftWithin(3, 4, self.gap(3)),
                        Constraint::LeftWithin(4, 5, self.gap(4)),
                        // The interior texts are bare separators, never
                        // labels.
                        Constraint::Is(2, Pred::MaxWords(1)),
                        Constraint::Not(Box::new(Constraint::Is(2, Pred::AttrLike))),
                        Constraint::Is(4, Pred::MaxWords(1)),
                        Constraint::Not(Box::new(Constraint::Is(4, Pred::AttrLike))),
                    ]),
                    constructor: Constructor::MakeDate(0),
                });
                prefer(
                    format!("IndR:{}>TextVal", self.name),
                    nt,
                    lookup(&g, "TextVal"),
                    WinCriteria::WinnerLarger,
                );
                prefer(
                    format!("IndR:{}>KwVal", self.name),
                    nt,
                    lookup(&g, "KwVal"),
                    WinCriteria::Always,
                );
                prefer(
                    format!("IndR:{}>TextValB", self.name),
                    nt,
                    lookup(&g, "TextValB"),
                    WinCriteria::Always,
                );
                prefer(
                    format!("IndR:{}>RangeTB", self.name),
                    nt,
                    lookup(&g, "RangeTB"),
                    WinCriteria::WinnerLarger,
                );
            }
            Shape::RangeBoxes => {
                let Some(connector) = lookup(&g, "Connector") else {
                    return base.clone();
                };
                productions.push(Production {
                    name: self.name.clone(),
                    head: nt,
                    components: vec![attr, connector, val, connector, val],
                    constraint: Constraint::And(vec![
                        Constraint::LeftWithin(0, 1, self.gap(0)),
                        Constraint::LeftWithin(1, 2, self.gap(1)),
                        Constraint::LeftWithin(2, 3, self.gap(2)),
                        Constraint::LeftWithin(3, 4, self.gap(3)),
                    ]),
                    constructor: Constructor::MakeRange {
                        attr: 0,
                        lo: 2,
                        hi: 4,
                    },
                });
                prefer(
                    format!("IndR:{}>RangeTB", self.name),
                    nt,
                    lookup(&g, "RangeTB"),
                    WinCriteria::WinnerLarger,
                );
                prefer(
                    format!("IndR:{}>KwVal", self.name),
                    nt,
                    lookup(&g, "KwVal"),
                    WinCriteria::Always,
                );
                prefer(
                    format!("IndR:{}>TextValB", self.name),
                    nt,
                    lookup(&g, "TextValB"),
                    WinCriteria::Always,
                );
            }
        }
        productions.push(Production {
            name: format!("CP<-{}", self.name),
            head: cp,
            components: vec![nt],
            constraint: Constraint::True,
            constructor: Constructor::Inherit(0),
        });
        g.with_additions(productions, preferences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::global_grammar;
    use metaform_core::BBox;

    fn text(id: u32, s: &str, left: i32, top: i32) -> Token {
        let w = 8 * s.len() as i32;
        Token::text(id, s, BBox::new(left, top, left + w, top + 16))
    }

    fn widget(id: u32, kind: TokenKind, name: &str, left: i32, top: i32) -> Token {
        Token::widget(id, kind, name, BBox::new(left, top, left + 80, top + 16))
    }

    #[test]
    fn descriptors_classify_text_roles() {
        assert_eq!(descriptor(&text(0, "Departure City", 0, 0)), "attr");
        assert_eq!(descriptor(&text(0, "/", 0, 0)), "sep");
        assert_eq!(descriptor(&text(0, "to", 0, 0)), "conn");
        assert_eq!(descriptor(&text(0, "miles", 0, 0)), "low");
        assert_eq!(descriptor(&widget(0, TokenKind::Textbox, "q", 0, 0)), "tb");
        assert_eq!(
            descriptor(&widget(0, TokenKind::SubmitButton, "go", 0, 0)),
            "btn"
        );
    }

    #[test]
    fn mines_trailing_label_arrangement() {
        // RightLabel residue: a textbox claimed only by KwVal, its
        // trailing label stranded with TextValB.
        let tokens = vec![
            widget(0, TokenKind::Textbox, "f1", 0, 0),
            text(1, "Keywords", 90, 0),
        ];
        let spans = vec![
            PatternSpan {
                symbol: "KwVal".into(),
                tokens: vec![TokenId(0)],
            },
            PatternSpan {
                symbol: "TextValB".into(),
                tokens: vec![TokenId(0), TokenId(1)],
            },
        ];
        let arrs = mine_page(&tokens, &[], &spans, &Proximity::default());
        assert_eq!(arrs.len(), 1);
        assert_eq!(arrs[0].signature, "tb attr");
        assert_eq!(arrs[0].gaps, vec![10]);
    }

    #[test]
    fn trusted_claims_suppress_mining() {
        // The same window, but claimed by a real pattern: no residue.
        let tokens = vec![
            text(0, "Author", 0, 0),
            widget(1, TokenKind::Textbox, "a", 60, 0),
        ];
        let spans = vec![PatternSpan {
            symbol: "TextVal".into(),
            tokens: vec![TokenId(0), TokenId(1)],
        }];
        assert!(mine_page(&tokens, &[], &spans, &Proximity::default()).is_empty());
    }

    #[test]
    fn mines_punctuated_date_boxes_with_label_reclaim() {
        // TwoBoxDate residue: TextVal (trusted) grabbed label+first
        // box, KwVal the others, the separators went missing. The
        // label-reclaim rule pulls the label back into the window.
        let tokens = vec![
            text(0, "Departing", 0, 0),
            widget(1, TokenKind::Textbox, "d_m", 80, 0),
            text(2, "/", 170, 0),
            widget(3, TokenKind::Textbox, "d_d", 185, 0),
            text(4, "/", 275, 0),
            widget(5, TokenKind::Textbox, "d_y", 290, 0),
        ];
        let spans = vec![
            PatternSpan {
                symbol: "TextVal".into(),
                tokens: vec![TokenId(0), TokenId(1)],
            },
            PatternSpan {
                symbol: "KwVal".into(),
                tokens: vec![TokenId(3)],
            },
            PatternSpan {
                symbol: "KwVal".into(),
                tokens: vec![TokenId(5)],
            },
        ];
        let arrs = mine_page(
            &tokens,
            &[TokenId(2), TokenId(4)],
            &spans,
            &Proximity::default(),
        );
        assert_eq!(arrs.len(), 1);
        assert_eq!(arrs[0].signature, "attr tb sep tb sep tb");
    }

    #[test]
    fn book_clusters_by_signature_with_page_support() {
        let mut book = ArrangementBook::new();
        let arr = Arrangement {
            signature: "tb attr".into(),
            descriptors: vec!["tb".into(), "attr".into()],
            gaps: vec![10],
        };
        book.absorb("p1", &arr);
        book.absorb("p1", &arr);
        let wider = Arrangement {
            gaps: vec![22],
            ..arr.clone()
        };
        book.absorb("p2", &wider);
        assert_eq!(book.len(), 1);
        let (_, cluster) = book.clusters().next().unwrap();
        assert_eq!(cluster.pages.len(), 2);
        assert_eq!(cluster.occurrences, 3);
        assert_eq!(cluster.max_gaps, vec![22]);
        assert!(synthesize("tb attr", cluster, 3).is_none(), "support gate");
        let cand = synthesize("tb attr", cluster, 2).expect("supported shape");
        assert_eq!(cand.name, "IndTbAttr");
        assert_eq!(cand.support, 2);
    }

    #[test]
    fn unmatched_signatures_synthesize_nothing() {
        let cluster = Cluster {
            descriptors: vec!["txt".into()],
            pages: ["a", "b", "c"].iter().map(|s| s.to_string()).collect(),
            occurrences: 3,
            max_gaps: vec![],
        };
        assert!(synthesize("txt", &cluster, 2).is_none());
    }

    #[test]
    fn applied_candidates_compile_through_the_single_gate() {
        let base = global_grammar();
        let baseline_prods = base.productions.len();
        for (descriptors, nt) in [
            (vec!["tb", "attr"], "IndTbAttr"),
            (vec!["sel", "attr"], "IndSelAttr"),
            (vec!["attr", "tb", "sep", "tb", "sep", "tb"], "IndDateBoxes"),
            (vec!["attr", "conn", "tb", "conn", "tb"], "IndRangeBoxes"),
        ] {
            let gaps = vec![30; descriptors.len() - 1];
            let cluster = Cluster {
                descriptors: descriptors.iter().map(|s| s.to_string()).collect(),
                pages: ["a", "b"].iter().map(|s| s.to_string()).collect(),
                occurrences: 2,
                max_gaps: gaps,
            };
            let cand = synthesize(&descriptors.join(" "), &cluster, 2).expect("known shape");
            assert_eq!(cand.name, nt);
            let extended = cand.apply(&base);
            assert!(extended.productions.len() > baseline_prods, "{nt} applied");
            assert!(extended.symbols.lookup(nt).is_some());
            let compiled = extended.compile().expect("candidate schedules");
            assert!(compiled.grammar().symbols.lookup(nt).is_some());
            // Idempotent: re-applying is a no-op.
            let again = cand.apply(compiled.grammar());
            assert_eq!(
                again.productions.len(),
                compiled.grammar().productions.len()
            );
        }
    }
}
