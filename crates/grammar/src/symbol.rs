//! The grammar alphabet: terminals and nonterminals.

use metaform_core::TokenKind;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a symbol within one grammar's symbol table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Whether a symbol is a terminal (token kind) or a nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolKind {
    /// Terminal symbol bound to a token kind.
    Terminal(TokenKind),
    /// Nonterminal defined by productions.
    NonTerminal,
}

/// Interned symbol names and kinds. The 16 terminals are pre-registered
/// at ids `0..16` in [`TokenKind::ALL`] order.
#[derive(Clone, Debug)]
pub struct SymbolTable {
    names: Vec<String>,
    kinds: Vec<SymbolKind>,
    by_name: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates a table pre-populated with all terminal symbols.
    pub fn new() -> Self {
        let mut t = SymbolTable {
            names: Vec::new(),
            kinds: Vec::new(),
            by_name: HashMap::new(),
        };
        for kind in TokenKind::ALL {
            let id = SymbolId(t.names.len() as u32);
            t.names.push(kind.name().to_string());
            t.kinds.push(SymbolKind::Terminal(kind));
            t.by_name.insert(kind.name().to_string(), id);
        }
        t
    }

    /// The terminal symbol for a token kind.
    pub fn terminal(&self, kind: TokenKind) -> SymbolId {
        // Terminals were registered in ALL order.
        let idx = TokenKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("every kind is in ALL");
        SymbolId(idx as u32)
    }

    /// Interns a nonterminal, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.kinds.push(SymbolKind::NonTerminal);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Symbol name.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Symbol kind.
    pub fn kind(&self, id: SymbolId) -> SymbolKind {
        self.kinds[id.index()]
    }

    /// True for terminal symbols.
    pub fn is_terminal(&self, id: SymbolId) -> bool {
        matches!(self.kinds[id.index()], SymbolKind::Terminal(_))
    }

    /// Total number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: terminals are pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of nonterminals.
    pub fn nonterminal_count(&self) -> usize {
        self.len() - TokenKind::ALL.len()
    }

    /// Iterates all symbol ids.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> {
        (0..self.names.len() as u32).map(SymbolId)
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_preregistered() {
        let t = SymbolTable::new();
        assert_eq!(t.len(), 16);
        assert_eq!(t.nonterminal_count(), 0);
        let tb = t.terminal(TokenKind::Textbox);
        assert_eq!(t.name(tb), "textbox");
        assert!(t.is_terminal(tb));
        assert_eq!(t.kind(tb), SymbolKind::Terminal(TokenKind::Textbox));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Attr");
        let b = t.intern("Attr");
        assert_eq!(a, b);
        assert_eq!(t.nonterminal_count(), 1);
        assert!(!t.is_terminal(a));
        assert_eq!(t.lookup("Attr"), Some(a));
        assert_eq!(t.lookup("Missing"), None);
    }

    #[test]
    fn every_terminal_resolvable() {
        let t = SymbolTable::new();
        for kind in TokenKind::ALL {
            let id = t.terminal(kind);
            assert_eq!(t.kind(id), SymbolKind::Terminal(kind));
            assert_eq!(t.lookup(kind.name()), Some(id));
        }
    }
}
