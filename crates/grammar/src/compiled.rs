//! The compile-once grammar artifact.
//!
//! A [`Grammar`] is a *description*; a [`CompiledGrammar`] is the
//! immutable, parse-ready form of it: the validated 2P [`Schedule`],
//! a densified per-head production table, and a per-symbol preference
//! index (so enforcement at each scheduled symbol is a direct lookup
//! instead of a scan over every preference). Compiling is the only
//! fallible step on the way to parsing — once a `CompiledGrammar`
//! exists, parsing cannot fail.
//!
//! The artifact is plain immutable data, hence `Send + Sync`: wrap it
//! in an `Arc` and share it across however many parser sessions or
//! worker threads the workload needs. Compile once, parse many.

use crate::grammar::{Grammar, GrammarError};
use crate::preference::PrefId;
use crate::production::ProdId;
use crate::schedule::{build_schedule, Schedule};
use crate::symbol::SymbolId;
use std::sync::atomic::{AtomicUsize, Ordering};

static COMPILE_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of [`CompiledGrammar`] constructions. Batch
/// paths are expected to keep this at one; tests and benches assert
/// the compile-once contract through it.
pub fn compile_count() -> usize {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// An immutable, validated, parse-ready grammar (see module docs).
#[derive(Debug)]
pub struct CompiledGrammar {
    grammar: Grammar,
    schedule: Schedule,
    /// Preferences involving each symbol (as winner or loser), in
    /// declaration order — the enforcement points of Figure 11's inner
    /// loop, pre-resolved per symbol.
    prefs_by_symbol: Vec<Vec<PrefId>>,
    /// Productions per head symbol, flattened dense: ids of symbol `s`
    /// live at `head_prods[head_ranges[s].0 .. head_ranges[s].1]`.
    head_prods: Vec<ProdId>,
    head_ranges: Vec<(u32, u32)>,
    /// Widest production right-hand side — sessions size their
    /// enumeration scratch from this.
    max_arity: usize,
}

impl CompiledGrammar {
    /// Compiles a borrowed grammar (cloning it into the artifact).
    /// Fails only when the production graph cannot be scheduled — the
    /// same condition [`crate::GrammarBuilder::build`] rejects.
    pub fn new(grammar: &Grammar) -> Result<Self, GrammarError> {
        Self::build(grammar.clone())
    }

    fn build(mut grammar: Grammar) -> Result<Self, GrammarError> {
        // Compile is the only fallible step, so it owns the integrity
        // gate: re-validate and re-index even grammars whose
        // production/preference lists were extended after the builder
        // ran (hot-added induction candidates, deserialized DSL).
        // Without this, the dense head table below would silently miss
        // appended productions, and out-of-bounds symbol or slot
        // references would surface as panics mid-parse.
        grammar.validate_and_reindex()?;
        let schedule = build_schedule(&grammar)?;
        let prefs_by_symbol = preference_index(&grammar);
        let symbol_count = grammar.symbols.len();
        let mut head_prods = Vec::with_capacity(grammar.productions.len());
        let mut head_ranges = Vec::with_capacity(symbol_count);
        for s in 0..symbol_count {
            let start = head_prods.len() as u32;
            head_prods.extend_from_slice(grammar.productions_of(SymbolId(s as u32)));
            head_ranges.push((start, head_prods.len() as u32));
        }
        let max_arity = grammar
            .productions
            .iter()
            .map(|p| p.arity())
            .max()
            .unwrap_or(0);
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        Ok(CompiledGrammar {
            grammar,
            schedule,
            prefs_by_symbol,
            head_prods,
            head_ranges,
            max_arity,
        })
    }

    /// The source grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The validated instantiation schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Preferences involving `symbol` (as winner or loser), in
    /// declaration order.
    pub fn prefs_involving(&self, symbol: SymbolId) -> &[PrefId] {
        self.prefs_by_symbol
            .get(symbol.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The per-symbol preference index, indexed by symbol id.
    pub fn preference_index(&self) -> &[Vec<PrefId>] {
        &self.prefs_by_symbol
    }

    /// Productions whose head is `symbol`, from the dense table.
    pub fn productions_of(&self, symbol: SymbolId) -> &[ProdId] {
        match self.head_ranges.get(symbol.index()) {
            Some(&(lo, hi)) => &self.head_prods[lo as usize..hi as usize],
            None => &[],
        }
    }

    /// Widest production right-hand side in the grammar.
    pub fn max_arity(&self) -> usize {
        self.max_arity
    }
}

impl Grammar {
    /// Compiles this grammar into its immutable parse-ready form —
    /// the only fallible step between grammar construction and
    /// parsing. See [`CompiledGrammar`].
    pub fn compile(self) -> Result<CompiledGrammar, GrammarError> {
        CompiledGrammar::build(self)
    }
}

/// Builds the per-symbol preference index for a grammar: for every
/// symbol, the declaration-ordered ids of preferences naming it as
/// winner or loser.
pub fn preference_index(grammar: &Grammar) -> Vec<Vec<PrefId>> {
    let mut index = vec![Vec::new(); grammar.symbols.len()];
    for (i, pref) in grammar.preferences.iter().enumerate() {
        let id = PrefId(i as u32);
        if let Some(list) = index.get_mut(pref.winner.index()) {
            list.push(id);
        }
        if pref.loser != pref.winner {
            if let Some(list) = index.get_mut(pref.loser.index()) {
                list.push(id);
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::paper_example_grammar;
    use crate::symbol::SymbolKind;
    use crate::{GrammarError, Production};

    #[test]
    fn compile_preserves_grammar_and_schedule() {
        let g = paper_example_grammar();
        let direct = build_schedule(&g).unwrap();
        let compiled = g.clone().compile().expect("schedulable");
        assert_eq!(compiled.schedule().order, direct.order);
        assert_eq!(compiled.grammar().productions.len(), g.productions.len());
        assert!(compiled.max_arity() >= 2);
    }

    #[test]
    fn dense_production_table_matches_grammar() {
        let g = paper_example_grammar();
        let compiled = CompiledGrammar::new(&g).unwrap();
        for s in 0..g.symbols.len() {
            let sym = SymbolId(s as u32);
            assert_eq!(compiled.productions_of(sym), g.productions_of(sym));
        }
    }

    #[test]
    fn preference_index_covers_every_preference_once_per_side() {
        let g = paper_example_grammar();
        let compiled = CompiledGrammar::new(&g).unwrap();
        for (i, pref) in g.preferences.iter().enumerate() {
            let id = PrefId(i as u32);
            assert!(compiled.prefs_involving(pref.winner).contains(&id));
            assert!(compiled.prefs_involving(pref.loser).contains(&id));
        }
        // Index lists stay in declaration order (ascending ids).
        for s in 0..g.symbols.len() {
            let prefs = compiled.prefs_involving(SymbolId(s as u32));
            assert!(prefs.windows(2).all(|w| w[0] < w[1]));
            // Only symbols actually named by a preference appear.
            if !prefs.is_empty() {
                assert_eq!(g.symbols.kind(SymbolId(s as u32)), SymbolKind::NonTerminal);
            }
        }
    }

    #[test]
    fn compiled_grammar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledGrammar>();
    }

    #[test]
    fn unschedulable_grammar_fails_to_compile() {
        // Hand-craft mutual recursion between two distinct
        // nonterminals (the builder rejects this up front, so go
        // through the public fields the way a deserializer might).
        let mut g = paper_example_grammar();
        let a = g.productions[0].head;
        let b = g
            .symbols
            .ids()
            .find(|&s| s != a && g.symbols.kind(s) == SymbolKind::NonTerminal)
            .expect("a second nonterminal");
        let template = g.productions[0].clone();
        g.productions.push(Production {
            name: "cycle-a".into(),
            head: a,
            components: vec![b],
            ..template.clone()
        });
        g.productions.push(Production {
            name: "cycle-b".into(),
            head: b,
            components: vec![a],
            ..template
        });
        let err = g.compile().expect_err("mutual recursion cannot schedule");
        assert!(matches!(err, GrammarError::CyclicProductions(_)));
    }
}
