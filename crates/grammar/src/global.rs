//! The derived global grammar.
//!
//! The paper derives a single grammar from the Basic dataset — "82
//! productions with 39 nonterminals and 16 terminals" summarizing the
//! 21 most common condition patterns (§6) — and shows it generalizes to
//! new sources, new domains, and random sources. This module is our
//! version of that artifact: a catalog of condition patterns expressed
//! as productions over topological constraints, plus the precedence
//! conventions expressed as preferences.
//!
//! Also provided: [`paper_example_grammar`], the 11-production grammar
//! *G* of paper Figure 6, used in walk-through examples and the
//! ambiguity experiments.

use crate::compiled::CompiledGrammar;
use crate::constraint::{Constraint as C, Pred};
use crate::constructor::Constructor as K;
use crate::grammar::{Grammar, GrammarBuilder};
use crate::preference::{ConflictCond, WinCriteria};
use metaform_core::{DomainKind, TokenKind};
use std::sync::{Arc, OnceLock};

/// Returns the compiled global grammar, built at most once per
/// process and shared behind an `Arc` (see [`CompiledGrammar`]).
/// Every caller — extractors, sessions, worker threads — gets a
/// handle to the same artifact; the grammar is constructed, validated,
/// and scheduled exactly once no matter how many times this is called.
pub fn global_compiled() -> Arc<CompiledGrammar> {
    static GLOBAL: OnceLock<Arc<CompiledGrammar>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            Arc::new(
                build_global_grammar()
                    .compile()
                    .expect("derived global grammar is schedulable"),
            )
        })
        .clone()
}

/// Builds the global derived grammar used by the form extractor.
///
/// Kept for source compatibility: returns an owned clone of the
/// process-wide cached grammar. Callers that parse should prefer
/// [`global_compiled`], which shares the already-scheduled artifact
/// instead of cloning the description.
pub fn global_grammar() -> Grammar {
    global_compiled().grammar().clone()
}

fn build_global_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("QI");

    // ---- terminals ----
    let text = b.t(TokenKind::Text);
    let textbox = b.t(TokenKind::Textbox);
    let password = b.t(TokenKind::Password);
    let textarea = b.t(TokenKind::TextArea);
    let sel = b.t(TokenKind::SelectionList);
    let numl = b.t(TokenKind::NumberList);
    let monl = b.t(TokenKind::MonthList);
    let dayl = b.t(TokenKind::DayList);
    let yearl = b.t(TokenKind::YearList);
    let radio = b.t(TokenKind::Radiobutton);
    let checkbox = b.t(TokenKind::Checkbox);
    let submit = b.t(TokenKind::SubmitButton);
    let reset = b.t(TokenKind::ResetButton);
    let image = b.t(TokenKind::ImageInput);
    let file = b.t(TokenKind::FileInput);

    // ---- nonterminals ----
    let attr = b.nt("Attr");
    let val = b.nt("Val");
    let connector = b.nt("Connector");
    let op_select = b.nt("OpSelect");
    let rbu = b.nt("RBU");
    let rblist = b.nt("RBList");
    let cbu = b.nt("CBU");
    let cblist = b.nt("CBList");
    let op = b.nt("Op");
    let text_val = b.nt("TextVal");
    let text_op = b.nt("TextOp");
    let text_op_sel = b.nt("TextOpSel");
    let sel_val = b.nt("SelVal");
    let num_cond = b.nt("NumCond");
    let enum_rb = b.nt("EnumRB");
    let enum_cb = b.nt("EnumCB");
    let bool_cb = b.nt("BoolCB");
    let range_tb = b.nt("RangeTB");
    let range_sel = b.nt("RangeSel");
    let year_range = b.nt("YearRange");
    let date_mdy = b.nt("DateMDY");
    let date_md = b.nt("DateMD");
    let unit_tb = b.nt("UnitTB");
    let kw_val = b.nt("KwVal");
    let self_sel = b.nt("SelfSel");
    let action = b.nt("Action");
    let action_row = b.nt("ActionRow");
    let cp = b.nt("CP");
    let hqi = b.nt("HQI");
    let qi = b.nt("QI");

    // ---- units and helpers ----
    b.production(
        "Attr<-text",
        attr,
        vec![text],
        C::Is(0, Pred::AttrLike),
        K::MakeAttr(0),
    );
    for (name, term) in [
        ("Val<-textbox", textbox),
        ("Val<-password", password),
        ("Val<-textarea", textarea),
    ] {
        b.production(name, val, vec![term], C::True, K::Inherit(0));
    }
    b.production(
        "Connector<-text",
        connector,
        vec![text],
        C::Is(0, Pred::RangeConnector),
        K::TextOf(0),
    );
    b.production(
        "OpSelect<-select",
        op_select,
        vec![sel],
        C::Is(0, Pred::OptionsOpsLike),
        K::OpsFromOptions(0),
    );

    // Radio/checkbox units: glyph left-adjacent and tightly bound to its
    // caption (paper pattern: "text and its preceding radio button are
    // usually tightly bounded together", Example 4).
    b.production(
        "RBU",
        rbu,
        vec![radio, text],
        C::all([C::Left(0, 1), C::MaxDist(0, 1, 20)]),
        K::TextOf(1),
    );
    b.production(
        "CBU",
        cbu,
        vec![checkbox, text],
        C::all([C::Left(0, 1), C::MaxDist(0, 1, 20)]),
        K::TextOf(1),
    );
    // Lists grow horizontally or stack vertically.
    b.production("RBList<-RBU", rblist, vec![rbu], C::True, K::ListStart(0));
    b.production(
        "RBList<-RBList,RBU",
        rblist,
        vec![rblist, rbu],
        C::Or(vec![C::LeftWithin(0, 1, 80), C::AboveWithin(0, 1, 14)]),
        K::ListAppend { list: 0, unit: 1 },
    );
    b.production("CBList<-CBU", cblist, vec![cbu], C::True, K::ListStart(0));
    b.production(
        "CBList<-CBList,CBU",
        cblist,
        vec![cblist, cbu],
        C::Or(vec![C::LeftWithin(0, 1, 80), C::AboveWithin(0, 1, 14)]),
        K::ListAppend { list: 0, unit: 1 },
    );
    b.production("Op<-RBList", op, vec![rblist], C::True, K::Inherit(0));

    // ---- condition patterns ----
    // 1/2/3: attribute next to a free-text field.
    b.production(
        "TextVal:left",
        text_val,
        vec![attr, val],
        C::Left(0, 1),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    b.production(
        "TextVal:above",
        text_val,
        vec![attr, val],
        C::Above(0, 1),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    // The label-below-box arrangement is rare and conflicts with the
    // dominant patterns (the next row's label sits right below this
    // row's box), so it is a separate, lower-precedence symbol.
    let text_val_b = b.nt("TextValB");
    b.production(
        "TextVal:below",
        text_val_b,
        vec![attr, val],
        C::Below(0, 1),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    // 4/5: textbox with a radio operator list below (paper P5, Qam).
    b.production(
        "TextOp:attr-left",
        text_op,
        vec![attr, val, op],
        C::all([C::Left(0, 1), C::Below(2, 1)]),
        K::MakeCond {
            attr: Some(0),
            ops: Some(2),
            val: 1,
            kind: None,
        },
    );
    b.production(
        "TextOp:attr-above",
        text_op,
        vec![attr, val, op],
        C::all([C::Above(0, 1), C::Below(2, 1)]),
        K::MakeCond {
            attr: Some(0),
            ops: Some(2),
            val: 1,
            kind: None,
        },
    );
    // 6/7: operator selection list before/after the field.
    b.production(
        "TextOpSel:op-first",
        text_op_sel,
        vec![attr, op_select, val],
        C::all([C::LeftWithin(0, 1, 90), C::LeftWithin(1, 2, 40)]),
        K::MakeCond {
            attr: Some(0),
            ops: Some(1),
            val: 2,
            kind: None,
        },
    );
    b.production(
        "TextOpSel:op-last",
        text_op_sel,
        vec![attr, val, op_select],
        C::all([C::Left(0, 1), C::LeftWithin(1, 2, 40)]),
        K::MakeCond {
            attr: Some(0),
            ops: Some(2),
            val: 1,
            kind: None,
        },
    );
    // 8/9: attribute with a generic selection list.
    for (name, c) in [
        ("SelVal:left", C::Left(0, 1)),
        ("SelVal:above", C::Above(0, 1)),
    ] {
        b.production(
            name,
            sel_val,
            vec![attr, sel],
            c,
            K::MakeCond {
                attr: Some(0),
                ops: None,
                val: 1,
                kind: None,
            },
        );
    }
    // 10/11: attribute with a single date-part list (e.g. "Year:").
    for (name, term) in [
        ("SelVal:year", yearl),
        ("SelVal:month", monl),
        ("SelVal:day", dayl),
    ] {
        b.production(
            name,
            sel_val,
            vec![attr, term],
            C::Or(vec![C::Left(0, 1), C::Above(0, 1)]),
            K::MakeCond {
                attr: Some(0),
                ops: None,
                val: 1,
                kind: Some(DomainKind::Enumerated),
            },
        );
    }
    // 12/13: attribute with a numeric quantity list (passengers).
    for (name, c) in [
        ("NumCond:left", C::Left(0, 1)),
        ("NumCond:above", C::Above(0, 1)),
    ] {
        b.production(
            name,
            num_cond,
            vec![attr, numl],
            c,
            K::MakeCond {
                attr: Some(0),
                ops: None,
                val: 1,
                kind: Some(DomainKind::Numeric),
            },
        );
    }
    // 14/15/16: enumerated radio groups, labeled or bare.
    b.production(
        "EnumRB:left",
        enum_rb,
        vec![attr, rblist],
        C::all([C::LeftWithin(0, 1, 90), C::Is(1, Pred::MinOps(2))]),
        K::MakeEnumCond {
            attr: Some(0),
            list: 1,
        },
    );
    b.production(
        "EnumRB:above",
        enum_rb,
        vec![attr, rblist],
        C::all([C::AboveWithin(0, 1, 16), C::Is(1, Pred::MinOps(2))]),
        K::MakeEnumCond {
            attr: Some(0),
            list: 1,
        },
    );
    b.production(
        "EnumRB:bare",
        enum_rb,
        vec![rblist],
        C::Is(0, Pred::MinOps(2)),
        K::MakeEnumCond {
            attr: None,
            list: 0,
        },
    );
    // 17/18: enumerated checkbox groups.
    b.production(
        "EnumCB:left",
        enum_cb,
        vec![attr, cblist],
        C::all([C::LeftWithin(0, 1, 90), C::Is(1, Pred::MinOps(2))]),
        K::MakeEnumCond {
            attr: Some(0),
            list: 1,
        },
    );
    b.production(
        "EnumCB:above",
        enum_cb,
        vec![attr, cblist],
        C::all([C::AboveWithin(0, 1, 16), C::Is(1, Pred::MinOps(2))]),
        K::MakeEnumCond {
            attr: Some(0),
            list: 1,
        },
    );
    // 19: boolean single checkbox ("Hardcover only").
    b.production("BoolCB", bool_cb, vec![cbu], C::True, K::MakeBoolCond(0));
    // 20/21: textbox ranges, with or without a connector word.
    b.production(
        "RangeTB:connector",
        range_tb,
        vec![attr, val, connector, val],
        C::all([C::Left(0, 1), C::Left(1, 2), C::Left(2, 3)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 3,
        },
    );
    // Connector-less ranges need the two boxes tightly adjacent, or a
    // city-pair table ("From [ ] To [ ]") would read as a range.
    b.production(
        "RangeTB:bare",
        range_tb,
        vec![attr, val, val],
        C::all([C::Left(0, 1), C::LeftWithin(1, 2, 14)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 2,
        },
    );
    // 22/23: selection-list ranges (price between $x and $y).
    b.production(
        "RangeSel:connector",
        range_sel,
        vec![attr, numl, connector, numl],
        C::all([C::LeftWithin(0, 1, 90), C::Left(1, 2), C::Left(2, 3)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 3,
        },
    );
    b.production(
        "RangeSel:bare",
        range_sel,
        vec![attr, numl, numl],
        C::all([C::LeftWithin(0, 1, 90), C::LeftWithin(1, 2, 24)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 2,
        },
    );
    // 24/25: year ranges (automobiles).
    b.production(
        "YearRange:connector",
        year_range,
        vec![attr, yearl, connector, yearl],
        C::all([C::LeftWithin(0, 1, 90), C::Left(1, 2), C::Left(2, 3)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 3,
        },
    );
    b.production(
        "YearRange:bare",
        year_range,
        vec![attr, yearl, yearl],
        C::all([C::LeftWithin(0, 1, 90), C::LeftWithin(1, 2, 24)]),
        K::MakeRange {
            attr: 0,
            lo: 1,
            hi: 2,
        },
    );
    // 26/27/28/29: date conditions from part lists.
    b.production(
        "DateMDY:left",
        date_mdy,
        vec![attr, monl, dayl, yearl],
        C::all([
            C::LeftWithin(0, 1, 90),
            C::LeftWithin(1, 2, 24),
            C::LeftWithin(2, 3, 24),
        ]),
        K::MakeDate(0),
    );
    b.production(
        "DateMDY:above",
        date_mdy,
        vec![attr, monl, dayl, yearl],
        C::all([
            C::AboveWithin(0, 1, 16),
            C::LeftWithin(1, 2, 24),
            C::LeftWithin(2, 3, 24),
        ]),
        K::MakeDate(0),
    );
    b.production(
        "DateMD:left",
        date_md,
        vec![attr, monl, dayl],
        C::all([C::LeftWithin(0, 1, 90), C::LeftWithin(1, 2, 24)]),
        K::MakeDate(0),
    );
    b.production(
        "DateMD:above",
        date_md,
        vec![attr, monl, dayl],
        C::all([C::AboveWithin(0, 1, 16), C::LeftWithin(1, 2, 24)]),
        K::MakeDate(0),
    );
    // 30: textbox with trailing unit text ("within [ ] miles").
    b.production(
        "UnitTB",
        unit_tb,
        vec![attr, val, text],
        C::all([
            C::Left(0, 1),
            C::Left(1, 2),
            C::Is(2, Pred::AttrLike),
            C::Is(2, Pred::MaxWords(4)),
            // Unit words are lowercase; a capitalized trailing text is
            // the next field's label, not a unit.
            C::Is(2, Pred::LowercaseText),
        ]),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    // 31/32: unlabeled fallbacks — a bare keyword box, a bare select.
    b.production(
        "KwVal<-textbox",
        kw_val,
        vec![textbox],
        C::True,
        K::MakeUnlabeledCond(0),
    );
    b.production(
        "KwVal<-textarea",
        kw_val,
        vec![textarea],
        C::True,
        K::MakeUnlabeledCond(0),
    );
    b.production(
        "SelfSel<-select",
        self_sel,
        vec![sel],
        C::Not(Box::new(C::Is(0, Pred::OptionsOpsLike))),
        K::MakeUnlabeledCond(0),
    );
    b.production(
        "SelfSel<-number",
        self_sel,
        vec![numl],
        C::True,
        K::MakeUnlabeledCond(0),
    );

    // ---- buttons (no conditions, but cover the tokens) ----
    for (name, term) in [
        ("Action<-submit", submit),
        ("Action<-reset", reset),
        ("Action<-image", image),
        ("Action<-file", file),
    ] {
        b.production(name, action, vec![term], C::True, K::Group);
    }
    b.production(
        "ActionRow<-Action",
        action_row,
        vec![action],
        C::True,
        K::Group,
    );
    b.production(
        "ActionRow<-ActionRow,Action",
        action_row,
        vec![action_row, action],
        C::LeftWithin(0, 1, 200),
        K::Group,
    );

    // ---- condition-pattern alternatives ----
    for (name, sym) in [
        ("CP<-TextOp", text_op),
        ("CP<-TextOpSel", text_op_sel),
        ("CP<-RangeTB", range_tb),
        ("CP<-RangeSel", range_sel),
        ("CP<-YearRange", year_range),
        ("CP<-DateMDY", date_mdy),
        ("CP<-DateMD", date_md),
        ("CP<-UnitTB", unit_tb),
        ("CP<-TextVal", text_val),
        ("CP<-TextValB", text_val_b),
        ("CP<-SelVal", sel_val),
        ("CP<-NumCond", num_cond),
        ("CP<-EnumRB", enum_rb),
        ("CP<-EnumCB", enum_cb),
        ("CP<-BoolCB", bool_cb),
        ("CP<-KwVal", kw_val),
        ("CP<-SelfSel", self_sel),
    ] {
        b.production(name, cp, vec![sym], C::True, K::Inherit(0));
    }

    // ---- form patterns (paper P1/P2): rows of CPs, stacked rows ----
    b.production("HQI<-CP", hqi, vec![cp], C::True, K::CollectConds);
    // Capped below the width of any real condition so a row chain
    // cannot skip over a middle condition (exponential blow-up).
    b.production(
        "HQI<-HQI,CP",
        hqi,
        vec![hqi, cp],
        C::LeftWithin(0, 1, 120),
        K::CollectConds,
    );
    b.production(
        "HQI<-ActionRow",
        hqi,
        vec![action_row],
        C::True,
        K::CollectConds,
    );
    b.production(
        "HQI<-HQI,ActionRow",
        hqi,
        vec![hqi, action_row],
        C::LeftWithin(0, 1, 120),
        K::CollectConds,
    );
    b.production("QI<-HQI", qi, vec![hqi], C::True, K::CollectConds);
    // Adjacency, not proximity: the gap must be smaller than one line
    // height (16px) so a chain can never skip over an interposed row —
    // otherwise the number of row-subsets explodes exponentially.
    b.production(
        "QI<-QI,HQI",
        qi,
        vec![qi, hqi],
        C::AboveWithin(0, 1, 12),
        K::CollectConds,
    );

    // ---- preferences: the precedence conventions ----
    use ConflictCond::{LoserSubsumed, Overlap};
    use WinCriteria::{Always, WinnerLarger, WinnerTighter};
    // Captions bind to their glyphs (paper R1).
    b.preference("R1:RBU>Attr", rbu, attr, Overlap, Always);
    b.preference("R2:CBU>Attr", cbu, attr, Overlap, Always);
    // Longer lists win (paper R2).
    b.preference(
        "R3:RBList-longer",
        rblist,
        rblist,
        LoserSubsumed,
        WinnerLarger,
    );
    b.preference(
        "R4:CBList-longer",
        cblist,
        cblist,
        LoserSubsumed,
        WinnerLarger,
    );
    // Richer condition interpretations beat poorer ones on shared tokens.
    b.preference(
        "R5:TextOp>TextVal",
        text_op,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference("R6:TextOp>EnumRB", text_op, enum_rb, Overlap, WinnerLarger);
    b.preference(
        "R7:TextOpSel>SelVal",
        text_op_sel,
        sel_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R8:TextOpSel>TextVal",
        text_op_sel,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R9:RangeTB>TextVal",
        range_tb,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R10:RangeTB>UnitTB",
        range_tb,
        unit_tb,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R11:UnitTB>TextVal",
        unit_tb,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R12:RangeSel>NumCond",
        range_sel,
        num_cond,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R13:RangeSel>SelfSel",
        range_sel,
        self_sel,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R14:YearRange>SelVal",
        year_range,
        sel_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R15:DateMDY>SelVal",
        date_mdy,
        sel_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R16:DateMDY>DateMD",
        date_mdy,
        date_md,
        LoserSubsumed,
        WinnerLarger,
    );
    b.preference("R17:DateMD>SelVal", date_md, sel_val, Overlap, WinnerLarger);
    b.preference(
        "R18:DateMDY>SelfSel",
        date_mdy,
        self_sel,
        Overlap,
        WinnerLarger,
    );
    b.preference("R19:EnumCB>BoolCB", enum_cb, bool_cb, Overlap, WinnerLarger);
    // Dominant arrangements beat the rare label-below one.
    b.preference(
        "R34:TextVal>TextValB",
        text_val,
        text_val_b,
        Overlap,
        Always,
    );
    b.preference(
        "R35:TextOp>TextValB",
        text_op,
        text_val_b,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R36:RangeTB>TextValB",
        range_tb,
        text_val_b,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R37:UnitTB>TextValB",
        unit_tb,
        text_val_b,
        Overlap,
        WinnerLarger,
    );
    b.preference("R38:TextValB>KwVal", text_val_b, kw_val, Overlap, Always);
    // Labeled interpretations beat unlabeled fallbacks.
    b.preference("R20:TextVal>KwVal", text_val, kw_val, Overlap, Always);
    b.preference("R21:TextOp>KwVal", text_op, kw_val, Overlap, Always);
    b.preference("R22:TextOpSel>KwVal", text_op_sel, kw_val, Overlap, Always);
    b.preference("R23:RangeTB>KwVal", range_tb, kw_val, Overlap, Always);
    b.preference("R24:UnitTB>KwVal", unit_tb, kw_val, Overlap, Always);
    b.preference("R25:SelVal>SelfSel", sel_val, self_sel, Overlap, Always);
    b.preference("R26:NumCond>SelfSel", num_cond, self_sel, Overlap, Always);
    // Competing labelings: the tighter pairing wins — also across
    // pattern types (a label reads with the widget beside it before
    // the widget below it; see Chart::spread).
    b.preference(
        "R27:TextVal-tighter",
        text_val,
        text_val,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R28:SelVal-tighter",
        sel_val,
        sel_val,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R39:NumCond-tighter",
        num_cond,
        num_cond,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R40:SelVal>TextVal",
        sel_val,
        text_val,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R41:TextVal>SelVal",
        text_val,
        sel_val,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R42:NumCond>TextVal",
        num_cond,
        text_val,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R43:TextVal>NumCond",
        text_val,
        num_cond,
        Overlap,
        WinnerTighter,
    );
    b.preference(
        "R44:EnumRB>TextVal",
        enum_rb,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference(
        "R45:EnumCB>TextVal",
        enum_cb,
        text_val,
        Overlap,
        WinnerLarger,
    );
    b.preference("R46:EnumRB>SelVal", enum_rb, sel_val, Overlap, WinnerLarger);
    b.preference("R47:EnumCB>SelVal", enum_cb, sel_val, Overlap, WinnerLarger);
    // Labeled enumerations beat bare ones; longer assemblies beat
    // their fragments.
    b.preference(
        "R29:EnumRB-longer",
        enum_rb,
        enum_rb,
        LoserSubsumed,
        WinnerLarger,
    );
    b.preference(
        "R30:EnumCB-longer",
        enum_cb,
        enum_cb,
        LoserSubsumed,
        WinnerLarger,
    );
    b.preference("R31:HQI-longer", hqi, hqi, LoserSubsumed, WinnerLarger);
    b.preference("R32:QI-longer", qi, qi, LoserSubsumed, WinnerLarger);
    b.preference(
        "R33:ActionRow-longer",
        action_row,
        action_row,
        LoserSubsumed,
        WinnerLarger,
    );

    b.build()
        .expect("the global grammar is valid by construction")
}

/// The paper's Figure 6 example grammar *G* (11 productions), with real
/// spatial constraints and constructors. Used for walk-throughs and the
/// §4.2.1 ambiguity experiment.
pub fn paper_example_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("QI");
    let text = b.t(TokenKind::Text);
    let textbox = b.t(TokenKind::Textbox);
    let radio = b.t(TokenKind::Radiobutton);
    let (qi, hqi, cp) = (b.nt("QI"), b.nt("HQI"), b.nt("CP"));
    let (text_val, text_op, enum_rb) = (b.nt("TextVal"), b.nt("TextOp"), b.nt("EnumRB"));
    let (attr, op, val) = (b.nt("Attr"), b.nt("Op"), b.nt("Val"));
    let (rblist, rbu) = (b.nt("RBList"), b.nt("RBU"));

    b.production("P1a", qi, vec![hqi], C::True, K::CollectConds);
    b.production(
        "P1b",
        qi,
        vec![qi, hqi],
        C::AboveWithin(0, 1, 12),
        K::CollectConds,
    );
    b.production("P2a", hqi, vec![cp], C::True, K::CollectConds);
    b.production(
        "P2b",
        hqi,
        vec![hqi, cp],
        C::LeftWithin(0, 1, 120),
        K::CollectConds,
    );
    b.production("P3a", cp, vec![text_val], C::True, K::Inherit(0));
    b.production("P3b", cp, vec![text_op], C::True, K::Inherit(0));
    b.production("P3c", cp, vec![enum_rb], C::True, K::Inherit(0));
    b.production(
        "P4",
        text_val,
        vec![attr, val],
        C::Or(vec![C::Left(0, 1), C::Above(0, 1), C::Below(0, 1)]),
        K::MakeCond {
            attr: Some(0),
            ops: None,
            val: 1,
            kind: None,
        },
    );
    b.production(
        "P5",
        text_op,
        vec![attr, val, op],
        C::all([C::Left(0, 1), C::Below(2, 1)]),
        K::MakeCond {
            attr: Some(0),
            ops: Some(2),
            val: 1,
            kind: None,
        },
    );
    b.production("P6", op, vec![rblist], C::True, K::Inherit(0));
    b.production(
        "P7",
        enum_rb,
        vec![rblist],
        C::True,
        K::MakeEnumCond {
            attr: None,
            list: 0,
        },
    );
    b.production("P8a", rblist, vec![rbu], C::True, K::ListStart(0));
    b.production(
        "P8b",
        rblist,
        vec![rblist, rbu],
        C::Or(vec![C::LeftWithin(0, 1, 80), C::AboveWithin(0, 1, 14)]),
        K::ListAppend { list: 0, unit: 1 },
    );
    b.production(
        "P9",
        rbu,
        vec![radio, text],
        C::all([C::Left(0, 1), C::MaxDist(0, 1, 20)]),
        K::TextOf(1),
    );
    b.production(
        "P10",
        attr,
        vec![text],
        C::Is(0, Pred::AttrLike),
        K::MakeAttr(0),
    );
    b.production("P11", val, vec![textbox], C::True, K::Inherit(0));

    b.preference(
        "R1:RBU>Attr",
        rbu,
        attr,
        ConflictCond::Overlap,
        WinCriteria::Always,
    );
    b.preference(
        "R2:RBList-longer",
        rblist,
        rblist,
        ConflictCond::LoserSubsumed,
        WinCriteria::WinnerLarger,
    );
    // Beyond Figure 6: the two preferences that resolve the global
    // ambiguity of Figure 9 (the TextOp reading wins over the stacked
    // TextVal + EnumRB reading on shared tokens).
    b.preference(
        "R3:TextOp>TextVal",
        text_op,
        text_val,
        ConflictCond::Overlap,
        WinCriteria::WinnerLarger,
    );
    b.preference(
        "R4:TextOp>EnumRB",
        text_op,
        enum_rb,
        ConflictCond::Overlap,
        WinCriteria::WinnerLarger,
    );
    b.build().expect("paper grammar G is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::build_schedule;

    #[test]
    fn global_grammar_builds_and_schedules() {
        let g = global_grammar();
        let s = build_schedule(&g).expect("schedulable");
        assert_eq!(s.order.len(), g.symbols.nonterminal_count());
        // No preference should require rollback in the shipped grammar.
        assert_eq!(s.rollback_prefs().count(), 0, "{:?}", s.needs_rollback);
    }

    #[test]
    fn global_grammar_scale_matches_paper_ballpark() {
        let g = global_grammar();
        assert!(
            g.productions.len() >= 60,
            "expected a rich pattern catalog, got {}",
            g.productions.len()
        );
        assert!(g.symbols.nonterminal_count() >= 25);
        assert!(g.preferences.len() >= 20);
        assert_eq!(g.symbols.len() - g.symbols.nonterminal_count(), 16);
    }

    #[test]
    fn schedule_respects_key_precedences() {
        let g = global_grammar();
        let s = build_schedule(&g).unwrap();
        let pos = |name: &str| {
            let id = g.symbols.lookup(name).unwrap();
            s.order.iter().position(|&x| x == id).unwrap()
        };
        assert!(pos("RBU") < pos("Attr"), "R1 just-in-time");
        assert!(pos("TextOp") < pos("TextVal"));
        assert!(pos("TextVal") < pos("KwVal"));
        assert!(pos("DateMDY") < pos("SelVal"));
        assert!(pos("RangeSel") < pos("NumCond"));
        assert!(pos("CP") < pos("HQI"));
        assert!(pos("HQI") < pos("QI"));
    }

    #[test]
    fn paper_grammar_matches_figure6() {
        let g = paper_example_grammar();
        assert_eq!(g.productions.len(), 16, "11 rules, with alternatives split");
        assert_eq!(g.preferences.len(), 4);
        let s = build_schedule(&g).unwrap();
        assert_eq!(s.order.len(), g.symbols.nonterminal_count());
    }

    #[test]
    fn start_symbols() {
        let g = global_grammar();
        assert_eq!(g.symbols.name(g.start), "QI");
        let pg = paper_example_grammar();
        assert_eq!(pg.symbols.name(pg.start), "QI");
    }
}
