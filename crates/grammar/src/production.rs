//! Productions: ⟨Head, Components, Constraint, Constructor⟩ (paper
//! Definition 2).

use crate::constraint::Constraint;
use crate::constructor::Constructor;
use crate::symbol::SymbolId;
use std::fmt;

/// Identifier of a production within a grammar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProdId(pub u32);

impl ProdId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One production rule.
///
/// Components are an ordered list (the paper's multiset plus an
/// ordering so constraints can reference positions); the parser
/// enumerates ordered, token-disjoint combinations of instances.
#[derive(Clone, Debug)]
pub struct Production {
    /// Human-readable name for listings and debugging (e.g. `TextOp`).
    pub name: String,
    /// Head nonterminal.
    pub head: SymbolId,
    /// Component symbols in constraint-index order.
    pub components: Vec<SymbolId>,
    /// Spatial/lexical constraint over the components.
    pub constraint: Constraint,
    /// Payload constructor.
    pub constructor: Constructor,
}

impl Production {
    /// Arity (number of components).
    pub fn arity(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use metaform_core::TokenKind;

    #[test]
    fn production_shape() {
        let mut syms = SymbolTable::new();
        let attr = syms.intern("Attr");
        let text = syms.terminal(TokenKind::Text);
        let p = Production {
            name: "Attr".into(),
            head: attr,
            components: vec![text],
            constraint: Constraint::True,
            constructor: Constructor::MakeAttr(0),
        };
        assert_eq!(p.arity(), 1);
        assert_eq!(p.head, attr);
        assert_eq!(format!("{:?}", ProdId(3)), "P3");
    }
}
