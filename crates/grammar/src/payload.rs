//! Semantic payloads of parse-tree instances.
//!
//! Each instance carries, besides its bounding box and token span, the
//! semantic content the constructors have assembled so far — a caption,
//! an attribute, an operator list, a value domain, or finished
//! conditions. This is how "tagging" (paper §1) falls out of parsing:
//! the payload records the semantic role of the construct.

use metaform_core::{Condition, DomainSpec, Token, TokenKind};

/// Semantic content of an instance.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Payload {
    /// No semantic content (buttons, structural groups).
    #[default]
    None,
    /// Raw caption text (text tokens, radio/checkbox units).
    Text(String),
    /// An attribute label.
    Attr(String),
    /// An operator caption list (radio lists, operator selects).
    Ops(Vec<String>),
    /// A value domain.
    Val(DomainSpec),
    /// One assembled query condition.
    Cond(Condition),
    /// Several conditions (rows, whole interfaces).
    Conds(Vec<Condition>),
}

impl Payload {
    /// The initial payload of a terminal instance for `token`.
    pub fn for_token(token: &Token) -> Payload {
        match token.kind {
            TokenKind::Text => Payload::Text(token.sval.trim().to_string()),
            TokenKind::Textbox | TokenKind::Password | TokenKind::TextArea => {
                Payload::Val(DomainSpec::text())
            }
            TokenKind::SelectionList => Payload::Val(DomainSpec::enumerated(token.options.clone())),
            TokenKind::NumberList => Payload::Val(DomainSpec {
                kind: metaform_core::DomainKind::Numeric,
                values: token.options.clone(),
            }),
            TokenKind::MonthList | TokenKind::DayList | TokenKind::YearList => {
                Payload::Val(DomainSpec {
                    kind: metaform_core::DomainKind::Date,
                    values: token.options.clone(),
                })
            }
            _ => Payload::None,
        }
    }

    /// Caption text carried by `Text`/`Attr` payloads.
    pub fn text(&self) -> Option<&str> {
        match self {
            Payload::Text(s) | Payload::Attr(s) => Some(s),
            _ => None,
        }
    }

    /// Operator list carried by `Ops`.
    pub fn ops(&self) -> Option<&[String]> {
        match self {
            Payload::Ops(v) => Some(v),
            _ => None,
        }
    }

    /// Domain carried by `Val`.
    pub fn val(&self) -> Option<&DomainSpec> {
        match self {
            Payload::Val(d) => Some(d),
            _ => None,
        }
    }

    /// All conditions carried (one for `Cond`, many for `Conds`).
    pub fn conditions(&self) -> &[Condition] {
        match self {
            Payload::Cond(c) => std::slice::from_ref(c),
            Payload::Conds(v) => v,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{BBox, DomainKind};

    #[test]
    fn terminal_payloads() {
        let text = Token::text(0, " Author ", BBox::ZERO);
        assert_eq!(Payload::for_token(&text), Payload::Text("Author".into()));

        let tb = Token::widget(1, TokenKind::Textbox, "q", BBox::ZERO);
        assert_eq!(
            Payload::for_token(&tb).val().unwrap().kind,
            DomainKind::Text
        );

        let sel = Token::widget(2, TokenKind::SelectionList, "c", BBox::ZERO)
            .with_options(vec!["Coach".into(), "First".into()]);
        let val = Payload::for_token(&sel).val().unwrap().clone();
        assert_eq!(val.kind, DomainKind::Enumerated);
        assert_eq!(val.values, vec!["Coach", "First"]);

        let num = Token::widget(3, TokenKind::NumberList, "n", BBox::ZERO)
            .with_options(vec!["1".into(), "2".into()]);
        assert_eq!(
            Payload::for_token(&num).val().unwrap().kind,
            DomainKind::Numeric
        );

        let month = Token::widget(4, TokenKind::MonthList, "m", BBox::ZERO);
        assert_eq!(
            Payload::for_token(&month).val().unwrap().kind,
            DomainKind::Date
        );

        let radio = Token::widget(5, TokenKind::Radiobutton, "r", BBox::ZERO);
        assert_eq!(Payload::for_token(&radio), Payload::None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Payload::Text("x".into()).text(), Some("x"));
        assert_eq!(Payload::Attr("y".into()).text(), Some("y"));
        assert_eq!(Payload::None.text(), None);
        let ops = Payload::Ops(vec!["exact".into()]);
        assert_eq!(ops.ops().unwrap().len(), 1);
        assert!(Payload::None.conditions().is_empty());
        let c = Condition::new("a", vec![], DomainSpec::text(), vec![]);
        assert_eq!(
            Payload::Cond(c.clone()).conditions(),
            std::slice::from_ref(&c)
        );
        assert_eq!(
            Payload::Conds(vec![c.clone(), c.clone()])
                .conditions()
                .len(),
            2
        );
    }
}
