//! A textual format for 2P grammars.
//!
//! The paper's derived grammar was published "available online" as an
//! artifact; this module gives ours the same property: a grammar can be
//! serialized to a readable text form, edited, and loaded back — no
//! recompilation. Example:
//!
//! ```text
//! grammar QI
//!
//! # productions: NAME: HEAD <- COMPONENTS : CONSTRAINT => CONSTRUCTOR
//! Attr: Attr <- text : attrlike(0) => attr(0)
//! TextVal: TextVal <- Attr Val : left(0,1) => cond(attr=0, val=1)
//! QI-stack: QI <- QI HQI : abovewithin(0,1,12) => collect
//!
//! # preferences: NAME: WINNER > LOSER : CONDITION CRITERIA
//! R1: RBU > Attr : overlap always
//! R2: RBList > RBList : subsumed larger
//! ```

use crate::constraint::{Constraint, Pred};
use crate::constructor::Constructor;
use crate::grammar::{Grammar, GrammarBuilder, GrammarError};
use crate::preference::{ConflictCond, WinCriteria};
use metaform_core::{DomainKind, TokenKind};
use std::fmt::Write as _;

/// Errors raised while reading the textual form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DslError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, DslError> {
    Err(DslError {
        line,
        message: message.into(),
    })
}

/// Serializes a grammar to the textual form. Lossless for everything
/// the DSL can express (which is the full constraint/constructor
/// vocabulary the built-in grammars use).
pub fn to_dsl(g: &Grammar) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "grammar {}", g.symbols.name(g.start));
    let _ = writeln!(out);
    for p in &g.productions {
        let comps: Vec<&str> = p.components.iter().map(|&c| g.symbols.name(c)).collect();
        let _ = writeln!(
            out,
            "{}: {} <- {} : {} => {}",
            p.name,
            g.symbols.name(p.head),
            comps.join(" "),
            constraint_dsl(&p.constraint),
            constructor_dsl(&p.constructor),
        );
    }
    let _ = writeln!(out);
    for r in &g.preferences {
        let cond = match r.condition {
            ConflictCond::Overlap => "overlap",
            ConflictCond::LoserSubsumed => "subsumed",
        };
        let crit = match r.criteria {
            WinCriteria::Always => "always",
            WinCriteria::WinnerLarger => "larger",
            WinCriteria::WinnerTighter => "tighter",
        };
        let _ = writeln!(
            out,
            "{}: {} > {} : {} {}",
            r.name,
            g.symbols.name(r.winner),
            g.symbols.name(r.loser),
            cond,
            crit
        );
    }
    out
}

fn constraint_dsl(c: &Constraint) -> String {
    match c {
        Constraint::True => "true".into(),
        Constraint::Left(i, j) => format!("left({i},{j})"),
        Constraint::Above(i, j) => format!("above({i},{j})"),
        Constraint::Below(i, j) => format!("below({i},{j})"),
        Constraint::LeftWithin(i, j, px) => format!("leftwithin({i},{j},{px})"),
        Constraint::AboveWithin(i, j, px) => format!("abovewithin({i},{j},{px})"),
        Constraint::SameRow(i, j) => format!("samerow({i},{j})"),
        Constraint::SameCol(i, j) => format!("samecol({i},{j})"),
        Constraint::AlignBottom(i, j) => format!("alignbottom({i},{j})"),
        Constraint::AlignTop(i, j) => format!("aligntop({i},{j})"),
        Constraint::AlignLeft(i, j) => format!("alignleft({i},{j})"),
        Constraint::MaxDist(i, j, px) => format!("maxdist({i},{j},{px})"),
        Constraint::Is(i, p) => match p {
            Pred::AttrLike => format!("attrlike({i})"),
            Pred::OpsLike => format!("opslike({i})"),
            Pred::RangeConnector => format!("connector({i})"),
            Pred::MaxWords(n) => format!("maxwords({i},{n})"),
            Pred::OptionsOpsLike => format!("optionsops({i})"),
            Pred::LowercaseText => format!("lowercase({i})"),
            Pred::MinOps(n) => format!("minops({i},{n})"),
        },
        Constraint::And(cs) => cs.iter().map(maybe_paren).collect::<Vec<_>>().join(" & "),
        Constraint::Or(cs) => cs.iter().map(maybe_paren).collect::<Vec<_>>().join(" | "),
        Constraint::Not(c) => format!("!{}", maybe_paren(c)),
    }
}

fn maybe_paren(c: &Constraint) -> String {
    match c {
        Constraint::And(_) | Constraint::Or(_) => format!("({})", constraint_dsl(c)),
        _ => constraint_dsl(c),
    }
}

fn constructor_dsl(k: &Constructor) -> String {
    fn kind_name(k: DomainKind) -> &'static str {
        match k {
            DomainKind::Text => "text",
            DomainKind::Enumerated => "enum",
            DomainKind::Range => "range",
            DomainKind::Date => "date",
            DomainKind::Time => "time",
            DomainKind::Boolean => "bool",
            DomainKind::Numeric => "numeric",
        }
    }
    match k {
        Constructor::Group => "group".into(),
        Constructor::Inherit(i) => format!("inherit({i})"),
        Constructor::MakeAttr(i) => format!("attr({i})"),
        Constructor::TextOf(i) => format!("textof({i})"),
        Constructor::ListStart(i) => format!("liststart({i})"),
        Constructor::ListAppend { list, unit } => format!("listappend({list},{unit})"),
        Constructor::OpsFromOptions(i) => format!("opsfromoptions({i})"),
        Constructor::MakeCond {
            attr,
            ops,
            val,
            kind,
        } => {
            let mut parts = Vec::new();
            if let Some(a) = attr {
                parts.push(format!("attr={a}"));
            }
            if let Some(o) = ops {
                parts.push(format!("ops={o}"));
            }
            parts.push(format!("val={val}"));
            if let Some(k) = kind {
                parts.push(format!("kind={}", kind_name(*k)));
            }
            format!("cond({})", parts.join(","))
        }
        Constructor::MakeEnumCond { attr, list } => match attr {
            Some(a) => format!("enumcond(attr={a},list={list})"),
            None => format!("enumcond(list={list})"),
        },
        Constructor::MakeBoolCond(i) => format!("boolcond({i})"),
        Constructor::MakeRange { attr, lo, hi } => format!("range({attr},{lo},{hi})"),
        Constructor::MakeDate(i) => format!("date({i})"),
        Constructor::MakeUnlabeledCond(i) => format!("unlabeled({i})"),
        Constructor::CollectConds => "collect".into(),
    }
}

/// Parses the textual form back into a [`Grammar`].
pub fn from_dsl(source: &str) -> Result<Grammar, DslError> {
    let mut builder: Option<GrammarBuilder> = None;
    let mut line_no = 0usize;
    for raw in source.lines() {
        line_no += 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(start) = line.strip_prefix("grammar ") {
            if builder.is_some() {
                return err(line_no, "duplicate `grammar` header");
            }
            builder = Some(GrammarBuilder::new(start.trim()));
            continue;
        }
        let Some(b) = builder.as_mut() else {
            return err(line_no, "expected `grammar <Start>` header first");
        };
        // Names may contain bare colons ("TextVal:left"); the name
        // separator is colon-space.
        let Some((name, rest)) = line.split_once(": ") else {
            return err(line_no, "expected `name: …`");
        };
        let (name, rest) = (name.trim(), rest.trim());
        if rest.contains("<-") {
            parse_production(b, name, rest, line_no)?;
        } else if rest.contains('>') {
            parse_preference(b, name, rest, line_no)?;
        } else {
            return err(line_no, "expected a production (`<-`) or preference (`>`)");
        }
    }
    let Some(b) = builder else {
        return err(0, "empty grammar source");
    };
    b.build().map_err(|e: GrammarError| DslError {
        line: 0,
        message: e.to_string(),
    })
}

/// Symbol lookup: terminal names resolve to terminals, everything else
/// is interned as a nonterminal.
fn symbol(b: &mut GrammarBuilder, name: &str) -> crate::symbol::SymbolId {
    for kind in TokenKind::ALL {
        if kind.name() == name {
            return b.t(kind);
        }
    }
    b.nt(name)
}

fn parse_production(
    b: &mut GrammarBuilder,
    name: &str,
    rest: &str,
    line: usize,
) -> Result<(), DslError> {
    let Some((head, rest)) = rest.split_once("<-") else {
        return err(line, "missing `<-`");
    };
    let Some((comps, rest)) = rest.split_once(':') else {
        return err(line, "missing `: CONSTRAINT`");
    };
    let Some((constraint_src, constructor_src)) = rest.split_once("=>") else {
        return err(line, "missing `=> CONSTRUCTOR`");
    };
    let head_sym = symbol(b, head.trim());
    let components: Vec<_> = comps.split_whitespace().map(|c| symbol(b, c)).collect();
    if components.is_empty() {
        return err(line, "production needs at least one component");
    }
    let constraint = ConstraintParser {
        src: constraint_src.trim(),
        pos: 0,
        line,
    }
    .parse_full()?;
    let constructor = parse_constructor(constructor_src.trim(), line)?;
    b.production(name, head_sym, components, constraint, constructor);
    Ok(())
}

fn parse_preference(
    b: &mut GrammarBuilder,
    name: &str,
    rest: &str,
    line: usize,
) -> Result<(), DslError> {
    let Some((pair, clause)) = rest.split_once(':') else {
        return err(line, "missing `: CONDITION CRITERIA`");
    };
    let Some((winner, loser)) = pair.split_once('>') else {
        return err(line, "missing `WINNER > LOSER`");
    };
    let mut words = clause.split_whitespace();
    let cond = match words.next() {
        Some("overlap") => ConflictCond::Overlap,
        Some("subsumed") => ConflictCond::LoserSubsumed,
        other => return err(line, format!("unknown conflict condition {other:?}")),
    };
    let crit = match words.next() {
        Some("always") => WinCriteria::Always,
        Some("larger") => WinCriteria::WinnerLarger,
        Some("tighter") => WinCriteria::WinnerTighter,
        other => return err(line, format!("unknown winning criteria {other:?}")),
    };
    let w = symbol(b, winner.trim());
    let l = symbol(b, loser.trim());
    b.preference(name, w, l, cond, crit);
    Ok(())
}

/// Recursive-descent parser for constraint expressions:
/// `expr := term (('&'|'|') term)*`, `term := '!'? (atom | '(' expr ')')`.
/// Mixing `&` and `|` at one level requires parentheses.
struct ConstraintParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl ConstraintParser<'_> {
    fn parse_full(mut self) -> Result<Constraint, DslError> {
        let c = self.parse_expr()?;
        self.skip_ws();
        if self.pos != self.src.len() {
            return err(
                self.line,
                format!("trailing input at {:?}", &self.src[self.pos..]),
            );
        }
        Ok(c)
    }

    fn parse_expr(&mut self) -> Result<Constraint, DslError> {
        let first = self.parse_term()?;
        self.skip_ws();
        let op = match self.peek() {
            Some('&') => '&',
            Some('|') => '|',
            _ => return Ok(first),
        };
        let mut parts = vec![first];
        while let Some(c) = self.peek() {
            if c != '&' && c != '|' {
                break;
            }
            if c != op {
                return err(self.line, "mixing `&` and `|` requires parentheses");
            }
            self.pos += 1;
            parts.push(self.parse_term()?);
            self.skip_ws();
        }
        Ok(if op == '&' {
            Constraint::And(parts)
        } else {
            Constraint::Or(parts)
        })
    }

    fn parse_term(&mut self) -> Result<Constraint, DslError> {
        self.skip_ws();
        match self.peek() {
            Some('!') => {
                self.pos += 1;
                Ok(Constraint::Not(Box::new(self.parse_term()?)))
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return err(self.line, "expected `)`");
                }
                self.pos += 1;
                Ok(inner)
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Constraint, DslError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        if word == "true" {
            return Ok(Constraint::True);
        }
        let args = self.parse_args()?;
        let get = |i: usize| -> Result<usize, DslError> {
            args.get(i).copied().map(|v| v as usize).ok_or(DslError {
                line: self.line,
                message: format!("{word}: missing argument {i}"),
            })
        };
        let geti = |i: usize| -> Result<i32, DslError> {
            args.get(i).copied().ok_or(DslError {
                line: self.line,
                message: format!("{word}: missing argument {i}"),
            })
        };
        Ok(match word {
            "left" => Constraint::Left(get(0)?, get(1)?),
            "above" => Constraint::Above(get(0)?, get(1)?),
            "below" => Constraint::Below(get(0)?, get(1)?),
            "leftwithin" => Constraint::LeftWithin(get(0)?, get(1)?, geti(2)?),
            "abovewithin" => Constraint::AboveWithin(get(0)?, get(1)?, geti(2)?),
            "samerow" => Constraint::SameRow(get(0)?, get(1)?),
            "samecol" => Constraint::SameCol(get(0)?, get(1)?),
            "alignbottom" => Constraint::AlignBottom(get(0)?, get(1)?),
            "aligntop" => Constraint::AlignTop(get(0)?, get(1)?),
            "alignleft" => Constraint::AlignLeft(get(0)?, get(1)?),
            "maxdist" => Constraint::MaxDist(get(0)?, get(1)?, geti(2)?),
            "attrlike" => Constraint::Is(get(0)?, Pred::AttrLike),
            "opslike" => Constraint::Is(get(0)?, Pred::OpsLike),
            "connector" => Constraint::Is(get(0)?, Pred::RangeConnector),
            "maxwords" => Constraint::Is(get(0)?, Pred::MaxWords(geti(1)? as u8)),
            "optionsops" => Constraint::Is(get(0)?, Pred::OptionsOpsLike),
            "lowercase" => Constraint::Is(get(0)?, Pred::LowercaseText),
            "minops" => Constraint::Is(get(0)?, Pred::MinOps(geti(1)? as u8)),
            other => return err(self.line, format!("unknown constraint {other:?}")),
        })
    }

    fn parse_args(&mut self) -> Result<Vec<i32>, DslError> {
        self.skip_ws();
        if self.peek() != Some('(') {
            return err(self.line, "expected `(`");
        }
        self.pos += 1;
        let mut args = Vec::new();
        loop {
            self.skip_ws();
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '-') {
                self.pos += 1;
            }
            let n: i32 = self.src[start..self.pos].parse().map_err(|_| DslError {
                line: self.line,
                message: "expected a number".into(),
            })?;
            args.push(n);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(')') => {
                    self.pos += 1;
                    return Ok(args);
                }
                _ => return err(self.line, "expected `,` or `)`"),
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }
}

fn parse_constructor(src: &str, line: usize) -> Result<Constructor, DslError> {
    let (name, args_src) = match src.find('(') {
        Some(at) => {
            let inner = src[at + 1..].strip_suffix(')').ok_or(DslError {
                line,
                message: "constructor: expected `)`".into(),
            })?;
            (&src[..at], inner)
        }
        None => (src, ""),
    };
    // Positional and keyword args.
    let mut positional: Vec<usize> = Vec::new();
    let mut keyword: Vec<(&str, &str)> = Vec::new();
    for part in args_src.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part.split_once('=') {
            Some((k, v)) => keyword.push((k.trim(), v.trim())),
            None => positional.push(part.parse().map_err(|_| DslError {
                line,
                message: format!("constructor {name}: bad argument {part:?}"),
            })?),
        }
    }
    let kw_idx = |key: &str| -> Result<Option<usize>, DslError> {
        keyword
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| {
                v.parse().map_err(|_| DslError {
                    line,
                    message: format!("constructor {name}: bad {key}={v}"),
                })
            })
            .transpose()
    };
    let pos0 = || -> Result<usize, DslError> {
        positional.first().copied().ok_or(DslError {
            line,
            message: format!("constructor {name}: missing argument"),
        })
    };
    Ok(match name {
        "group" => Constructor::Group,
        "inherit" => Constructor::Inherit(pos0()?),
        "attr" => Constructor::MakeAttr(pos0()?),
        "textof" => Constructor::TextOf(pos0()?),
        "liststart" => Constructor::ListStart(pos0()?),
        "listappend" => Constructor::ListAppend {
            list: pos0()?,
            unit: positional.get(1).copied().ok_or(DslError {
                line,
                message: "listappend: missing unit".into(),
            })?,
        },
        "opsfromoptions" => Constructor::OpsFromOptions(pos0()?),
        "cond" => {
            let kind = keyword
                .iter()
                .find(|(k, _)| *k == "kind")
                .map(|(_, v)| match *v {
                    "text" => Ok(DomainKind::Text),
                    "enum" => Ok(DomainKind::Enumerated),
                    "range" => Ok(DomainKind::Range),
                    "date" => Ok(DomainKind::Date),
                    "time" => Ok(DomainKind::Time),
                    "bool" => Ok(DomainKind::Boolean),
                    "numeric" => Ok(DomainKind::Numeric),
                    other => err(line, format!("unknown kind {other:?}")),
                })
                .transpose()?;
            Constructor::MakeCond {
                attr: kw_idx("attr")?,
                ops: kw_idx("ops")?,
                val: kw_idx("val")?.ok_or(DslError {
                    line,
                    message: "cond: missing val=".into(),
                })?,
                kind,
            }
        }
        "enumcond" => Constructor::MakeEnumCond {
            attr: kw_idx("attr")?,
            list: kw_idx("list")?.ok_or(DslError {
                line,
                message: "enumcond: missing list=".into(),
            })?,
        },
        "boolcond" => Constructor::MakeBoolCond(pos0()?),
        "range" => Constructor::MakeRange {
            attr: pos0()?,
            lo: positional.get(1).copied().unwrap_or(1),
            hi: positional.get(2).copied().unwrap_or(2),
        },
        "date" => Constructor::MakeDate(pos0()?),
        "unlabeled" => Constructor::MakeUnlabeledCond(pos0()?),
        "collect" => Constructor::CollectConds,
        other => return err(line, format!("unknown constructor {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{global_grammar, paper_example_grammar};
    use crate::schedule::build_schedule;

    #[test]
    fn minimal_grammar_round_trips() {
        let src = "\
grammar QI
# a tiny grammar
Attr: Attr <- text : attrlike(0) => attr(0)
Val: Val <- textbox : true => inherit(0)
TextVal: TextVal <- Attr Val : left(0,1) => cond(attr=0, val=1)
QI: QI <- TextVal : true => collect

R1: TextVal > Attr : overlap always
";
        let g = from_dsl(src).expect("parses");
        assert_eq!(g.productions.len(), 4);
        assert_eq!(g.preferences.len(), 1);
        assert_eq!(g.symbols.name(g.start), "QI");
        // And again through the serializer.
        let round = from_dsl(&to_dsl(&g)).expect("round trip");
        assert_eq!(round.productions.len(), 4);
        assert_eq!(round.preferences.len(), 1);
    }

    #[test]
    fn paper_grammar_round_trips_exactly() {
        let g = paper_example_grammar();
        let text = to_dsl(&g);
        let back = from_dsl(&text).expect("round trip: {text}");
        assert_eq!(back.productions.len(), g.productions.len());
        assert_eq!(back.preferences.len(), g.preferences.len());
        assert_eq!(to_dsl(&back), text, "serialization is a fixed point");
        build_schedule(&back).expect("still schedulable");
    }

    #[test]
    fn global_grammar_round_trips_exactly() {
        let g = global_grammar();
        let text = to_dsl(&g);
        let back = from_dsl(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.productions.len(), g.productions.len());
        assert_eq!(back.preferences.len(), g.preferences.len());
        assert_eq!(
            back.symbols.nonterminal_count(),
            g.symbols.nonterminal_count()
        );
        assert_eq!(to_dsl(&back), text);
    }

    #[test]
    fn round_tripped_global_grammar_still_extracts() {
        let g = from_dsl(&to_dsl(&global_grammar())).expect("round trip");
        let tokens = vec![
            metaform_core::Token::text(0, "Author", metaform_core::BBox::new(10, 12, 52, 28)),
            metaform_core::Token::widget(
                1,
                TokenKind::Textbox,
                "q",
                metaform_core::BBox::new(60, 8, 200, 28),
            ),
        ];
        // Parse through the real parser via a quick structural check:
        // productions for TextVal must still exist and reference Attr.
        let tv = g.symbols.lookup("TextVal").expect("TextVal survives");
        assert!(!g.productions_of(tv).is_empty());
        let _ = tokens;
    }

    #[test]
    fn boolean_expressions() {
        let src = "\
grammar Q
a: Q <- text text : left(0,1) & (attrlike(0) | connector(1)) & !lowercase(0) => group
";
        let g = from_dsl(src).expect("parses");
        let c = &g.productions[0].constraint;
        let s = constraint_dsl(c);
        assert_eq!(
            s,
            "left(0,1) & (attrlike(0) | connector(1)) & !lowercase(0)"
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "grammar Q\nx: Q <- text : bogus(0) => group\n";
        let e = from_dsl(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let no_header = "x: Q <- text : true => group\n";
        assert_eq!(from_dsl(no_header).unwrap_err().line, 1);

        assert!(from_dsl("").is_err());
        let mixed = "grammar Q\nx: Q <- text : left(0,1) & attrlike(0) | true => group\n";
        assert!(from_dsl(mixed).unwrap_err().message.contains("parentheses"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\
# leading comment
grammar Q

q: Q <- text : true => group   # trailing comment

";
        let g = from_dsl(src).expect("parses");
        assert_eq!(g.productions.len(), 1);
    }

    #[test]
    fn terminal_names_resolve_to_terminals() {
        let src = "\
grammar Q
q: Q <- textbox month_list : samerow(0,1) => group
";
        let g = from_dsl(src).expect("parses");
        let p = &g.productions[0];
        assert!(g.symbols.is_terminal(p.components[0]));
        assert!(g.symbols.is_terminal(p.components[1]));
        assert!(!g.symbols.is_terminal(p.head));
    }
}
