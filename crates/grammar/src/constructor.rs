//! Production constructors: how a head instance's semantic payload is
//! assembled from its components.
//!
//! "Each production has a constructor, which defines how to instantiate
//! an instance of the head symbol from the components" (paper §4.1).
//! The bounding box of the new instance is always the union of the
//! components' boxes; the constructor decides the *semantic* payload.

use crate::constraint::View;
use crate::payload::Payload;
use metaform_core::{normalize_label, Condition, DomainKind, DomainSpec};

/// Declarative constructor actions (indexes refer to components).
#[derive(Clone, Debug)]
pub enum Constructor {
    /// Structural grouping: no payload.
    Group,
    /// Copy component `i`'s payload.
    Inherit(usize),
    /// Component `i` is text: payload becomes `Attr`.
    MakeAttr(usize),
    /// Component `i` carries a caption: payload becomes `Text`.
    TextOf(usize),
    /// Start an operator/caption list from component `i`'s caption.
    ListStart(usize),
    /// Extend the caption list of `list` with `unit`'s caption.
    ListAppend {
        /// Index of the existing list component.
        list: usize,
        /// Index of the unit whose caption to append.
        unit: usize,
    },
    /// Operator list from a select component's options.
    OpsFromOptions(usize),
    /// Assemble a condition: optional attribute, optional operator
    /// list, a `Val` component, optional domain-kind override.
    MakeCond {
        /// Attribute component index (payload `Attr`/`Text`), if any.
        attr: Option<usize>,
        /// Operator-list component index (payload `Ops`), if any.
        ops: Option<usize>,
        /// Value component index (payload `Val`).
        val: usize,
        /// Forces a different domain kind (e.g. `Numeric`).
        kind: Option<DomainKind>,
    },
    /// Condition whose enumerated domain comes from a caption list
    /// (radio/checkbox groups).
    MakeEnumCond {
        /// Attribute component index, if labeled.
        attr: Option<usize>,
        /// Caption-list component index (payload `Ops`).
        list: usize,
    },
    /// Boolean condition from a single checkbox unit's caption.
    MakeBoolCond(usize),
    /// Range condition from an attribute and two value components.
    MakeRange {
        /// Attribute component index.
        attr: usize,
        /// Low endpoint component index.
        lo: usize,
        /// High endpoint component index.
        hi: usize,
    },
    /// Date condition from an attribute and date-part components.
    MakeDate(usize),
    /// Condition for an unlabeled widget: attribute from the widget's
    /// control name or placeholder option.
    MakeUnlabeledCond(usize),
    /// Union all conditions found in the components.
    CollectConds,
}

impl Constructor {
    /// The deepest component index this constructor dereferences, if
    /// any — compile-time validation checks it against the
    /// production's arity so [`Constructor::eval`] can index
    /// unchecked.
    pub(crate) fn max_slot(&self) -> Option<usize> {
        match self {
            Constructor::Group | Constructor::CollectConds => None,
            Constructor::Inherit(i)
            | Constructor::MakeAttr(i)
            | Constructor::TextOf(i)
            | Constructor::ListStart(i)
            | Constructor::OpsFromOptions(i)
            | Constructor::MakeBoolCond(i)
            | Constructor::MakeDate(i)
            | Constructor::MakeUnlabeledCond(i) => Some(*i),
            Constructor::ListAppend { list, unit } => Some((*list).max(*unit)),
            Constructor::MakeCond { attr, ops, val, .. } => {
                Some((*val).max(attr.unwrap_or(0)).max(ops.unwrap_or(0)))
            }
            Constructor::MakeEnumCond { attr, list } => Some((*list).max(attr.unwrap_or(0))),
            Constructor::MakeRange { attr, lo, hi } => Some((*attr).max(*lo).max(*hi)),
        }
    }

    /// Builds the head payload from component views. Conditions are
    /// created with empty token lists; the parser fills them from the
    /// new instance's span.
    pub fn eval(&self, views: &[View<'_>]) -> Payload {
        match self {
            Constructor::Group => Payload::None,
            Constructor::Inherit(i) => views[*i].payload.clone(),
            Constructor::MakeAttr(i) => {
                Payload::Attr(views[*i].payload.text().unwrap_or("").trim().to_string())
            }
            Constructor::TextOf(i) => {
                Payload::Text(views[*i].payload.text().unwrap_or("").trim().to_string())
            }
            Constructor::ListStart(i) => {
                Payload::Ops(vec![views[*i].payload.text().unwrap_or("").to_string()])
            }
            Constructor::ListAppend { list, unit } => {
                let mut ops = views[*list].payload.ops().unwrap_or(&[]).to_vec();
                ops.push(views[*unit].payload.text().unwrap_or("").to_string());
                Payload::Ops(ops)
            }
            Constructor::OpsFromOptions(i) => Payload::Ops(
                views[*i]
                    .token
                    .map(|t| t.options.clone())
                    .unwrap_or_default(),
            ),
            Constructor::MakeCond {
                attr,
                ops,
                val,
                kind,
            } => {
                let attribute = attr
                    .and_then(|i| views[i].payload.text())
                    .unwrap_or("")
                    .to_string();
                let operators = ops
                    .and_then(|i| views[i].payload.ops())
                    .unwrap_or(&[])
                    .to_vec();
                let mut domain = views[*val]
                    .payload
                    .val()
                    .cloned()
                    .unwrap_or_else(DomainSpec::text);
                if let Some(k) = kind {
                    domain.kind = *k;
                }
                Payload::Cond(Condition::new(attribute, operators, domain, vec![]))
            }
            Constructor::MakeEnumCond { attr, list } => {
                let attribute = attr
                    .and_then(|i| views[i].payload.text())
                    .unwrap_or("")
                    .to_string();
                let values = views[*list].payload.ops().unwrap_or(&[]).to_vec();
                Payload::Cond(Condition::new(
                    attribute,
                    vec![],
                    DomainSpec::enumerated(values),
                    vec![],
                ))
            }
            Constructor::MakeBoolCond(i) => {
                let caption = views[*i].payload.text().unwrap_or("").to_string();
                Payload::Cond(Condition::new(
                    caption,
                    vec![],
                    DomainSpec::of(DomainKind::Boolean),
                    vec![],
                ))
            }
            Constructor::MakeRange { attr, lo, hi } => {
                let attribute = views[*attr].payload.text().unwrap_or("").to_string();
                let mut values = Vec::new();
                for &i in &[*lo, *hi] {
                    if let Some(v) = views[i].payload.val() {
                        values.extend(v.values.iter().cloned());
                    }
                }
                Payload::Cond(Condition::new(
                    attribute,
                    vec![],
                    DomainSpec {
                        kind: DomainKind::Range,
                        values,
                    },
                    vec![],
                ))
            }
            Constructor::MakeDate(attr) => {
                let attribute = views[*attr].payload.text().unwrap_or("").to_string();
                Payload::Cond(Condition::new(
                    attribute,
                    vec![],
                    DomainSpec::of(DomainKind::Date),
                    vec![],
                ))
            }
            Constructor::MakeUnlabeledCond(i) => {
                let view = &views[*i];
                let domain = view.payload.val().cloned().unwrap_or_else(DomainSpec::text);
                let attribute = view
                    .token
                    .map(|t| unlabeled_attribute(&t.name, &t.options))
                    .unwrap_or_default();
                Payload::Cond(Condition::new(attribute, vec![], domain, vec![]))
            }
            Constructor::CollectConds => {
                let mut conds = Vec::new();
                for v in views {
                    conds.extend_from_slice(v.payload.conditions());
                }
                Payload::Conds(conds)
            }
        }
    }
}

/// Derives an attribute label for an unlabeled widget from its control
/// name (`dept`, `pub_year`) or a placeholder option ("Select a State").
fn unlabeled_attribute(name: &str, options: &[String]) -> String {
    if let Some(first) = options.first() {
        let norm = normalize_label(first);
        for prefix in ["select a ", "select ", "choose a ", "choose ", "pick a "] {
            if let Some(rest) = norm.strip_prefix(prefix) {
                if !rest.is_empty() {
                    return rest.to_string();
                }
            }
        }
    }
    name.replace(['_', '-', '.'], " ").trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{BBox, Token, TokenKind};

    fn v(p: &Payload) -> View<'_> {
        View {
            bbox: BBox::ZERO,
            payload: p,
            token: None,
        }
    }

    #[test]
    fn attr_and_text_constructors_trim() {
        let p = Payload::Text("  Author:  ".into());
        assert_eq!(
            Constructor::MakeAttr(0).eval(&[v(&p)]),
            Payload::Attr("Author:".into())
        );
        assert_eq!(
            Constructor::TextOf(0).eval(&[v(&p)]),
            Payload::Text("Author:".into())
        );
    }

    #[test]
    fn list_building() {
        let first = Payload::Text("exact name".into());
        let started = Constructor::ListStart(0).eval(&[v(&first)]);
        assert_eq!(started.ops().unwrap(), ["exact name"]);

        let second = Payload::Text("start of name".into());
        let extended =
            Constructor::ListAppend { list: 0, unit: 1 }.eval(&[v(&started), v(&second)]);
        assert_eq!(extended.ops().unwrap(), ["exact name", "start of name"]);
    }

    #[test]
    fn make_cond_assembles_tuple() {
        let attr = Payload::Attr("Author".into());
        let ops = Payload::Ops(vec!["exact name".into()]);
        let val = Payload::Val(DomainSpec::text());
        let out = Constructor::MakeCond {
            attr: Some(0),
            ops: Some(1),
            val: 2,
            kind: None,
        }
        .eval(&[v(&attr), v(&ops), v(&val)]);
        let c = &out.conditions()[0];
        assert_eq!(c.attribute, "Author");
        assert_eq!(c.operators, vec!["exact name"]);
        assert_eq!(c.domain.kind, DomainKind::Text);
    }

    #[test]
    fn make_cond_kind_override_and_defaults() {
        let val = Payload::Val(DomainSpec::enumerated(vec!["1".into(), "2".into()]));
        let out = Constructor::MakeCond {
            attr: None,
            ops: None,
            val: 0,
            kind: Some(DomainKind::Numeric),
        }
        .eval(&[v(&val)]);
        let c = &out.conditions()[0];
        assert_eq!(c.attribute, "");
        assert_eq!(c.domain.kind, DomainKind::Numeric);
        assert_eq!(c.domain.values, vec!["1", "2"]);
    }

    #[test]
    fn enum_and_bool_conditions() {
        let attr = Payload::Attr("Format".into());
        let list = Payload::Ops(vec!["Hardcover".into(), "Paperback".into()]);
        let out = Constructor::MakeEnumCond {
            attr: Some(0),
            list: 1,
        }
        .eval(&[v(&attr), v(&list)]);
        let c = &out.conditions()[0];
        assert_eq!(c.domain.kind, DomainKind::Enumerated);
        assert_eq!(c.domain.values, vec!["Hardcover", "Paperback"]);

        let caption = Payload::Text("Hardcover only".into());
        let b = Constructor::MakeBoolCond(0).eval(&[v(&caption)]);
        assert_eq!(b.conditions()[0].domain.kind, DomainKind::Boolean);
        assert_eq!(b.conditions()[0].attribute, "Hardcover only");
    }

    #[test]
    fn range_unions_endpoint_values() {
        let attr = Payload::Attr("Price".into());
        let lo = Payload::Val(DomainSpec::enumerated(vec!["5".into()]));
        let hi = Payload::Val(DomainSpec::enumerated(vec!["50".into()]));
        let out = Constructor::MakeRange {
            attr: 0,
            lo: 1,
            hi: 2,
        }
        .eval(&[v(&attr), v(&lo), v(&hi)]);
        let c = &out.conditions()[0];
        assert_eq!(c.domain.kind, DomainKind::Range);
        assert_eq!(c.domain.values, vec!["5", "50"]);
    }

    #[test]
    fn unlabeled_widget_attribute_sources() {
        let tok = Token::widget(0, TokenKind::SelectionList, "pub_year", BBox::ZERO)
            .with_options(vec!["Select a State".into(), "IL".into()]);
        let p = Payload::Val(DomainSpec::enumerated(tok.options.clone()));
        let view = View {
            bbox: BBox::ZERO,
            payload: &p,
            token: Some(&tok),
        };
        let out = Constructor::MakeUnlabeledCond(0).eval(&[view]);
        assert_eq!(out.conditions()[0].attribute, "state", "placeholder wins");

        let tok2 = Token::widget(0, TokenKind::Textbox, "pub_year", BBox::ZERO);
        let p2 = Payload::Val(DomainSpec::text());
        let view2 = View {
            bbox: BBox::ZERO,
            payload: &p2,
            token: Some(&tok2),
        };
        let out2 = Constructor::MakeUnlabeledCond(0).eval(&[view2]);
        assert_eq!(out2.conditions()[0].attribute, "pub year");
    }

    #[test]
    fn collect_conditions_flattens() {
        let c1 = Payload::Cond(Condition::new("a", vec![], DomainSpec::text(), vec![]));
        let c2 = Payload::Conds(vec![
            Condition::new("b", vec![], DomainSpec::text(), vec![]),
            Condition::new("c", vec![], DomainSpec::text(), vec![]),
        ]);
        let none = Payload::None;
        let out = Constructor::CollectConds.eval(&[v(&c1), v(&c2), v(&none)]);
        let attrs: Vec<&str> = out
            .conditions()
            .iter()
            .map(|c| c.attribute.as_str())
            .collect();
        assert_eq!(attrs, vec!["a", "b", "c"]);
    }

    #[test]
    fn group_and_inherit() {
        let p = Payload::Ops(vec!["x".into()]);
        assert_eq!(Constructor::Group.eval(&[v(&p)]), Payload::None);
        assert_eq!(Constructor::Inherit(0).eval(&[v(&p)]), p);
    }
}
