//! Precision/recall metrics (paper §6.1).
//!
//! Per-source: `Ps(q) = |Cs∩Es| / |Es|`, `Rs(q) = |Cs∩Es| / |Cs|` where
//! `Cs` is the manual (here: generated) semantic model and `Es` the
//! extracted one. Overall: the same ratios over all conditions
//! aggregated across a dataset. Accuracy is the average of overall
//! precision and recall (the paper's headline "above 85%").

use metaform_core::Condition;
use metaform_datasets::{Dataset, Source};
use metaform_extractor::FormExtractor;

/// Do a truth condition and an extracted condition denote the same
/// query capability? Primarily [`Condition::equivalent`] (same
/// normalized attribute, same domain shape). When one side carries no
/// attribute label — a bare radio group has none on the page — a human
/// annotator identifies the condition by its value set, so an exact
/// value-set match of an enumerated domain also counts.
pub fn conditions_match(truth: &Condition, extracted: &Condition) -> bool {
    if truth.equivalent(extracted) {
        return true;
    }
    truth.domain.kind == extracted.domain.kind
        && (truth.attribute.is_empty() || extracted.attribute.is_empty())
        && !truth.domain.values.is_empty()
        && truth.domain.values == extracted.domain.values
}

/// Greedy one-to-one matching of extracted conditions against truth
/// under [`conditions_match`]; returns the number of matched pairs
/// (`|Cs ∩ Es|`).
pub fn match_count(truth: &[Condition], extracted: &[Condition]) -> usize {
    let mut used = vec![false; extracted.len()];
    let mut matched = 0;
    for t in truth {
        if let Some(i) = extracted
            .iter()
            .enumerate()
            .position(|(i, e)| !used[i] && conditions_match(t, e))
        {
            used[i] = true;
            matched += 1;
        }
    }
    matched
}

/// Per-source evaluation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceScore {
    /// Source identifier.
    pub name: String,
    /// Domain the source belongs to.
    pub domain: String,
    /// `|Cs ∩ Es|`.
    pub matched: usize,
    /// `|Es|` — extracted conditions.
    pub extracted: usize,
    /// `|Cs|` — ground-truth conditions.
    pub truth: usize,
    /// Tokens in the interface (for timing/size analyses).
    pub tokens: usize,
}

impl SourceScore {
    /// `Ps(q)`. An extractor that extracts nothing has made no false
    /// claims, so empty `Es` scores precision 1.
    pub fn precision(&self) -> f64 {
        if self.extracted == 0 {
            1.0
        } else {
            self.matched as f64 / self.extracted as f64
        }
    }

    /// `Rs(q)`; empty truth scores recall 1.
    pub fn recall(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.matched as f64 / self.truth as f64
        }
    }
}

/// Dataset-level evaluation outcome.
#[derive(Clone, Debug)]
pub struct DatasetScore {
    /// Dataset name.
    pub name: String,
    /// Per-source scores, in dataset order.
    pub sources: Vec<SourceScore>,
}

impl DatasetScore {
    /// Average per-source precision (Figure 15(c)).
    pub fn avg_precision(&self) -> f64 {
        avg(self.sources.iter().map(SourceScore::precision))
    }

    /// Average per-source recall (Figure 15(c)).
    pub fn avg_recall(&self) -> f64 {
        avg(self.sources.iter().map(SourceScore::recall))
    }

    /// Overall precision `Pa` (Figure 15(d)).
    pub fn overall_precision(&self) -> f64 {
        let matched: usize = self.sources.iter().map(|s| s.matched).sum();
        let extracted: usize = self.sources.iter().map(|s| s.extracted).sum();
        if extracted == 0 {
            1.0
        } else {
            matched as f64 / extracted as f64
        }
    }

    /// Overall recall `Ra` (Figure 15(d)).
    pub fn overall_recall(&self) -> f64 {
        let matched: usize = self.sources.iter().map(|s| s.matched).sum();
        let truth: usize = self.sources.iter().map(|s| s.truth).sum();
        if truth == 0 {
            1.0
        } else {
            matched as f64 / truth as f64
        }
    }

    /// Accuracy: the average of overall precision and recall, as in
    /// the paper's "accuracy of 0.85" summary.
    pub fn accuracy(&self) -> f64 {
        (self.overall_precision() + self.overall_recall()) / 2.0
    }
}

fn avg(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        sum / n as f64
    }
}

/// Evaluates one source with the parsing extractor.
pub fn score_source(extractor: &FormExtractor, src: &Source) -> SourceScore {
    score_extraction(src, &extractor.extract(&src.html))
}

/// Scores an already-computed extraction against its source's ground
/// truth — the piece of [`score_source`] that composes with
/// batch-extracted results.
pub fn score_extraction(src: &Source, extraction: &metaform_extractor::Extraction) -> SourceScore {
    SourceScore {
        name: src.name.clone(),
        domain: src.domain.clone(),
        matched: match_count(&src.truth, &extraction.report.conditions),
        extracted: extraction.report.conditions.len(),
        truth: src.truth.len(),
        tokens: extraction.tokens.len(),
    }
}

/// Evaluates one source with the pairwise-proximity baseline.
pub fn score_source_baseline(src: &Source) -> SourceScore {
    let doc = metaform_html::parse(&src.html);
    let lay = metaform_layout::layout(&doc);
    let tokens = metaform_tokenizer::tokenize(&doc, &lay).tokens;
    let report = metaform_extractor::extract_baseline(&tokens);
    SourceScore {
        name: src.name.clone(),
        domain: src.domain.clone(),
        matched: match_count(&src.truth, &report.conditions),
        extracted: report.conditions.len(),
        truth: src.truth.len(),
        tokens: tokens.len(),
    }
}

/// Evaluates a whole dataset.
pub fn score_dataset(extractor: &FormExtractor, ds: &Dataset) -> DatasetScore {
    DatasetScore {
        name: ds.name.clone(),
        sources: ds
            .sources
            .iter()
            .map(|s| score_source(extractor, s))
            .collect(),
    }
}

/// Evaluates a whole dataset with the baseline.
pub fn score_dataset_baseline(ds: &Dataset) -> DatasetScore {
    DatasetScore {
        name: format!("{}(baseline)", ds.name),
        sources: ds.sources.iter().map(score_source_baseline).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_core::{DomainKind, DomainSpec};

    fn cond(attr: &str, kind: DomainKind) -> Condition {
        Condition::new(attr, vec![], DomainSpec::of(kind), vec![])
    }

    #[test]
    fn matching_is_one_to_one() {
        let truth = vec![
            cond("author", DomainKind::Text),
            cond("title", DomainKind::Text),
        ];
        let extracted = vec![
            cond("Author:", DomainKind::Text),
            cond("Author", DomainKind::Text), // duplicate cannot double-match
            cond("price", DomainKind::Range),
        ];
        assert_eq!(match_count(&truth, &extracted), 1);
    }

    #[test]
    fn precision_recall_formulas() {
        let s = SourceScore {
            name: "x".into(),
            domain: "d".into(),
            matched: 3,
            extracted: 4,
            truth: 5,
            tokens: 20,
        };
        assert!((s.precision() - 0.75).abs() < 1e-9);
        assert!((s.recall() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_edges() {
        let empty = SourceScore {
            name: "x".into(),
            domain: "d".into(),
            matched: 0,
            extracted: 0,
            truth: 0,
            tokens: 0,
        };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn dataset_aggregates() {
        let ds = DatasetScore {
            name: "T".into(),
            sources: vec![
                SourceScore {
                    name: "a".into(),
                    domain: "d".into(),
                    matched: 2,
                    extracted: 2,
                    truth: 4,
                    tokens: 0,
                },
                SourceScore {
                    name: "b".into(),
                    domain: "d".into(),
                    matched: 2,
                    extracted: 4,
                    truth: 2,
                    tokens: 0,
                },
            ],
        };
        assert!((ds.avg_precision() - 0.75).abs() < 1e-9);
        assert!((ds.avg_recall() - 0.75).abs() < 1e-9);
        assert!((ds.overall_precision() - 4.0 / 6.0).abs() < 1e-9);
        assert!((ds.overall_recall() - 4.0 / 6.0).abs() < 1e-9);
        assert!((ds.accuracy() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn scoring_the_qam_fixture_is_perfect() {
        let extractor = FormExtractor::new();
        let score = score_source(&extractor, &metaform_datasets::fixtures::qam());
        assert_eq!(score.truth, 5);
        assert_eq!(score.matched, 5, "all five Qam conditions recovered");
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
    }

    #[test]
    fn baseline_scores_strictly_worse_on_qam() {
        let extractor = FormExtractor::new();
        let parser = score_source(&extractor, &metaform_datasets::fixtures::qam());
        let baseline = score_source_baseline(&metaform_datasets::fixtures::qam());
        assert!(baseline.precision() <= parser.precision());
        assert!(
            baseline.precision() < 1.0,
            "operator captions confuse the baseline"
        );
    }
}
