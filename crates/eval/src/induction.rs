//! The grammar induction loop: Collect → Infer → **Validate**.
//!
//! `metaform_grammar::induce` mines recurring unparsed arrangements
//! and synthesizes candidate productions; this module is the half that
//! decides whether a candidate *enters* the grammar. The gate is
//! deliberately conservative — a candidate is accepted only when all
//! three hold:
//!
//! 1. **It compiles.** [`Candidate::apply`] yields a description;
//!    `Grammar::compile` — the lifecycle's single fallible entry
//!    point — must validate and schedule it. Nothing reaches a parser
//!    any other way.
//! 2. **Zero regression on the frozen corpus.** Every page of the
//!    golden survey corpus whose patterns the hand grammar already
//!    covers must produce a byte-identical report under the extended
//!    grammar. Induction may only *add* understanding, never perturb
//!    what works.
//! 3. **Strict held-out improvement.** Accuracy on the
//!    `InduceHoldout` slice — pages the miner never saw — must
//!    strictly increase. A candidate that merely matches its own
//!    training pages is overfit geometry and is rejected.
//!
//! Accepted candidates re-baseline the gate, so each further candidate
//! must improve on the *extended* grammar: the loop converges instead
//! of oscillating. [`run_induction`] drives the whole loop over the
//! induction split and reports a per-round trajectory;
//! [`InductionGate`] is the reusable gate the `metaformd` refit hook
//! drives with arrangements mined from live traffic.

use crate::metrics::score_dataset;
use metaform_datasets::{induction_split, new_source, random, Dataset};
use metaform_extractor::FormExtractor;
use metaform_grammar::{
    global_compiled, synthesize_all, ArrangementBook, Candidate, CompiledGrammar,
};
use metaform_parser::{FixpointMode, ParserOptions};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Knobs for one induction run.
#[derive(Clone, Debug)]
pub struct InductionConfig {
    /// Maximum Collect → Infer → Validate rounds (the loop also stops
    /// at the first round that accepts nothing — its fix-point).
    pub rounds: usize,
    /// Minimum distinct supporting pages for a cluster to synthesize.
    pub min_support: usize,
    /// Worker threads for batch extraction (`None` = machine default).
    pub workers: Option<usize>,
    /// Parser fix-point scheduling mode. The induction trajectory must
    /// not depend on this — `tests/induction.rs` pins that.
    pub fixpoint: FixpointMode,
}

impl Default for InductionConfig {
    fn default() -> Self {
        InductionConfig {
            rounds: 4,
            min_support: 2,
            workers: None,
            fixpoint: FixpointMode::default(),
        }
    }
}

/// A candidate that passed the gate, reduced to its stable identity —
/// what the golden fixture and the daemon's metrics report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptedCandidate {
    /// The induced nonterminal's name (`Ind…`).
    pub name: String,
    /// The mined arrangement signature it generalizes.
    pub signature: String,
    /// Distinct training pages that supported it.
    pub support: usize,
}

/// One round of the loop, for the trajectory report.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Round index (0-based).
    pub round: usize,
    /// Distinct arrangement signatures mined this round.
    pub mined: usize,
    /// Candidate names synthesized this round (pre-gate).
    pub proposed: Vec<String>,
    /// Candidates the gate admitted this round.
    pub accepted: Vec<AcceptedCandidate>,
    /// Held-out accuracy after this round's acceptances.
    pub holdout_accuracy: f64,
    /// Random-dataset accuracy after this round's acceptances — the
    /// convergence-toward-Basic metric.
    pub random_accuracy: f64,
}

/// The whole run: the trajectory plus the grammar it converged to.
#[derive(Clone, Debug)]
pub struct InductionOutcome {
    /// Per-round trajectory, in order.
    pub rounds: Vec<RoundOutcome>,
    /// Every accepted candidate, in acceptance order.
    pub accepted: Vec<AcceptedCandidate>,
    /// Held-out accuracy of the unextended grammar.
    pub baseline_holdout: f64,
    /// Random-dataset accuracy of the unextended grammar.
    pub baseline_random: f64,
    /// The compiled grammar after the final accepted candidate (the
    /// unextended artifact when nothing was accepted).
    pub grammar: Arc<CompiledGrammar>,
}

impl InductionOutcome {
    /// Held-out accuracy after the last round (baseline when no round
    /// ran).
    pub fn final_holdout(&self) -> f64 {
        self.rounds
            .last()
            .map_or(self.baseline_holdout, |r| r.holdout_accuracy)
    }

    /// Random-dataset accuracy after the last round.
    pub fn final_random(&self) -> f64 {
        self.rounds
            .last()
            .map_or(self.baseline_random, |r| r.random_accuracy)
    }
}

/// Why the gate refused a candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// `Candidate::apply` changed nothing (symbols missing, or the
    /// nonterminal already exists).
    Inapplicable,
    /// `Grammar::compile` rejected the extended description.
    CompileError(String),
    /// A frozen-corpus page's report changed (page name inside).
    FrozenRegression(String),
    /// Held-out accuracy did not strictly improve.
    NoImprovement,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Inapplicable => write!(f, "candidate applies to nothing"),
            RejectReason::CompileError(e) => write!(f, "does not compile: {e}"),
            RejectReason::FrozenRegression(page) => {
                write!(f, "regresses frozen page {page}")
            }
            RejectReason::NoImprovement => write!(f, "no held-out improvement"),
        }
    }
}

/// The survey pages induction must never change: the hand-written
/// fixtures plus every NewSource page built entirely from in-grammar
/// patterns. Pages carrying a withheld pattern are exempt — changing
/// *those* is the point of induction.
pub fn frozen_corpus() -> Vec<(String, String)> {
    let qam = metaform_datasets::fixtures::qam();
    let qaa = metaform_datasets::fixtures::qaa();
    let mut corpus = vec![
        ("qam".to_string(), qam.html),
        ("qaa".to_string(), qaa.html),
        (
            "qaa-column".to_string(),
            metaform_datasets::fixtures::qaa_column_variant(),
        ),
    ];
    corpus.extend(
        new_source()
            .sources
            .into_iter()
            .filter(|s| s.patterns.iter().all(|p| p.in_grammar()))
            .map(|s| (s.name, s.html)),
    );
    corpus
}

fn extractor_for(
    grammar: Arc<CompiledGrammar>,
    workers: Option<usize>,
    fixpoint: FixpointMode,
) -> FormExtractor {
    let mut ex = FormExtractor::with_compiled(grammar).parser_options(ParserOptions {
        fixpoint,
        ..ParserOptions::default()
    });
    if let Some(w) = workers {
        ex = ex.worker_threads(w);
    }
    ex
}

/// The validation gate, holding the frozen corpus with its baseline
/// reports and the running held-out accuracy bar. Construct once per
/// loop (or per daemon refit) and [`InductionGate::admit`] candidates
/// against it; acceptance re-baselines the bar.
#[derive(Clone, Debug)]
pub struct InductionGate {
    frozen: Vec<(String, String)>,
    frozen_reports: Vec<String>,
    holdout: Dataset,
    /// Current held-out accuracy bar (baseline at construction,
    /// re-baselined on every acceptance).
    pub holdout_accuracy: f64,
    workers: Option<usize>,
    fixpoint: FixpointMode,
}

impl InductionGate {
    /// Builds the gate around `base`: renders the frozen corpus's
    /// baseline reports and scores the held-out slice under it.
    pub fn new(
        base: &Arc<CompiledGrammar>,
        workers: Option<usize>,
        fixpoint: FixpointMode,
    ) -> Self {
        let extractor = extractor_for(base.clone(), workers, fixpoint);
        let frozen = frozen_corpus();
        let frozen_reports = frozen
            .iter()
            .map(|(_, html)| extractor.extract(html).report.to_string())
            .collect();
        let (_, holdout) = induction_split();
        let holdout_accuracy = score_dataset(&extractor, &holdout).accuracy();
        InductionGate {
            frozen,
            frozen_reports,
            holdout,
            holdout_accuracy,
            workers,
            fixpoint,
        }
    }

    /// Runs one candidate through the three-clause gate against the
    /// `current` grammar. `Ok` carries the extended compiled artifact
    /// and has already raised the held-out bar to its accuracy.
    pub fn admit(
        &mut self,
        candidate: &Candidate,
        current: &Arc<CompiledGrammar>,
    ) -> Result<Arc<CompiledGrammar>, RejectReason> {
        let description = candidate.apply(current.grammar());
        if description.productions.len() == current.grammar().productions.len() {
            return Err(RejectReason::Inapplicable);
        }
        // Clause 1: the single fallible entry point.
        let compiled = description
            .compile()
            .map(Arc::new)
            .map_err(|e| RejectReason::CompileError(e.to_string()))?;
        let extractor = extractor_for(compiled.clone(), self.workers, self.fixpoint);
        // Clause 2: zero regression on the frozen corpus.
        for ((name, html), want) in self.frozen.iter().zip(&self.frozen_reports) {
            if extractor.extract(html).report.to_string() != *want {
                return Err(RejectReason::FrozenRegression(name.clone()));
            }
        }
        // Clause 3: strict held-out improvement.
        let accuracy = score_dataset(&extractor, &self.holdout).accuracy();
        if accuracy <= self.holdout_accuracy {
            return Err(RejectReason::NoImprovement);
        }
        self.holdout_accuracy = accuracy;
        Ok(compiled)
    }
}

/// One **Validate** pass over an already-collected book: synthesizes
/// candidates and greedily admits them in signature order, skipping
/// names in `seen` (previously accepted or rejected — a daemon carries
/// this across refits so a rejected candidate is not re-tried every
/// N jobs). Returns the possibly-extended grammar and what was
/// accepted. This is the entry point the `metaformd --induce-every`
/// hook drives.
pub fn refit_grammar(
    book: &ArrangementBook,
    current: Arc<CompiledGrammar>,
    min_support: usize,
    gate: &mut InductionGate,
    seen: &mut BTreeSet<String>,
) -> (Arc<CompiledGrammar>, Vec<AcceptedCandidate>) {
    let mut grammar = current;
    let mut accepted = Vec::new();
    for candidate in synthesize_all(book, min_support) {
        if !seen.insert(candidate.name.clone()) {
            continue;
        }
        match gate.admit(&candidate, &grammar) {
            Ok(extended) => {
                grammar = extended;
                accepted.push(AcceptedCandidate {
                    name: candidate.name.clone(),
                    signature: candidate.signature.clone(),
                    support: candidate.support,
                });
            }
            Err(_) => {
                // `seen` already records it; never re-proposed.
            }
        }
    }
    (grammar, accepted)
}

/// Drives the full Collect → Infer → Validate loop over the induction
/// split, starting from the global grammar. Deterministic end to end:
/// the split is seed-fixed, mining and clustering are order-stable,
/// candidates are admitted in signature order, and the gate's metrics
/// are exact counts — so the trajectory is identical across worker
/// counts and fix-point modes (pinned by `tests/induction.rs`).
pub fn run_induction(config: &InductionConfig) -> InductionOutcome {
    let (train, _) = induction_split();
    let random_ds = random();
    let mut grammar = global_compiled();
    let mut gate = InductionGate::new(&grammar, config.workers, config.fixpoint);
    let baseline_holdout = gate.holdout_accuracy;
    let baseline_random = {
        let extractor = extractor_for(grammar.clone(), config.workers, config.fixpoint);
        score_dataset(&extractor, &random_ds).accuracy()
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut accepted_all = Vec::new();
    let mut rounds = Vec::new();

    for round in 0..config.rounds {
        let extractor = extractor_for(grammar.clone(), config.workers, config.fixpoint);
        // Collect: mine the training slice's parse residue.
        let proximity = extractor.grammar().proximity;
        let mut book = ArrangementBook::new();
        for src in &train.sources {
            let extraction = extractor.extract(&src.html);
            book.absorb_page(
                &src.name,
                &extraction.tokens,
                &extraction.report.missing,
                &extraction.pattern_spans,
                &proximity,
            );
        }
        // Infer: what the book supports this round (pre-gate, also
        // reported for the trajectory).
        let proposed: Vec<String> = synthesize_all(&book, config.min_support)
            .iter()
            .map(|c| c.name.clone())
            .collect();
        // Validate: greedy admission in signature order.
        let (extended, accepted) =
            refit_grammar(&book, grammar, config.min_support, &mut gate, &mut seen);
        grammar = extended;
        accepted_all.extend(accepted.iter().cloned());

        let extractor = extractor_for(grammar.clone(), config.workers, config.fixpoint);
        let random_accuracy = score_dataset(&extractor, &random_ds).accuracy();
        let stop = accepted.is_empty();
        rounds.push(RoundOutcome {
            round,
            mined: book.len(),
            proposed,
            accepted,
            holdout_accuracy: gate.holdout_accuracy,
            random_accuracy,
        });
        if stop {
            break;
        }
    }

    InductionOutcome {
        rounds,
        accepted: accepted_all,
        baseline_holdout,
        baseline_random,
        grammar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_corpus_keeps_only_fully_covered_pages() {
        let frozen = frozen_corpus();
        let names: Vec<&str> = frozen.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"qam"));
        assert!(names.contains(&"qaa"));
        assert!(names.contains(&"qaa-column"));
        // Pages carrying withheld patterns are exempt from freezing.
        let withheld: Vec<String> = new_source()
            .sources
            .iter()
            .filter(|s| s.patterns.iter().any(|p| !p.in_grammar()))
            .map(|s| s.name.clone())
            .collect();
        assert!(!withheld.is_empty(), "split exercises incompleteness");
        for name in &withheld {
            assert!(!names.contains(&name.as_str()), "{name} must not freeze");
        }
        assert_eq!(frozen.len(), 3 + 30 - withheld.len());
    }

    #[test]
    fn gate_rejects_inapplicable_candidates() {
        use metaform_grammar::{synthesize, Cluster};
        let base = global_compiled();
        let mut gate = InductionGate::new(&base, Some(1), FixpointMode::default());
        let cluster = Cluster {
            descriptors: vec!["tb".into(), "attr".into()],
            pages: ["a", "b"].iter().map(|s| s.to_string()).collect(),
            occurrences: 2,
            max_gaps: vec![10],
        };
        let cand = synthesize("tb attr", &cluster, 2).expect("known shape");
        // Applying onto a grammar that already has the nonterminal is
        // a no-op, which the gate maps to Inapplicable.
        let extended = Arc::new(cand.apply(base.grammar()).compile().expect("compiles"));
        assert_eq!(
            gate.admit(&cand, &extended).err(),
            Some(RejectReason::Inapplicable)
        );
    }
}
