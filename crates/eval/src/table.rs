//! Plain-text tables and simple series plots for experiment output.

/// A fixed-column text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for `&str` rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as RFC-4180-style CSV (quotes doubled, fields quoted
    /// when they contain commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let row_line = |cells: &[String]| -> String {
            cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&row_line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row_line(row));
            out.push('\n');
        }
        out
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncol) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncol) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as `0.873`.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage as `87.3%`.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Renders an ASCII bar chart line: label, value, proportional bar.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    }
    .min(width);
    format!("{label:<24} {value:>8.2} |{}", "#".repeat(filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["dataset", "P", "R"]);
        t.row_str(&["Basic", "0.9", "0.92"]);
        t.row_str(&["NewSource", "0.95", "0.97"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "P" column starts at the same offset everywhere.
        let col = lines[0].find('P').unwrap();
        assert_eq!(&lines[2][col..col + 3], "0.9");
        assert_eq!(&lines[3][col..col + 4], "0.95");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_str(&["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = TextTable::new(&["name", "values"]);
        t.row_str(&["plain", "a,b"]);
        t.row_str(&["with \"quotes\"", "line\nbreak"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "name,values");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert!(lines[2].starts_with("\"with \"\"quotes\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.87345), "0.873");
        assert_eq!(pct(69.444), "69.4%");
        let b = bar("x", 5.0, 10.0, 10);
        assert!(b.contains("|#####"));
        assert!(!bar("x", 0.0, 0.0, 10).contains('#'));
    }
}
