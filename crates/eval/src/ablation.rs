//! Ablation studies beyond the paper's headline experiments.
//!
//! - **Grammar sweep** (validates §3.1's "a few frequent ones will
//!   likely pay off"): re-run extraction with only the top-k condition
//!   patterns enabled in the grammar.
//! - **Parser ablations**: preferences off (brute force), rollback off,
//!   maximization off (complete parses only).

use metaform_datasets::PatternId;
use metaform_extractor::FormExtractor;
use metaform_grammar::{global_grammar, Grammar, GrammarBuilder};
use metaform_parser::ParserOptions;

/// Production names implementing each generator pattern in the global
/// grammar (empty = the pattern rides on another pattern's rules).
pub fn productions_for(pattern: PatternId) -> &'static [&'static str] {
    use PatternId::*;
    match pattern {
        TextLeft => &["TextVal:left"],
        TextAbove => &["TextVal:above"],
        TextBelow => &["TextVal:below"],
        SelLeft => &["SelVal:left", "SelVal:year", "SelVal:month", "SelVal:day"],
        SelAbove => &["SelVal:above"],
        KeywordBare => &["KwVal<-textbox", "KwVal<-textarea"],
        EnumRadioLabeled => &["EnumRB:left", "EnumRB:above"],
        EnumRadioBare => &["EnumRB:bare"],
        EnumCheckLabeled => &["EnumCB:left", "EnumCB:above"],
        BoolCheck => &["BoolCB"],
        DateMdy => &["DateMDY:left", "DateMDY:above"],
        DateMd => &["DateMD:left", "DateMD:above"],
        RangeTextConnector => &["RangeTB:connector", "RangeTB:bare"],
        RangeSelect => &["RangeSel:connector", "RangeSel:bare"],
        YearRangePair => &["YearRange:connector", "YearRange:bare"],
        NumSel => &["NumCond:left", "NumCond:above"],
        TextOpRadio => &["TextOp:attr-left", "TextOp:attr-above"],
        TextOpSelect => &["TextOpSel:op-first", "TextOpSel:op-last"],
        UnitText => &["UnitTB"],
        TextAreaCond => &[], // rides on TextVal + Val<-textarea
        SelPlaceholder => &["SelfSel<-select", "SelfSel<-number"],
        TwoBoxDate | RightLabel | BetweenRange | SelRight => &[],
    }
}

/// Rebuilds a grammar without the named productions. Preferences whose
/// winner or loser ends up with no productions are dropped too (they
/// can never fire and their r-edges would constrain scheduling for
/// nothing).
pub fn filter_grammar(g: &Grammar, disabled_productions: &[&str]) -> Grammar {
    let start_name = g.symbols.name(g.start).to_string();
    let mut b = GrammarBuilder::new(&start_name);
    b.proximity(g.proximity);

    // Map old symbol ids to the new builder's ids (terminals share the
    // same pre-registered layout; nonterminals are re-interned).
    let mut map = vec![None; g.symbols.len()];
    for s in g.symbols.ids() {
        let name = g.symbols.name(s).to_string();
        let new = if g.symbols.is_terminal(s) {
            match g.symbols.kind(s) {
                metaform_grammar::SymbolKind::Terminal(k) => b.t(k),
                metaform_grammar::SymbolKind::NonTerminal => unreachable!(),
            }
        } else {
            b.nt(&name)
        };
        map[s.index()] = Some(new);
    }
    let remap = |s: metaform_grammar::SymbolId| map[s.index()].expect("mapped");

    let mut has_rules = vec![false; g.symbols.len()];
    for p in &g.productions {
        if disabled_productions.contains(&p.name.as_str()) {
            continue;
        }
        has_rules[p.head.index()] = true;
        b.production(
            &p.name,
            remap(p.head),
            p.components.iter().map(|&c| remap(c)).collect(),
            p.constraint.clone(),
            p.constructor.clone(),
        );
    }
    for r in &g.preferences {
        let alive =
            |s: metaform_grammar::SymbolId| g.symbols.is_terminal(s) || has_rules[s.index()];
        if alive(r.winner) && alive(r.loser) {
            b.preference(
                &r.name,
                remap(r.winner),
                remap(r.loser),
                r.condition,
                r.criteria,
            );
        }
    }
    b.build().expect("filtering preserves validity")
}

/// The global grammar restricted to the top-k generator patterns
/// (grammar-sweep x-axis). The structural rules (units, lists, CP/HQI/QI)
/// always stay.
pub fn global_grammar_top_k(k: usize) -> Grammar {
    let full = global_grammar();
    let disabled: Vec<&'static str> = PatternId::ALL
        .iter()
        .filter(|p| p.in_grammar() && p.rank() as usize > k)
        .flat_map(|p| productions_for(*p).iter().copied())
        .collect();
    filter_grammar(&full, &disabled)
}

/// Parser configurations for the parser-ablation experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParserMode {
    /// Full best-effort behaviour.
    Full,
    /// Preferences disabled (exhaustive §4.2.1 baseline).
    NoPreferences,
    /// Maximal partial trees discarded: only complete parses count.
    NoMaximization,
}

impl ParserMode {
    /// All modes, report order.
    pub const ALL: [ParserMode; 3] = [
        ParserMode::Full,
        ParserMode::NoPreferences,
        ParserMode::NoMaximization,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ParserMode::Full => "full",
            ParserMode::NoPreferences => "no-preferences",
            ParserMode::NoMaximization => "no-maximization",
        }
    }
}

/// Builds an extractor for a parser mode. `NoMaximization` is applied
/// at scoring time via [`complete_only`].
pub fn extractor_for(mode: ParserMode) -> FormExtractor {
    let opts = match mode {
        ParserMode::NoPreferences => ParserOptions {
            // Brute force with a budget so pathological forms terminate.
            max_instances: 200_000,
            ..ParserOptions::brute_force()
        },
        _ => ParserOptions::default(),
    };
    FormExtractor::new().parser_options(opts)
}

/// Scores a source counting only conditions from a complete parse
/// (`NoMaximization` mode): if no single tree covers every token, the
/// extraction is empty.
pub fn complete_only(
    extractor: &FormExtractor,
    src: &metaform_datasets::Source,
) -> crate::metrics::SourceScore {
    let extraction = extractor.extract(&src.html);
    let conditions = if extraction.stats.complete {
        extraction.report.conditions.clone()
    } else {
        Vec::new()
    };
    crate::metrics::SourceScore {
        name: src.name.clone(),
        domain: src.domain.clone(),
        matched: crate::metrics::match_count(&src.truth, &conditions),
        extracted: conditions.len(),
        truth: src.truth.len(),
        tokens: extraction.tokens.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{score_source, DatasetScore};
    use metaform_datasets::fixtures::qam;

    #[test]
    fn every_in_grammar_pattern_maps_to_live_productions() {
        let g = global_grammar();
        let names: Vec<&str> = g.productions.iter().map(|p| p.name.as_str()).collect();
        for p in PatternId::ALL.iter().filter(|p| p.in_grammar()) {
            for prod in productions_for(*p) {
                assert!(names.contains(prod), "{prod} missing for {p:?}");
            }
        }
    }

    #[test]
    fn filter_removes_named_productions() {
        let g = global_grammar();
        let filtered = filter_grammar(&g, &["TextVal:left", "TextVal:above", "TextVal:below"]);
        assert_eq!(filtered.productions.len(), g.productions.len() - 3);
        assert!(filtered
            .productions
            .iter()
            .all(|p| !p.name.starts_with("TextVal")));
        // Preferences on TextVal dropped with it.
        assert!(filtered
            .preferences
            .iter()
            .all(|r| !r.name.contains("TextVal")));
        assert!(filtered.preferences.len() < g.preferences.len());
    }

    #[test]
    fn top_k_grammar_shrinks_with_k() {
        let k3 = global_grammar_top_k(3);
        let k21 = global_grammar_top_k(21);
        assert!(k3.productions.len() < k21.productions.len());
        assert_eq!(k21.productions.len(), global_grammar().productions.len());
    }

    #[test]
    fn removing_textop_degrades_qam() {
        let full = FormExtractor::new();
        let full_score = score_source(&full, &qam());
        let degraded = FormExtractor::with_grammar(global_grammar_top_k(5));
        let degraded_score = score_source(&degraded, &qam());
        // Top-5 lacks TextOpRadio (rank 10): operators are lost, but the
        // plain TextVal reading keeps attribute extraction working.
        assert!(degraded_score.matched <= full_score.matched);
        assert_eq!(full_score.matched, 5);
    }

    #[test]
    fn complete_only_mode_zeroes_partial_parses() {
        let ex = extractor_for(ParserMode::Full);
        // A form with a stray unparseable token cannot complete.
        let src = metaform_datasets::Source {
            name: "x".into(),
            domain: "d".into(),
            // The captionless radio button cannot be covered by any
            // production, so no complete parse exists.
            html: "<form><input type=radio name=up> <br>Author <input type=text name=a></form>"
                .into(),
            truth: vec![metaform_core::Condition::new(
                "Author",
                vec![],
                metaform_core::DomainSpec::text(),
                vec![],
            )],
            patterns: vec![],
        };
        let normal = score_source(&ex, &src);
        assert!(normal.matched >= 1, "best-effort still finds Author");
        let strict = complete_only(&ex, &src);
        assert_eq!(strict.extracted, 0, "no complete parse, no output");
        let ds = DatasetScore {
            name: "t".into(),
            sources: vec![strict],
        };
        assert_eq!(ds.overall_recall(), 0.0);
    }

    #[test]
    fn modes_enumerate() {
        assert_eq!(ParserMode::ALL.len(), 3);
        assert_eq!(ParserMode::NoPreferences.name(), "no-preferences");
    }
}
