//! Source distributions over precision/recall (paper Figure 15(a,b)).
//!
//! The paper plots, for each dataset, the percentage of sources whose
//! per-source precision (recall) reaches each threshold on the x-axis
//! `1.0, .9, .8, .7, .6, 0` — a cumulative distribution ("69% sources
//! have precision 1.0" is the value at 1.0).

use crate::metrics::DatasetScore;

/// The paper's x-axis thresholds.
pub const THRESHOLDS: [f64; 6] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.0];

/// Percentage of sources (0–100) whose metric is ≥ each threshold.
pub fn cumulative(values: &[f64]) -> [f64; 6] {
    let n = values.len().max(1) as f64;
    let mut out = [0.0; 6];
    for (i, &th) in THRESHOLDS.iter().enumerate() {
        let hits = values.iter().filter(|&&v| v >= th - 1e-9).count();
        out[i] = 100.0 * hits as f64 / n;
    }
    out
}

/// Precision distribution for a dataset.
pub fn precision_distribution(score: &DatasetScore) -> [f64; 6] {
    let values: Vec<f64> = score.sources.iter().map(|s| s.precision()).collect();
    cumulative(&values)
}

/// Recall distribution for a dataset.
pub fn recall_distribution(score: &DatasetScore) -> [f64; 6] {
    let values: Vec<f64> = score.sources.iter().map(|s| s.recall()).collect();
    cumulative(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SourceScore;

    #[test]
    fn cumulative_is_monotone_and_ends_at_100() {
        let values = [1.0, 1.0, 0.85, 0.7, 0.5, 0.0];
        let dist = cumulative(&values);
        for w in dist.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{dist:?}");
        }
        assert_eq!(dist[5], 100.0);
        // Two of six sources at exactly 1.0.
        assert!((dist[0] - 33.333).abs() < 0.01);
    }

    #[test]
    fn threshold_boundaries_inclusive() {
        let dist = cumulative(&[0.9, 0.8]);
        assert_eq!(dist[1], 50.0, "0.9 counts at the 0.9 threshold");
        assert_eq!(dist[2], 100.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let dist = cumulative(&[]);
        assert_eq!(dist, [0.0; 6]);
    }

    #[test]
    fn dataset_wrappers() {
        let ds = DatasetScore {
            name: "T".into(),
            sources: vec![
                SourceScore {
                    name: "a".into(),
                    domain: "d".into(),
                    matched: 1,
                    extracted: 1,
                    truth: 2,
                    tokens: 0,
                },
                SourceScore {
                    name: "b".into(),
                    domain: "d".into(),
                    matched: 2,
                    extracted: 2,
                    truth: 2,
                    tokens: 0,
                },
            ],
        };
        let p = precision_distribution(&ds);
        assert_eq!(p[0], 100.0, "both sources precision 1.0");
        let r = recall_distribution(&ds);
        assert_eq!(r[0], 50.0, "one source at recall 1.0");
    }
}
