//! # metaform-eval
//!
//! Evaluation harness for the reproduction: the paper's metrics
//! (per-source and overall precision/recall, §6.1), source
//! distributions over thresholds (Figure 15(a,b)), pattern-vocabulary
//! analyses (Figure 4), parse timing (§5.1), and our additional
//! ablations (grammar sweep, parser-component switches, baseline
//! comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod distribution;
pub mod induction;
pub mod metrics;
pub mod table;
pub mod timing;
pub mod vocabulary;

pub use ablation::{extractor_for, filter_grammar, global_grammar_top_k, ParserMode};
pub use distribution::{cumulative, precision_distribution, recall_distribution, THRESHOLDS};
pub use induction::{
    frozen_corpus, refit_grammar, run_induction, AcceptedCandidate, InductionConfig, InductionGate,
    InductionOutcome, RejectReason, RoundOutcome,
};
pub use metrics::{
    match_count, score_dataset, score_dataset_baseline, score_extraction, score_source,
    score_source_baseline, DatasetScore, SourceScore,
};
pub use table::TextTable;
pub use vocabulary::{growth_curve, occurrences, ranked_frequencies};
