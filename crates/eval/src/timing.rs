//! Parse-time measurements (paper §5.1).
//!
//! The paper reports ≈1 s for a 25-token interface and <100 s for 120
//! interfaces of average size 22, on 2004 hardware. We measure the same
//! two quantities; the comparison is of *shape* (time grows with token
//! count; pruning keeps it tractable), not absolute values.

use metaform_datasets::Dataset;
use metaform_extractor::FormExtractor;
use metaform_grammar::Grammar;
use metaform_parser::{parse_with, ParseSession, ParserOptions};
use std::time::Duration;

/// Timing for a single interface.
#[derive(Clone, Debug)]
pub struct SingleTiming {
    /// Token count of the measured interface.
    pub tokens: usize,
    /// Pure parsing time (tokenization and merging excluded, as in the
    /// paper's measurement).
    pub parse_time: Duration,
    /// Instances created.
    pub instances: usize,
}

/// Timing for a batch of interfaces.
#[derive(Clone, Debug)]
pub struct BatchTiming {
    /// Interfaces measured.
    pub interfaces: usize,
    /// Mean token count.
    pub avg_tokens: f64,
    /// Total parsing time across the batch.
    pub total_parse_time: Duration,
}

/// Parses the tokens of the source whose token count is closest to
/// `target_tokens` in `ds` and reports its timing.
pub fn single_interface(
    extractor: &FormExtractor,
    ds: &Dataset,
    target_tokens: usize,
) -> SingleTiming {
    let mut session = extractor.session();
    let mut best: Option<SingleTiming> = None;
    for src in &ds.sources {
        let tokens = tokenize_source(&src.html);
        let better = match &best {
            Some(b) => {
                (tokens.len() as i64 - target_tokens as i64).abs()
                    < (b.tokens as i64 - target_tokens as i64).abs()
            }
            None => true,
        };
        if better {
            let timed = time_parse_in(&mut session, &tokens);
            best = Some(timed);
        }
    }
    best.expect("dataset nonempty")
}

/// Parses the first `n` interfaces of `ds` and reports batch timing
/// (the paper's 120-interface measurement). The extractor's grammar
/// is already compiled, so the whole batch shares one schedule and one
/// recycled parse session.
pub fn batch(extractor: &FormExtractor, ds: &Dataset, n: usize) -> BatchTiming {
    let mut session = extractor.session();
    let mut total = Duration::ZERO;
    let mut tokens_sum = 0usize;
    let mut count = 0usize;
    for src in ds.sources.iter().take(n) {
        let tokens = tokenize_source(&src.html);
        let t = time_parse_in(&mut session, &tokens);
        total += t.parse_time;
        tokens_sum += t.tokens;
        count += 1;
    }
    BatchTiming {
        interfaces: count,
        avg_tokens: tokens_sum as f64 / count.max(1) as f64,
        total_parse_time: total,
    }
}

/// Tokenizes a page through the standard pipeline.
pub fn tokenize_source(html: &str) -> Vec<metaform_core::Token> {
    let doc = metaform_html::parse(html);
    let lay = metaform_layout::layout(&doc);
    metaform_tokenizer::tokenize(&doc, &lay).tokens
}

/// Times one parse, rebuilding the schedule (the cold, one-shot
/// path). Prefer [`time_parse_in`] when timing many parses under one
/// grammar.
pub fn time_parse(grammar: &Grammar, tokens: &[metaform_core::Token]) -> SingleTiming {
    let result = parse_with(grammar, tokens, &ParserOptions::default());
    SingleTiming {
        tokens: tokens.len(),
        parse_time: result.stats.elapsed,
        instances: result.stats.created,
    }
}

/// Times one parse through a reusable session (the warm path).
pub fn time_parse_in(session: &mut ParseSession, tokens: &[metaform_core::Token]) -> SingleTiming {
    let result = session.parse(tokens);
    let timing = SingleTiming {
        tokens: tokens.len(),
        parse_time: result.stats.elapsed,
        instances: result.stats.created,
    };
    session.recycle(result);
    timing
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_datasets::new_source;

    #[test]
    fn single_picks_closest_size() {
        let ex = FormExtractor::new();
        let ds = new_source();
        let t = single_interface(&ex, &ds, 25);
        assert!(t.tokens > 0);
        assert!(t.instances >= t.tokens);
    }

    #[test]
    fn batch_accumulates() {
        let ex = FormExtractor::new();
        let ds = new_source();
        let b = batch(&ex, &ds, 10);
        assert_eq!(b.interfaces, 10);
        assert!(b.avg_tokens > 3.0);
        assert!(b.total_parse_time > Duration::ZERO);
    }

    #[test]
    fn tokenizer_helper_round_trips() {
        let toks = tokenize_source("<form>Author <input type=text name=a></form>");
        assert_eq!(toks.len(), 2);
    }
}
