//! Pattern-vocabulary analyses (paper Figure 4).
//!
//! Figure 4(a): pattern occurrences across sources, and the cumulative
//! vocabulary-growth curve that "flattens rapidly". Figure 4(b):
//! pattern frequencies over ranks — the Zipf profile, per domain and
//! overall.

use metaform_datasets::{Dataset, PatternId};
use std::collections::{BTreeMap, BTreeSet};

/// Occurrence matrix entry: pattern `p` occurs in source at index `x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Source index along the survey's x-axis.
    pub source: usize,
    /// Pattern.
    pub pattern: PatternId,
}

/// All (source, pattern) occurrences for a dataset (Figure 4(a)'s `+`
/// marks).
pub fn occurrences(ds: &Dataset) -> Vec<Occurrence> {
    let mut out = Vec::new();
    for (i, src) in ds.sources.iter().enumerate() {
        let distinct: BTreeSet<PatternId> = src.patterns.iter().copied().collect();
        out.extend(
            distinct
                .into_iter()
                .map(|pattern| Occurrence { source: i, pattern }),
        );
    }
    out
}

/// Cumulative distinct-vocabulary size after each source.
pub fn growth_curve(ds: &Dataset) -> Vec<usize> {
    let mut seen: BTreeSet<PatternId> = BTreeSet::new();
    ds.sources
        .iter()
        .map(|src| {
            seen.extend(src.patterns.iter().copied());
            seen.len()
        })
        .collect()
}

/// Per-domain and total occurrence counts of each pattern, sorted by
/// total count descending (Figure 4(b)'s ranked x-axis).
#[derive(Clone, Debug)]
pub struct RankedFrequencies {
    /// Domain column labels.
    pub domains: Vec<String>,
    /// Rows: (pattern, per-domain counts, total), sorted by total desc.
    pub rows: Vec<(PatternId, Vec<usize>, usize)>,
}

/// Computes ranked pattern frequencies over a dataset.
pub fn ranked_frequencies(ds: &Dataset) -> RankedFrequencies {
    let mut domains: Vec<String> = ds.sources.iter().map(|s| s.domain.clone()).collect();
    domains.sort();
    domains.dedup();
    let dom_idx: BTreeMap<&str, usize> = domains
        .iter()
        .enumerate()
        .map(|(i, d)| (d.as_str(), i))
        .collect();

    let mut counts: BTreeMap<PatternId, Vec<usize>> = BTreeMap::new();
    for src in &ds.sources {
        let di = dom_idx[src.domain.as_str()];
        for &p in &src.patterns {
            counts.entry(p).or_insert_with(|| vec![0; domains.len()])[di] += 1;
        }
    }
    let mut rows: Vec<(PatternId, Vec<usize>, usize)> = counts
        .into_iter()
        .map(|(p, per)| {
            let total = per.iter().sum();
            (p, per, total)
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    RankedFrequencies { domains, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_datasets::basic;

    #[test]
    fn growth_curve_is_monotone_and_flattens() {
        let ds = basic();
        let curve = growth_curve(&ds);
        assert_eq!(curve.len(), 150);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // The curve flattens: domain-specific patterns (dates, year
        // ranges) only appear once their domain starts (sources are
        // ordered Books, Automobiles, Airfares as in Figure 4(a)), but
        // by two-thirds of the x-axis the vocabulary is essentially
        // complete.
        let two_thirds = curve[99];
        let last = *curve.last().expect("nonempty");
        assert!(
            two_thirds * 10 >= last * 8,
            "first 100 sources should reveal ≥80% of the vocabulary: {two_thirds}/{last}"
        );
        assert!(last <= 25);
        assert!(last >= 15, "a rich vocabulary emerges: {last}");
    }

    #[test]
    fn occurrences_dedupe_within_source() {
        let ds = basic();
        let occ = occurrences(&ds);
        // No duplicate (source, pattern) pairs.
        let mut seen = BTreeSet::new();
        for o in &occ {
            assert!(seen.insert((o.source, o.pattern)));
        }
        assert!(occ.len() > 300);
    }

    #[test]
    fn ranked_frequencies_are_sorted_and_zipfish() {
        let rf = ranked_frequencies(&basic());
        assert_eq!(rf.domains.len(), 3);
        for w in rf.rows.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        let top = rf.rows[0].2;
        let mid = rf.rows[rf.rows.len() / 2].2;
        assert!(top >= 3 * mid, "skewed head: top={top}, mid={mid}");
        // Per-domain counts sum to the total.
        for (_, per, total) in &rf.rows {
            assert_eq!(per.iter().sum::<usize>(), *total);
        }
    }
}
