//! # metaform-tokenizer
//!
//! The paper's tokenizer (§3.4): converts an HTML query form, after
//! layout, into a set of visual tokens — instances of the grammar's 16
//! terminals, each carrying a terminal type plus the attributes parsing
//! needs (`sval`, `pos`, widget name, option labels).
//!
//! Pipeline position: `metaform_html::parse` → `metaform_layout::layout`
//! → [`tokenize()`] → `metaform_parser`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod textrun;
pub mod tokenize;

pub use tokenize::{tokenize, tokenize_all_forms, tokenize_scope, Tokenized};
