//! Text-run assembly.
//!
//! Layout emits one fragment per text node per line; visually, however,
//! `<b>Price</b> Range:` is a single caption. This module merges
//! fragments that render as one run — same line box, small gap, no
//! widget interposed — into single text tokens, mirroring what the
//! paper's tokenizer read off the rendered page (token `s1` in Figure 5
//! is the whole caption "first name/initial and last name").

use metaform_core::BBox;

/// A text fragment candidate prior to merging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRun {
    /// Fragment text.
    pub text: String,
    /// Fragment box.
    pub bbox: BBox,
    /// Line-box id from layout (unique per flow line).
    pub line: u32,
}

/// Maximum horizontal white-space bridged when merging two fragments of
/// the same line box, in pixels (two space widths).
const MERGE_GAP: i32 = 14;

/// Merges raw fragments into visual text runs.
///
/// `obstacles` are widget boxes; a merge never bridges across one
/// (a radio glyph between two captions keeps them separate tokens).
pub fn merge_runs(mut runs: Vec<RawRun>, obstacles: &[BBox]) -> Vec<RawRun> {
    runs.sort_by_key(|r| (r.line, r.bbox.left, r.bbox.top));
    let mut out: Vec<RawRun> = Vec::with_capacity(runs.len());
    for run in runs {
        if let Some(prev) = out.last_mut() {
            if prev.line == run.line {
                let gap = run.bbox.left - prev.bbox.right;
                if (0..=MERGE_GAP).contains(&gap) && !blocked(&prev.bbox, &run.bbox, obstacles) {
                    if gap > 0 {
                        prev.text.push(' ');
                    }
                    prev.text.push_str(&run.text);
                    prev.bbox = prev.bbox.union(&run.bbox);
                    continue;
                }
            }
        }
        out.push(run);
    }
    out
}

/// True when any obstacle lies horizontally between `a` and `b` on
/// their shared row.
fn blocked(a: &BBox, b: &BBox, obstacles: &[BBox]) -> bool {
    let span = BBox::new(a.right, a.top.min(b.top), b.left, a.bottom.max(b.bottom));
    obstacles.iter().any(|o| o.intersects(&span))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str, left: i32, line: u32) -> RawRun {
        RawRun {
            text: text.into(),
            bbox: BBox::new(left, 10, left + text.len() as i32 * 7, 26),
            line,
        }
    }

    #[test]
    fn adjacent_fragments_merge_with_space() {
        let a = run("Price", 10, 0); // right = 45
        let b = run("Range:", 52, 0); // one space away
        let merged = merge_runs(vec![a, b], &[]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].text, "Price Range:");
        assert_eq!(merged[0].bbox, BBox::new(10, 10, 94, 26));
    }

    #[test]
    fn touching_fragments_merge_without_space() {
        let a = run("Price", 10, 0);
        let b = run(":", 45, 0); // gap 0
        let merged = merge_runs(vec![a, b], &[]);
        assert_eq!(merged[0].text, "Price:");
    }

    #[test]
    fn distant_fragments_stay_separate() {
        let a = run("Adults", 10, 0);
        let b = run("Children", 300, 0);
        let merged = merge_runs(vec![a, b], &[]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_lines_never_merge() {
        let a = run("Author", 10, 0);
        let b = run("Title", 10, 1);
        let merged = merge_runs(vec![a, b], &[]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn widget_between_blocks_merge() {
        let a = run("First", 10, 0);
        let b = run("Last", 60, 0); // gap 15 > MERGE_GAP anyway; tighten
        let b = RawRun {
            bbox: BBox::new(a.bbox.right + 10, 10, a.bbox.right + 40, 26),
            ..b
        };
        let glyph = BBox::new(a.bbox.right + 2, 12, a.bbox.right + 9, 25);
        let merged = merge_runs(vec![a.clone(), b.clone()], &[glyph]);
        assert_eq!(merged.len(), 2, "radio glyph separates the captions");
        let merged_free = merge_runs(vec![a, b], &[]);
        assert_eq!(merged_free.len(), 1);
    }

    #[test]
    fn out_of_order_input_is_sorted() {
        let b = run("Range:", 52, 0);
        let a = run("Price", 10, 0);
        let merged = merge_runs(vec![b, a], &[]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].text, "Price Range:");
    }

    #[test]
    fn chain_merging() {
        let a = run("first", 10, 0);
        let b = run("name", 52, 0);
        let c = run("only", 87, 0);
        let merged = merge_runs(vec![a, b, c], &[]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].text, "first name only");
    }

    #[test]
    fn overlap_does_not_merge_backwards() {
        // A fragment whose left edge is *before* the previous right edge
        // (negative gap) is kept separate — distinct columns can overlap
        // only through layout bugs, and silently fusing them would hide
        // those.
        let a = run("alpha", 10, 0);
        let mut b = run("beta", 0, 0);
        b.bbox = BBox::new(30, 10, 60, 26);
        let merged = merge_runs(vec![a, b], &[]);
        assert_eq!(merged.len(), 2);
    }
}
