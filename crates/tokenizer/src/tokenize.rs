//! The tokenizer proper: laid-out DOM → token set.

use crate::classify::classify_select;
use crate::textrun::{merge_runs, RawRun};
use metaform_core::{BBox, Token, TokenFingerprint, TokenId, TokenKind};
use metaform_html::{Document, NodeId};
use metaform_layout::Layout;

/// A tokenized query interface.
#[derive(Clone, Debug)]
pub struct Tokenized {
    /// Tokens in reading order with dense ids `0..n`.
    pub tokens: Vec<Token>,
    /// Originating DOM node per token (text tokens may merge several
    /// nodes; the first is recorded). Parallel to `tokens`.
    pub nodes: Vec<Option<NodeId>>,
}

impl Tokenized {
    /// Tokens of the given kind, in reading order.
    pub fn of_kind(&self, kind: TokenKind) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(move |t| t.kind == kind)
    }

    /// The token covering a DOM node, if any.
    pub fn token_of_node(&self, node: NodeId) -> Option<&Token> {
        self.nodes
            .iter()
            .position(|&n| n == Some(node))
            .map(|i| &self.tokens[i])
    }

    /// Content-addressed identity of this token stream, the key a
    /// revisit parse cache looks pages up by. Stable across sessions:
    /// two tokenizations of the same rendered form always agree.
    pub fn fingerprint(&self) -> TokenFingerprint {
        TokenFingerprint::of(&self.tokens)
    }
}

/// Tokenizes the first `<form>` in the document (or the whole document
/// when no form element exists — some sources inline their widgets).
///
/// ```
/// use metaform_core::TokenKind;
///
/// let doc = metaform_html::parse(
///     "<form>Author <input type='text' name='q'></form>");
/// let layout = metaform_layout::layout(&doc);
/// let tokenized = metaform_tokenizer::tokenize(&doc, &layout);
/// assert_eq!(tokenized.tokens.len(), 2);
/// assert_eq!(tokenized.tokens[0].sval, "Author");
/// assert_eq!(tokenized.tokens[1].kind, TokenKind::Textbox);
/// ```
pub fn tokenize(doc: &Document, layout: &Layout) -> Tokenized {
    let scope = doc
        .elements_by_tag(doc.root(), "form")
        .first()
        .copied()
        .unwrap_or_else(|| doc.root());
    tokenize_scope(doc, layout, scope)
}

/// Tokenizes every `<form>` in the document separately — entry pages
/// often carry several (a site-wide keyword box plus the main query
/// form). Returns one token set per form, in document order; an empty
/// vector when the page has no form element.
pub fn tokenize_all_forms(doc: &Document, layout: &Layout) -> Vec<Tokenized> {
    doc.elements_by_tag(doc.root(), "form")
        .into_iter()
        .map(|form| tokenize_scope(doc, layout, form))
        .collect()
}

/// Tokenizes an explicit subtree.
pub fn tokenize_scope(doc: &Document, layout: &Layout, scope: NodeId) -> Tokenized {
    let mut widgets: Vec<(Token, NodeId)> = Vec::new();
    let mut runs: Vec<RawRun> = Vec::new();
    let mut run_nodes: Vec<(u32, NodeId)> = Vec::new(); // (line, node) keyed lookup

    let mut in_select_depth = 0usize;
    let mut select_stack: Vec<NodeId> = Vec::new();
    for node in doc.descendants(scope) {
        // Skip text inside <select>/<option>: it renders inside the
        // widget, not as free-standing text.
        while let Some(&top) = select_stack.last() {
            if is_descendant(doc, node, top) {
                break;
            }
            select_stack.pop();
            in_select_depth -= 1;
        }
        if let Some(tag) = doc.tag(node) {
            match tag {
                "select" => {
                    if let Some(t) = select_token(doc, layout, node) {
                        widgets.push((t, node));
                    }
                    select_stack.push(node);
                    in_select_depth += 1;
                }
                "input" => {
                    if let Some(t) = input_token(doc, layout, node) {
                        widgets.push((t, node));
                    }
                }
                "textarea" => {
                    if let Some(b) = layout.bbox(node) {
                        widgets.push((
                            Token::widget(0, TokenKind::TextArea, attr(doc, node, "name"), b),
                            node,
                        ));
                    }
                    // Its default text renders inside the widget.
                    select_stack.push(node);
                    in_select_depth += 1;
                }
                "button" => {
                    if let Some(b) = layout.bbox(node) {
                        let caption = doc.text_content(node).trim().to_string();
                        widgets.push((
                            Token::widget(0, TokenKind::SubmitButton, attr(doc, node, "name"), b)
                                .with_sval(caption),
                            node,
                        ));
                    }
                    select_stack.push(node);
                    in_select_depth += 1;
                }
                _ => {}
            }
            continue;
        }
        if in_select_depth > 0 {
            continue;
        }
        if doc.text(node).is_some() {
            for f in layout.fragments(node) {
                let trimmed = f.text.trim();
                if trimmed.is_empty() {
                    continue;
                }
                runs.push(RawRun {
                    text: trimmed.to_string(),
                    bbox: f.bbox,
                    line: f.line,
                });
                run_nodes.push((f.line, node));
            }
        }
    }

    let obstacle_boxes: Vec<BBox> = widgets.iter().map(|(t, _)| t.pos).collect();
    let merged = merge_runs(runs, &obstacle_boxes);

    // Interleave text runs and widgets into reading order.
    enum Pending {
        Widget(Token, NodeId),
        Text(RawRun, Option<NodeId>),
    }
    let mut pending: Vec<Pending> = Vec::with_capacity(widgets.len() + merged.len());
    for (t, n) in widgets {
        pending.push(Pending::Widget(t, n));
    }
    for r in merged {
        let node = run_nodes
            .iter()
            .find(|(line, _)| *line == r.line)
            .map(|&(_, n)| n);
        pending.push(Pending::Text(r, node));
    }
    // Line boxes bottom-align their items, so (bottom, left) is reading
    // order even when a tall widget shares a line with short text.
    pending.sort_by_key(|p| match p {
        Pending::Widget(t, _) => (t.pos.bottom, t.pos.left),
        Pending::Text(r, _) => (r.bbox.bottom, r.bbox.left),
    });

    let mut tokens = Vec::with_capacity(pending.len());
    let mut nodes = Vec::with_capacity(pending.len());
    for (i, p) in pending.into_iter().enumerate() {
        match p {
            Pending::Widget(mut t, n) => {
                t.id = TokenId(i as u32);
                tokens.push(t);
                nodes.push(Some(n));
            }
            Pending::Text(r, n) => {
                tokens.push(Token::text(i as u32, r.text, r.bbox));
                nodes.push(n);
            }
        }
    }
    Tokenized { tokens, nodes }
}

fn is_descendant(doc: &Document, node: NodeId, ancestor: NodeId) -> bool {
    let mut cur = Some(node);
    while let Some(n) = cur {
        if n == ancestor {
            return true;
        }
        cur = doc.parent(n);
    }
    false
}

fn attr(doc: &Document, node: NodeId, name: &str) -> String {
    doc.attr(node, name).unwrap_or("").to_string()
}

fn select_token(doc: &Document, layout: &Layout, node: NodeId) -> Option<Token> {
    let bbox = layout.bbox(node)?;
    let options: Vec<String> = doc
        .elements_by_tag(node, "option")
        .iter()
        .map(|&o| doc.text_content(o).trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let kind = classify_select(&options);
    Some(Token::widget(0, kind, attr(doc, node, "name"), bbox).with_options(options))
}

fn input_token(doc: &Document, layout: &Layout, node: NodeId) -> Option<Token> {
    let ty = doc.attr(node, "type").unwrap_or("text").to_lowercase();
    if ty == "hidden" {
        return None;
    }
    let bbox = layout.bbox(node)?;
    let name = attr(doc, node, "name");
    let value = attr(doc, node, "value");
    let checked = doc.attr(node, "checked").is_some();
    let token = match ty.as_str() {
        "radio" => Token::widget(0, TokenKind::Radiobutton, name, bbox)
            .with_sval(value)
            .with_checked(checked),
        "checkbox" => Token::widget(0, TokenKind::Checkbox, name, bbox)
            .with_sval(value)
            .with_checked(checked),
        "submit" => Token::widget(0, TokenKind::SubmitButton, name, bbox).with_sval(
            if value.trim().is_empty() {
                "Submit".to_string()
            } else {
                value
            },
        ),
        "reset" => Token::widget(0, TokenKind::ResetButton, name, bbox).with_sval(value),
        "button" => Token::widget(0, TokenKind::SubmitButton, name, bbox).with_sval(value),
        "image" => Token::widget(0, TokenKind::ImageInput, name, bbox),
        "file" => Token::widget(0, TokenKind::FileInput, name, bbox),
        "password" => Token::widget(0, TokenKind::Password, name, bbox),
        _ => Token::widget(0, TokenKind::Textbox, name, bbox).with_sval(value),
    };
    Some(token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaform_html::parse;
    use metaform_layout::layout;

    fn toks(html: &str) -> Tokenized {
        let doc = parse(html);
        let lay = layout(&doc);
        tokenize(&doc, &lay)
    }

    #[test]
    fn amazon_author_row_tokens() {
        // The paper's Figure 5 fragment: caption, textbox, radio
        // buttons with captions.
        let t = toks(
            "<form>Author <input type=text name=query-0><br>\
             <input type=radio name=field-0 value=1> first name/initials and last name\
             <input type=radio name=field-0 value=2> start of last name\
             <input type=radio name=field-0 value=3 checked> exact name</form>",
        );
        let kinds: Vec<TokenKind> = t.tokens.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == TokenKind::Text).count(),
            4,
            "Author + three captions: {kinds:?}"
        );
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == TokenKind::Radiobutton)
                .count(),
            3
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == TokenKind::Textbox).count(),
            1
        );
        // Reading order: "Author" first.
        assert_eq!(t.tokens[0].sval, "Author");
        // Radio captions preserved whole.
        assert!(t
            .tokens
            .iter()
            .any(|x| x.sval == "first name/initials and last name"));
        // The checked radio is marked.
        let checked: Vec<&Token> = t
            .tokens
            .iter()
            .filter(|x| x.kind == TokenKind::Radiobutton && x.checked)
            .collect();
        assert_eq!(checked.len(), 1);
        assert_eq!(checked[0].sval, "3");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let t = toks("<form>A <input type=text name=a><br>B <input type=text name=b></form>");
        for (i, tok) in t.tokens.iter().enumerate() {
            assert_eq!(tok.id, TokenId(i as u32));
        }
        // Reading order: A-row tokens before B-row tokens.
        let a = t.tokens.iter().position(|x| x.sval == "A").unwrap();
        let b = t.tokens.iter().position(|x| x.sval == "B").unwrap();
        assert!(a < b);
    }

    #[test]
    fn select_classification_and_options() {
        let t = toks(
            "<form>Depart <select name=m><option>Jan<option>Feb<option>Mar<option>Apr\
             <option>May<option>Jun<option>Jul<option>Aug<option>Sep<option>Oct\
             <option>Nov<option>Dec</select>\
             <select name=class><option>Coach<option>First</select></form>",
        );
        assert_eq!(t.of_kind(TokenKind::MonthList).count(), 1);
        let class = t.of_kind(TokenKind::SelectionList).next().unwrap();
        assert_eq!(class.options, vec!["Coach", "First"]);
    }

    #[test]
    fn option_text_is_not_free_text() {
        let t = toks("<form><select name=s><option>Hardcover</select></form>");
        assert_eq!(t.of_kind(TokenKind::Text).count(), 0);
    }

    #[test]
    fn hidden_inputs_excluded() {
        let t = toks("<form><input type=hidden name=sid value=1><input type=text name=q></form>");
        assert_eq!(t.tokens.len(), 1);
        assert_eq!(t.tokens[0].kind, TokenKind::Textbox);
    }

    #[test]
    fn text_outside_form_excluded() {
        let t = toks("<h1>Welcome to MegaBooks</h1><form>Title <input type=text name=t></form>");
        assert_eq!(t.of_kind(TokenKind::Text).count(), 1);
        assert_eq!(t.of_kind(TokenKind::Text).next().unwrap().sval, "Title");
    }

    #[test]
    fn no_form_element_tokenizes_whole_page() {
        let t = toks("Keyword <input type=text name=k>");
        assert_eq!(t.tokens.len(), 2);
    }

    #[test]
    fn submit_buttons_and_captions() {
        let t = toks(
            r#"<form><input type=submit value="Find Flights"><input type=reset value=Clear></form>"#,
        );
        let submit = t.of_kind(TokenKind::SubmitButton).next().unwrap();
        assert_eq!(submit.sval, "Find Flights");
        assert_eq!(t.of_kind(TokenKind::ResetButton).count(), 1);
    }

    #[test]
    fn inline_markup_merges_into_one_caption() {
        let t = toks("<form><b>Price</b> Range: <input type=text name=p></form>");
        let texts: Vec<&Token> = t.of_kind(TokenKind::Text).collect();
        assert_eq!(texts.len(), 1);
        assert_eq!(texts[0].sval, "Price Range:");
    }

    #[test]
    fn table_cells_keep_captions_separate() {
        let t = toks(
            "<form><table><tr><td>From</td><td>To</td></tr>\
             <tr><td><input type=text name=f></td><td><input type=text name=to></td></tr></table></form>",
        );
        let texts: Vec<String> = t.of_kind(TokenKind::Text).map(|x| x.sval.clone()).collect();
        assert_eq!(texts, vec!["From", "To"]);
    }

    #[test]
    fn node_mapping_points_back() {
        let doc = parse("<form><input type=text name=q></form>");
        let lay = layout(&doc);
        let t = tokenize(&doc, &lay);
        let input = doc.elements_by_tag(doc.root(), "input")[0];
        assert_eq!(t.token_of_node(input).unwrap().kind, TokenKind::Textbox);
    }

    #[test]
    fn multiple_forms_tokenize_separately() {
        let doc = parse(
            "<form>Site search <input type=text name=q></form>\n\
             <form>Author <input type=text name=a><br>Title <input type=text name=t></form>",
        );
        let lay = layout(&doc);
        let forms = tokenize_all_forms(&doc, &lay);
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[0].tokens.len(), 2);
        assert_eq!(forms[1].tokens.len(), 4);
        // Ids are dense within each form independently.
        assert_eq!(forms[1].tokens[0].id, TokenId(0));
        // tokenize() still picks the first form.
        assert_eq!(tokenize(&doc, &lay).tokens.len(), 2);
    }

    #[test]
    fn fingerprint_tracks_content_not_parse_order() {
        let a = toks("<form>Author <input type=text name=q></form>");
        let b = toks("<form>Author <input type=text name=q></form>");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().tokens, 2);
        let edited = toks("<form>Title <input type=text name=q></form>");
        assert_ne!(a.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn no_forms_yields_empty_vec() {
        let doc = parse("just text, no form");
        let lay = layout(&doc);
        assert!(tokenize_all_forms(&doc, &lay).is_empty());
    }

    #[test]
    fn paper_figure5_token_count() {
        // Figure 5 lists 16 tokens for the two-row fragment: 8 per row
        // (caption, textbox, 3 radios, 3 radio captions).
        let row = |attr: &str, f: &str| {
            format!(
                "{attr} <input type=text name=query-{f}><br>\
                 <input type=radio name=field-{f}> first words\
                 <input type=radio name=field-{f}> start of words\
                 <input type=radio name=field-{f}> exact phrase<br>"
            )
        };
        let html = format!("<form>{}{}</form>", row("Author", "0"), row("Title", "1"));
        let t = toks(&html);
        assert_eq!(t.tokens.len(), 16);
    }
}
