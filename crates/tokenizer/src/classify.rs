//! Selection-list classification.
//!
//! The grammar distinguishes month/day/year/number lists from generic
//! selection lists because they participate in different condition
//! patterns (a month–day–year triple is one *date* condition, not three
//! enumerations). Classification looks only at the visible option
//! labels, exactly what a user (or the paper's visual parser) sees.

use metaform_core::TokenKind;

static MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn is_month_name(s: &str) -> bool {
    let s = s.trim().to_lowercase();
    if s.len() < 3 {
        return false;
    }
    MONTHS.iter().any(|m| {
        *m == s || (s.len() == 3 && m.starts_with(&s)) || {
            // "Jan.", "Sept."
            let stripped = s.trim_end_matches('.');
            m.starts_with(stripped) && stripped.len() >= 3
        }
    })
}

/// True for placeholder options that carry no domain information.
fn is_placeholder(s: &str) -> bool {
    let t = s.trim().to_lowercase();
    t.is_empty()
        || t.chars().all(|c| c == '-' || c == '—')
        || matches!(
            t.as_str(),
            "any" | "all" | "select" | "select one" | "choose" | "please select" | "n/a"
        )
        || t.starts_with("select ")
        || t.starts_with("choose ")
}

/// Classifies a `<select>` by its visible option labels.
pub fn classify_select(options: &[String]) -> TokenKind {
    let informative: Vec<&str> = options
        .iter()
        .map(|s| s.trim())
        .filter(|s| !is_placeholder(s))
        .collect();
    if informative.is_empty() {
        return TokenKind::SelectionList;
    }
    let n = informative.len();

    let month_hits = informative.iter().filter(|s| is_month_name(s)).count();
    if month_hits * 10 >= n * 8 && month_hits >= 3 {
        return TokenKind::MonthList;
    }

    let numeric: Vec<i64> = informative
        .iter()
        .filter_map(|s| {
            s.trim_start_matches(['$', '£', '€'])
                .replace(',', "")
                .trim()
                .parse::<i64>()
                .ok()
        })
        .collect();
    // At least 80% of informative options must be plain numbers for the
    // numeric classifications below.
    if numeric.len() * 10 >= n * 8 && !numeric.is_empty() {
        let (min, max) = (
            *numeric.iter().min().expect("nonempty"),
            *numeric.iter().max().expect("nonempty"),
        );
        if (1900..=2100).contains(&min) && (1900..=2100).contains(&max) {
            return TokenKind::YearList;
        }
        if min >= 1 && max <= 12 && numeric.len() >= 10 {
            return TokenKind::MonthList;
        }
        if min >= 1 && max <= 31 && numeric.len() >= 25 {
            return TokenKind::DayList;
        }
        return TokenKind::NumberList;
    }
    TokenKind::SelectionList
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn month_names_full_and_abbreviated() {
        let full = opts(MONTHS);
        assert_eq!(classify_select(&full), TokenKind::MonthList);
        let abbr = opts(&[
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ]);
        assert_eq!(classify_select(&abbr), TokenKind::MonthList);
    }

    #[test]
    fn numeric_months() {
        let nums: Vec<String> = (1..=12).map(|i| i.to_string()).collect();
        assert_eq!(classify_select(&nums), TokenKind::MonthList);
    }

    #[test]
    fn days_of_month() {
        let days: Vec<String> = (1..=31).map(|i| i.to_string()).collect();
        assert_eq!(classify_select(&days), TokenKind::DayList);
    }

    #[test]
    fn years() {
        let years: Vec<String> = (1995..=2005).map(|i| i.to_string()).collect();
        assert_eq!(classify_select(&years), TokenKind::YearList);
    }

    #[test]
    fn passenger_counts_are_number_lists() {
        let nums: Vec<String> = (1..=9).map(|i| i.to_string()).collect();
        assert_eq!(classify_select(&nums), TokenKind::NumberList);
    }

    #[test]
    fn prices_with_currency_are_numeric() {
        let prices = opts(&["$5", "$20", "$50", "$1,000"]);
        assert_eq!(classify_select(&prices), TokenKind::NumberList);
    }

    #[test]
    fn categorical_options_stay_generic() {
        let cats = opts(&["Hardcover", "Paperback", "Audio"]);
        assert_eq!(classify_select(&cats), TokenKind::SelectionList);
        let airlines = opts(&["Any", "American", "United", "Delta"]);
        assert_eq!(classify_select(&airlines), TokenKind::SelectionList);
    }

    #[test]
    fn placeholders_do_not_sway_classification() {
        let mut days: Vec<String> = vec!["--".into(), "Day".into()];
        // "Day" is not a placeholder, so add enough numbers to dominate.
        days.extend((1..=31).map(|i| i.to_string()));
        assert_eq!(classify_select(&days), TokenKind::DayList);

        let with_any: Vec<String> = std::iter::once("Any".to_string())
            .chain((1..=6).map(|i| i.to_string()))
            .collect();
        assert_eq!(classify_select(&with_any), TokenKind::NumberList);
    }

    #[test]
    fn empty_and_placeholder_only_lists() {
        assert_eq!(classify_select(&[]), TokenKind::SelectionList);
        assert_eq!(
            classify_select(&opts(&["--", "Any"])),
            TokenKind::SelectionList
        );
    }

    #[test]
    fn mixed_content_is_generic() {
        let mixed = opts(&["1 star", "2 stars", "3 stars"]);
        assert_eq!(classify_select(&mixed), TokenKind::SelectionList);
    }

    #[test]
    fn may_as_word_boundary_case() {
        // A single "May" among categories must not force MonthList.
        let cats = opts(&["May", "Fiction", "History", "Science"]);
        assert_eq!(classify_select(&cats), TokenKind::SelectionList);
    }
}
