//! Property tests: any generator configuration produces sources the
//! pipeline can consume, deterministically.

use metaform_datasets::dataset::{generate_source, GenParams};
use metaform_datasets::domains;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = GenParams> {
    (
        1usize..4,
        4usize..9,
        0.0f64..0.5,
        0.0f64..1.0,
        0.0f64..1.0,
        0u32..5,
        0u32..5,
        0u32..5,
    )
        .prop_map(|(lo, hi, unseen, opaque, noise, wf, wt, wc)| GenParams {
            min_conditions: lo,
            max_conditions: hi.max(lo),
            unseen_prob: unseen,
            opaque_name_prob: opaque,
            noise_prob: noise,
            // At least one template must be possible.
            template_weights: (wf + 1, wt, wc),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated source round-trips: its HTML parses, lays out,
    /// and tokenizes into at least one widget per truth condition.
    #[test]
    fn sources_always_pipeline(p in params(), idx in 0usize..40, seed in 0u64..1000,
                               which in 0usize..3) {
        let schemas = [domains::books(), domains::automobiles(), domains::airfares()];
        let src = generate_source(&schemas[which], idx, seed, &p);
        prop_assert!(!src.truth.is_empty());
        prop_assert_eq!(src.truth.len(), src.patterns.len());
        prop_assert!(src.truth.len() >= p.min_conditions.min(schemas[which].fields.len()));

        let doc = metaform_html::parse(&src.html);
        let lay = metaform_layout::layout(&doc);
        let tokens = metaform_tokenizer::tokenize(&doc, &lay).tokens;
        let widgets = tokens.iter().filter(|t| t.kind.is_input_field()).count();
        prop_assert!(widgets >= src.truth.len(),
            "at least one input control per condition: {widgets} < {}", src.truth.len());
        // Dense token ids in reading order.
        for (i, t) in tokens.iter().enumerate() {
            prop_assert_eq!(t.id.index(), i);
        }
    }

    /// Same (schema, index, seed, params) → byte-identical source.
    #[test]
    fn generation_is_pure(p in params(), idx in 0usize..20, seed in 0u64..100) {
        let schema = domains::books();
        let a = generate_source(&schema, idx, seed, &p);
        let b = generate_source(&schema, idx, seed, &p);
        prop_assert_eq!(a.html, b.html);
        prop_assert_eq!(a.patterns, b.patterns);
    }

    /// Different seeds diversify output across a batch.
    #[test]
    fn seeds_diversify(seed_a in 0u64..50, seed_b in 51u64..100) {
        let schema = domains::airfares();
        let p = GenParams::basic();
        let pages_a: Vec<String> =
            (0..5).map(|i| generate_source(&schema, i, seed_a, &p).html).collect();
        let pages_b: Vec<String> =
            (0..5).map(|i| generate_source(&schema, i, seed_b, &p).html).collect();
        prop_assert_ne!(pages_a, pages_b);
    }

    /// Truth conditions carry presentation-independent domains.
    #[test]
    fn truth_is_schema_derived(idx in 0usize..30, seed in 0u64..50) {
        let schema = domains::automobiles();
        let p = GenParams::random();
        let src = generate_source(&schema, idx, seed, &p);
        for cond in &src.truth {
            let field = schema
                .fields
                .iter()
                .find(|f| f.label == cond.attribute)
                .expect("truth attribute must come from the schema");
            prop_assert_eq!(cond.domain.kind, field.kind.domain().kind);
        }
    }
}
